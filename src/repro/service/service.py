"""The detection service: a resilient multi-run job layer over ``nu_lpa``.

Every robustness mechanism built so far — supervisor ladder, checkpoints,
budgets, validation — protects *one* run.  :class:`DetectionService`
manages a fleet of them with production failure semantics:

* **admission control + backpressure** — a bounded priority queue with
  per-tenant in-flight caps; a full queue rejects with a typed
  :class:`~repro.errors.ServiceOverloaded` carrying a retry-after hint;
* **retries** — capped exponential backoff with deterministic seeded
  jitter, only for fault classes a retry can clear (never validation);
* **per-engine circuit breakers** — a persistently failing engine trips
  its breaker and jobs route to the healthy engine without paying the
  failure latency every time;
* **a degradation ladder per job** — full run → fallback engine →
  coarsened-graph approximation → best-so-far checkpoint labels, each
  rung recorded in the outcome's ``degraded_reason`` and the trace;
* **deadline propagation** — a job's :class:`~repro.core.budget.RunBudget`
  shrinks across retries, so attempt N runs under what attempts 1..N-1
  left behind;
* **crash recovery** — job state journals through the checkpoint layer's
  durability protocol; a restarted service re-admits pending/running jobs
  (resuming partial runs bit-identically) and *proves* completed labels
  via CRC instead of recomputing them.

Execution is deterministic and cooperative: ``drain()`` marks up to
``workers`` jobs running (so a crash observes a realistic in-flight set)
and executes them in admission order on the caller's thread.  The service
clock is *modelled* GPU seconds, which keeps breaker cooldowns and latency
percentiles replayable — the same determinism contract the checkpoint and
chaos layers are built on.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.core.budget import RunBudget
from repro.core.config import LPAConfig, ResilienceConfig
from repro.core.lpa import nu_lpa
from repro.errors import (
    CheckpointError,
    ConfigurationError,
    DuplicateJobError,
    JobNotFoundError,
    MemoryPressure,
    ReproError,
    ServiceOverloaded,
)
from repro.observe.trace import (
    BreakerEvent,
    JobEvent,
    ServiceStatsEvent,
    Tracer,
    WaveBatchEvent,
)
from repro.service.backoff import BackoffPolicy, is_retryable
from repro.service.batch import amortize_launches, batch_key
from repro.service.breaker import BreakerConfig, CircuitBreaker
from repro.service.job import (
    GraphRef,
    JobOutcome,
    JobRecord,
    JobSpec,
    JobState,
    RUNGS,
)
from repro.service.journal import ServiceJournal
from repro.service.queue import AdmissionQueue

__all__ = ["ServiceConfig", "DetectionService"]

_ENGINES = ("vectorized", "hashtable")


def _alternate(engine: str) -> str:
    return "vectorized" if engine == "hashtable" else "hashtable"


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning of one :class:`DetectionService` (see docs/service.md).

    Attributes
    ----------
    workers:
        Logical worker slots; bounds how many jobs are in flight at once.
    queue_capacity:
        Bounded admission queue size (pending jobs).
    tenant_inflight:
        Per-tenant pending+running cap (``None`` disables).
    max_attempts:
        Full-run attempts per job before descending the ladder.
    backoff:
        Retry :class:`~repro.service.backoff.BackoffPolicy`.  The default
        has ``base_s=0`` — delays are *recorded* but nothing sleeps, which
        is right for tests and simulation; give a real base to actually
        pace retries.
    breaker:
        Per-engine :class:`~repro.service.breaker.BreakerConfig`.
    breaker_enabled:
        Master switch (the differential test runs both ways).
    lpa:
        Base :class:`~repro.core.config.LPAConfig`; per-job
        ``max_iterations`` / ``tolerance`` overrides apply on top.
    resilience:
        Template :class:`~repro.core.config.ResilienceConfig` for
        supervised runs; per-job checkpoint paths and per-engine fault
        specs are filled in by the service.  ``None`` runs unsupervised
        (no supervisor, no checkpoints) unless a journal is configured.
    engine_faults:
        Optional per-engine fault injection (chaos / breaker testing):
        ``{"hashtable": FaultSpec(...)}`` faults only that engine.
    journal_dir:
        Durable job journal root; ``None`` disables journaling *and*
        crash recovery.
    checkpoint_every / checkpoint_keep:
        Per-job checkpoint cadence and retention inside the journal.
    coarsen_target_fraction:
        Ladder rung 3: coarsen the graph to roughly this fraction of its
        vertices before the approximate run.
    default_deadline_s:
        Deadline applied to jobs that do not set one (``None`` = none).
    retry_after_base_s:
        Fallback retry-after hint before any latency data exists.
    checkpoint_factory:
        Factory with the ``CheckpointManager`` constructor signature used
        for per-job checkpointing (the kill/restart soak injects a
        crashing one).  ``None`` uses the real manager.
    chaos_hook:
        Optional callable ``hook(point, record)`` invoked at deterministic
        execution points (``"job-finished"``, and for subscription jobs
        the stream processor's ``"pre-epoch"`` / ``"mid-epoch-apply"`` /
        ``"post-epoch"``); the soak harnesses raise
        :class:`~repro.resilience.chaos.InjectedCrash` from it.
    stream_differential_every:
        For subscription jobs: every this many epochs, re-detect from
        scratch and record the modularity gap in the epoch trace
        (0 disables — the default; the differential is a test/bench tool).
    snapshot_dir:
        Root of the query :class:`~repro.service.read.SnapshotCatalog`.
        When set, every completed detect job publishes its labels as a
        versioned snapshot (``source="job"``) and every subscription
        epoch publishes one too (``source="epoch"``), atomically — the
        read path (:class:`~repro.service.read.QueryEngine`, ``repro
        query``) serves from here.  ``None`` disables publishing.
    snapshot_keep:
        Per-job snapshot retention ring (``None`` keeps every version).
    wave_batching:
        Coalesce compatible in-flight ``detect`` jobs (same engine /
        config class, see :func:`~repro.service.batch.batch_key`) into
        shared execution waves on the modelled GPU clock, amortising
        kernel-launch overhead across the batch.  Labels are bit-identical
        to unbatched runs — batching only changes scheduling/pricing; the
        per-job share of the saved launch overhead is attributed in each
        outcome and traced via
        :class:`~repro.observe.trace.WaveBatchEvent`.
    batch_max_jobs:
        Upper bound on jobs per shared wave (also bounded by ``workers``:
        only concurrently scheduled jobs can share a wave).
    memory_budget_bytes:
        Modelled device-memory budget for admission control (see
        docs/service.md).  When set, every submission is checked against
        an analytic peak-footprint estimate
        (:func:`repro.gpu.governor.footprint_for`): a job that cannot fit
        *alone* is rejected with a typed
        :class:`~repro.errors.MemoryPressure`, and jobs whose combined
        footprint would exceed the budget are serialised instead of run
        concurrently.  The budget is also propagated into each job's
        :class:`~repro.core.config.LPAConfig`, so runs enforce it live
        through a :class:`~repro.gpu.governor.MemoryGovernor`.  ``None``
        (the default) disables all memory accounting — the zero-overhead
        path.
    reserved_memory_fraction:
        Fraction of ``memory_budget_bytes`` held back from jobs (runtime,
        fragmentation slack); forwarded to the per-run config.
    """

    workers: int = 2
    queue_capacity: int = 64
    tenant_inflight: int | None = None
    max_attempts: int = 3
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    breaker_enabled: bool = True
    lpa: LPAConfig = field(default_factory=LPAConfig)
    resilience: ResilienceConfig | None = None
    engine_faults: dict | None = None
    journal_dir: str | Path | None = None
    checkpoint_every: int = 1
    checkpoint_keep: int | None = 3
    coarsen_target_fraction: float = 0.125
    default_deadline_s: float | None = None
    retry_after_base_s: float = 1.0
    checkpoint_factory: object | None = None
    chaos_hook: object | None = None
    stream_differential_every: int = 0
    snapshot_dir: str | Path | None = None
    snapshot_keep: int | None = None
    wave_batching: bool = False
    batch_max_jobs: int = 8
    memory_budget_bytes: int | None = None
    reserved_memory_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.memory_budget_bytes is not None and self.memory_budget_bytes < 1:
            raise ConfigurationError(
                f"memory_budget_bytes must be >= 1 (or None); "
                f"got {self.memory_budget_bytes}"
            )
        if not 0.0 <= self.reserved_memory_fraction < 1.0:
            raise ConfigurationError(
                f"reserved_memory_fraction must be in [0, 1); "
                f"got {self.reserved_memory_fraction}"
            )
        if self.batch_max_jobs < 2:
            raise ConfigurationError(
                f"batch_max_jobs must be >= 2; got {self.batch_max_jobs}"
            )
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1; got {self.workers}")
        if self.queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1; got {self.queue_capacity}"
            )
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1; got {self.max_attempts}"
            )
        if not 0.0 < self.coarsen_target_fraction <= 1.0:
            raise ConfigurationError(
                f"coarsen_target_fraction must be in (0, 1]; "
                f"got {self.coarsen_target_fraction}"
            )
        if self.engine_faults:
            unknown = set(self.engine_faults) - set(_ENGINES)
            if unknown:
                raise ConfigurationError(
                    f"engine_faults names unknown engines {sorted(unknown)}"
                )

    def with_(self, **changes) -> "ServiceConfig":
        """Functional update (``dataclasses.replace`` convenience)."""
        return replace(self, **changes)


class DetectionService:
    """A long-running community-detection job service.

    Typical use::

        service = DetectionService(ServiceConfig(journal_dir="jobs/"))
        service.submit(JobSpec.dataset("j1", "asia_osm", scale=0.1))
        service.drain()
        labels = service.result("j1").outcome.labels

    A service constructed over a journal directory that already holds
    state *recovers* it: completed jobs keep their (CRC-verified) labels,
    pending and in-flight jobs are re-admitted in their original order and
    resume from their per-job checkpoints bit-identically.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        tracer: Tracer | None = None,
        recover: bool = True,
    ) -> None:
        self.config = config or ServiceConfig()
        # Tracer has __len__, so an empty (but enabled) tracer is falsy —
        # test identity, not truthiness.
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.queue = AdmissionQueue(
            capacity=self.config.queue_capacity,
            tenant_inflight=self.config.tenant_inflight,
        )
        self.breakers = {
            name: CircuitBreaker(name, self.config.breaker) for name in _ENGINES
        }
        self.journal: ServiceJournal | None = None
        if self.config.journal_dir is not None:
            self.journal = ServiceJournal(self.config.journal_dir)
        self.read_catalog = None
        if self.config.snapshot_dir is not None:
            from repro.service.read import SnapshotCatalog

            self.read_catalog = SnapshotCatalog(
                self.config.snapshot_dir,
                keep=self.config.snapshot_keep,
                tracer=self.tracer,
            )
        #: Every job this service knows, admitted or recovered, by id.
        self.jobs: dict[str, JobRecord] = {}
        self._running: deque[JobRecord] = deque()
        self._memory_graphs: dict[str, object] = {}
        self._seq = 0
        self._snapshot_seq = 0
        #: Service clock: modelled GPU seconds of completed work.
        self.clock_s = 0.0
        self._wall_start = time.perf_counter()
        #: Set via :meth:`request_stop` (signal handlers); drain() exits
        #: between jobs and the in-flight run stops at its next boundary.
        self.stop_requested = False
        self.counters = {
            "submitted": 0,
            "rejected": 0,
            "retries": 0,
            "reroutes": 0,
            "recovered": 0,
            "batches": 0,
            "batched_jobs": 0,
            "memory_rejected": 0,
            "memory_serialized": 0,
            "memory_degraded": 0,
        }
        #: High-water mark of the combined footprint estimate of the
        #: concurrently scheduled job set (bytes).
        self._memory_inflight_high = 0
        #: Running (sum, count) of completed-job modelled latencies so
        #: :meth:`retry_after_hint` — called on *every* submit — is O(1)
        #: instead of rescanning the whole job table.
        self._latency_sum = 0.0
        self._latency_count = 0
        #: Modelled launch-overhead seconds amortised away by wave batching.
        self.launch_seconds_saved = 0.0
        #: Jobs the most recent :meth:`step` executed (batch size).
        self.last_step_jobs = 0
        self.rung_counts = {rung: 0 for rung in RUNGS}
        if self.journal is not None and recover:
            self._recover()

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #

    def submit(self, spec: JobSpec) -> str:
        """Admit one job or raise (``ServiceOverloaded`` on backpressure).

        Returns the job id.  Raises
        :class:`~repro.errors.DuplicateJobError` for an id the service
        already knows — ids are the idempotency key crash recovery is
        built on.
        """
        self.counters["submitted"] += 1
        if spec.job_id in self.jobs:
            raise DuplicateJobError(
                f"job id {spec.job_id!r} was already submitted "
                f"(state: {self.jobs[spec.job_id].state.value})"
            )
        if spec.deadline_s is None and self.config.default_deadline_s is not None:
            spec = replace(spec, deadline_s=self.config.default_deadline_s)
        footprint = self._admission_estimate(spec)
        budget = self.memory_budget()
        if footprint is not None and budget is not None and footprint > budget:
            # No degradation rung can shrink an oversized job under the
            # device: admitting it only burns queue capacity on a
            # guaranteed OOM.  Reject with both sides of the comparison.
            self.counters["memory_rejected"] += 1
            self._emit_job_raw(
                job_id=spec.job_id, state="rejected",
                detail=f"memory pressure: estimate {footprint} B > "
                       f"budget {budget} B",
            )
            raise MemoryPressure(
                f"job {spec.job_id!r} needs an estimated {footprint} bytes "
                f"but the effective device budget is {budget} bytes; "
                f"shrink the graph or raise the budget",
                estimate_bytes=footprint,
                budget_bytes=budget,
                retry_after_s=self.retry_after_hint(),
                queue_depth=self.queue.depth,
            )
        record = JobRecord(
            spec=spec, seq=self._seq, admitted_clock_s=self.clock_s,
            footprint_bytes=footprint,
        )
        try:
            self.queue.push(record, retry_after_s=self.retry_after_hint())
        except ServiceOverloaded:
            self.counters["rejected"] += 1
            raise
        self._seq += 1
        self.jobs[spec.job_id] = record
        if self.journal is not None:
            self.journal.record(record)
        self._emit_job(record, "admitted")
        return spec.job_id

    def submit_graph(self, graph, job_id: str, **kwargs) -> str:
        """Submit an in-memory graph (not crash-recoverable; see GraphRef)."""
        self._memory_graphs[job_id] = graph
        return self.submit(
            JobSpec(job_id=job_id, graph=GraphRef(kind="memory", name=job_id), **kwargs)
        )

    def retry_after_hint(self) -> float:
        """Backpressure hint: expected seconds until a queue slot frees.

        Observed mean modelled job latency times the backlog per worker;
        falls back to ``retry_after_base_s`` before any job has finished.
        """
        per_job = (
            self._latency_sum / self._latency_count
            if self._latency_count
            else self.config.retry_after_base_s
        )
        backlog = self.queue.depth + len(self._running) + 1
        return max(
            self.config.retry_after_base_s,
            per_job * backlog / self.config.workers,
        )

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def step(self) -> JobRecord | None:
        """Run the next scheduled job to completion; ``None`` when idle.

        With :attr:`ServiceConfig.wave_batching` enabled, one step may
        execute a whole shared wave of compatible in-flight jobs (see
        :attr:`last_step_jobs` for how many it was).
        """
        self._fill_workers()
        if not self._running:
            self.last_step_jobs = 0
            return None
        batch = self._claim_batch()
        self.last_step_jobs = len(batch)
        if len(batch) > 1:
            self._execute_wave(batch)
        else:
            self._execute(batch[0])
        return batch[0]

    def drain(self, max_jobs: int | None = None) -> int:
        """Run jobs until the queue is empty (or ``max_jobs`` done).

        Returns the number of jobs executed.  Honours
        :meth:`request_stop` between jobs.
        """
        done = 0
        while not self.stop_requested:
            if max_jobs is not None and done >= max_jobs:
                break
            record = self.step()
            if record is None:
                break
            done += self.last_step_jobs
        return done

    def request_stop(self) -> None:
        """Ask the service to stop: drain() exits between jobs, and the
        currently running job checkpoints and returns at its next
        iteration boundary (its journal entry stays ``running``, so a
        restarted service resumes it)."""
        self.stop_requested = True

    def result(self, job_id: str) -> JobRecord:
        """The record of one job; raises ``JobNotFoundError`` if unknown."""
        record = self.jobs.get(job_id)
        if record is None:
            raise JobNotFoundError(f"unknown job id {job_id!r}")
        return record

    def _fill_workers(self) -> None:
        """Move pending jobs into the running set, up to ``workers``.

        With a memory budget configured, a job whose footprint would push
        the combined running-set estimate past the budget is *serialised*:
        it stays at the front of the queue and claims its slot once the
        current set retires, instead of running concurrently and tripping
        a live OOM.
        """
        while len(self._running) < self.config.workers and self.queue.depth > 0:
            record = self.queue.pop()
            if not self._memory_admits(record):
                self.queue.requeue(record)
                break
            record.state = JobState.RUNNING
            if self.journal is not None:
                self.journal.record(record)
            self._running.append(record)
            self._emit_job(record, "started")
        inflight = self._memory_inflight()
        if inflight > self._memory_inflight_high:
            self._memory_inflight_high = inflight

    # ------------------------------------------------------------------ #
    # Wave batching
    # ------------------------------------------------------------------ #

    def _claim_batch(self) -> list[JobRecord]:
        """Pop the next job plus every compatible in-flight companion.

        Compatibility is :func:`~repro.service.batch.batch_key` equality;
        non-members keep their relative order in the running set.  With
        batching disabled this is just ``popleft``.
        """
        record = self._running.popleft()
        if not self.config.wave_batching:
            return [record]
        key = batch_key(record.spec)
        if key is None:
            return [record]
        batch = [record]
        passed_over: deque[JobRecord] = deque()
        while self._running and len(batch) < self.config.batch_max_jobs:
            candidate = self._running.popleft()
            if batch_key(candidate.spec) == key:
                batch.append(candidate)
            else:
                passed_over.append(candidate)
        passed_over.extend(self._running)
        self._running = passed_over
        return batch

    def _execute_wave(self, batch: list[JobRecord]) -> None:
        """Execute one shared wave, then amortise its launch overhead.

        Each member runs through the normal :meth:`_execute` path — same
        engine calls, same labels, same journal protocol as an unbatched
        run — so batching can never change *what* a job computes, only
        what the modelled clock charges it.
        """
        for record in batch:
            self._execute(record)
        self._amortize_wave(batch)

    def _amortize_wave(self, batch: list[JobRecord]) -> None:
        eligible = [
            r for r in batch
            if r.state is JobState.COMPLETED
            and r.outcome is not None
            and r.outcome.rung == "full"
            and r.outcome.iteration_launches
        ]
        if len(eligible) < 2:
            return
        from repro.observe.profile import platform_for_device

        platform = platform_for_device(self.config.lpa.device)
        savings = amortize_launches(
            [r.outcome.iteration_launches for r in eligible],
            platform.launch_overhead,
        )
        if savings.saved_seconds <= 0.0:
            return
        # Re-price: the batch retires together at the amortised clock.
        self.clock_s -= savings.saved_seconds
        for record, saved in zip(eligible, savings.per_job_saved_s):
            self._untrack_latency(record.latency_s)
            record.outcome.modeled_seconds -= saved
            record.gpu_spent_s -= saved
            record.finished_clock_s = self.clock_s
            self._track_latency(record.latency_s)
            if self.journal is not None:
                self.journal.record(record)
        self.counters["batches"] += 1
        self.counters["batched_jobs"] += len(eligible)
        self.launch_seconds_saved += savings.saved_seconds
        self.tracer.emit(WaveBatchEvent(
            iteration=self.counters["batches"],
            job_ids=tuple(r.job_id for r in eligible),
            launches_sequential=savings.launches_sequential,
            launches_batched=savings.launches_batched,
            saved_seconds=savings.saved_seconds,
            per_job_saved_s=savings.per_job_saved_s,
        ))

    # ------------------------------------------------------------------ #
    # The per-job degradation ladder
    # ------------------------------------------------------------------ #

    def _execute(self, record: JobRecord) -> None:
        spec = record.spec
        try:
            graph = spec.graph.load(self._memory_graphs_for(spec))
        except ReproError as exc:
            self._finish_failed(record, f"graph load failed: {exc}")
            return

        if spec.kind == "subscription":
            self._execute_subscription(record, graph)
            return

        outcome = self._ladder(record, graph)
        if outcome is None:
            if self.stop_requested:
                # Interrupted mid-job: stays RUNNING in the journal so a
                # restart resumes it from its checkpoints.
                record.state = JobState.RUNNING
                if self.journal is not None:
                    self.journal.record(record)
                self._emit_job(record, "interrupted")
                self._running.appendleft(record)
                return
            self._finish_failed(
                record, "every degradation rung failed; see trace for rungs"
            )
            return
        self._finish_completed(record, outcome)

    def _execute_subscription(self, record: JobRecord, graph) -> None:
        """Run one subscription job: replay its delta log into epochs.

        The job completes when every acknowledged batch has become an
        epoch.  A killed service leaves the record ``running`` in the
        journal; on restart :meth:`_recover` re-admits it and the
        processor's own recovery replays the delta log past the last
        journaled epoch, resuming bit-identically (determinism of both
        application and detection).  New batches appended after
        completion are picked up by :meth:`advance_subscription`.
        """
        from repro.stream.processor import StreamProcessor

        spec = record.spec
        cfg = self._job_config(spec)
        if self.journal is not None:
            epoch_dir = self.journal.stream_dir(spec.job_id)
        else:
            epoch_dir = Path(spec.stream_dir) / "epochs"
        t0 = time.perf_counter()
        processor = None
        try:
            # Construction opens (and fscks) the delta log, so it belongs
            # inside the failure boundary too.
            processor = StreamProcessor(
                graph,
                spec.stream_dir,
                epoch_dir,
                config=cfg,
                engine=spec.engine,
                hops=spec.hops,
                policy=spec.delta_policy,
                tracer=self.tracer,
                differential_every=self.config.stream_differential_every,
                chaos=(lambda point: self._chaos(point, record)),
                price=(lambda result: self._price(result, cfg)),
                publish=(
                    None if self.read_catalog is None
                    else (lambda state, job_id=spec.job_id:
                          self.read_catalog.publish(
                              job_id, state.labels,
                              source="epoch", epoch=state.epoch,
                          ))
                ),
            )
            processor.recover()
            while not self.stop_requested:
                if processor.step() is None:
                    break
        except ReproError as exc:
            spent = processor.gpu_seconds if processor is not None else 0.0
            record.wall_spent_s += time.perf_counter() - t0
            record.gpu_spent_s += spent
            self.clock_s += spent
            self._finish_failed(record, f"subscription failed: {exc}")
            return
        wall = time.perf_counter() - t0
        record.wall_spent_s += wall
        record.gpu_spent_s += processor.gpu_seconds
        self.clock_s += processor.gpu_seconds
        if self.stop_requested and processor.lag:
            record.state = JobState.RUNNING
            if self.journal is not None:
                self.journal.record(record)
            self._emit_job(
                record, "interrupted",
                detail=f"subscription paused at epoch {processor.epoch} "
                       f"(lag {processor.lag})",
            )
            self._running.appendleft(record)
            return
        self._finish_completed(record, JobOutcome(
            labels=processor.labels,
            rung="full",
            converged=True,
            iterations=processor.epoch,
            stop_detail=f"subscription caught up at epoch {processor.epoch} "
                        f"(log head {processor.log.head_seq})",
            modeled_seconds=processor.gpu_seconds,
            wall_seconds=wall,
        ))

    def advance_subscription(self, job_id: str) -> bool:
        """Re-admit a completed subscription whose log has new batches.

        Returns ``True`` when the job was re-queued (call :meth:`drain`
        to process the new epochs), ``False`` when it is already caught
        up or not yet finished.
        """
        record = self.result(job_id)
        if record.spec.kind != "subscription":
            raise ConfigurationError(
                f"job {job_id!r} is not a subscription (kind="
                f"{record.spec.kind!r})"
            )
        if record.state is not JobState.COMPLETED:
            return False
        from repro.stream.log import DeltaLog

        if self.journal is not None:
            epoch_dir = self.journal.stream_dir(job_id)
        else:
            epoch_dir = Path(record.spec.stream_dir) / "epochs"
        from repro.stream.epoch import EpochJournal

        state = EpochJournal(epoch_dir).latest()
        head = DeltaLog(record.spec.stream_dir).head_seq
        if state is not None and state.epoch >= head:
            return False
        record.state = JobState.PENDING
        record.outcome = None
        record.admitted_clock_s = self.clock_s
        self.queue.push(record, retry_after_s=self.retry_after_hint())
        if self.journal is not None:
            self.journal.record(record)
        self._emit_job(
            record, "admitted",
            detail=f"subscription advanced (epoch "
                   f"{0 if state is None else state.epoch} -> head {head})",
        )
        return True

    def _ladder(self, record: JobRecord, graph) -> JobOutcome | None:
        """Descend the ladder until some rung produces labels."""
        spec = record.spec
        requested = spec.engine

        # Rung 1: full run on the requested engine (breaker permitting),
        # with job-level retries.
        if self._breaker_allows(requested):
            outcome = self._full_rung(record, graph, requested)
            if outcome is not None or self.stop_requested:
                return outcome
            if record.last_error is not None and not is_retryable(record.last_error):
                # Permanent input problem (validation, format, config):
                # every rung would reject the same bytes the same way.
                return None
        else:
            self._emit_job(
                record, "rerouted", rung="fallback-engine",
                detail=f"breaker open for {requested!r}",
            )
            self.counters["reroutes"] += 1

        # A spent deadline skips straight to the cheapest rung: both the
        # alternate engine and the coarsened run still cost real work.
        budget = record.remaining_budget()
        if budget is not None and budget.exhausted:
            return self._checkpoint_rung(record, graph)

        # Rung 2: one shot on the alternate engine, no injected faults.
        alt = _alternate(requested)
        if self._breaker_allows(alt):
            outcome = self._attempt(
                record, graph, alt, supervised=False,
                rung="fallback-engine",
                reason=f"breaker:{requested}->{alt}"
                if not self._breaker_allows(requested, peek=True)
                else f"fallback:{requested}->{alt}",
            )
            if outcome is not None or self.stop_requested:
                return outcome

        # Rung 3: coarsened-graph approximation.
        outcome = self._coarsened_rung(record, graph)
        if outcome is not None:
            return outcome

        # Rung 4: best-so-far checkpoint labels.
        return self._checkpoint_rung(record, graph)

    def _full_rung(self, record, graph, engine: str) -> JobOutcome | None:
        """Rung 1: supervised full runs with retry + backoff."""
        while record.attempts < self.config.max_attempts:
            budget = record.remaining_budget()
            if budget is not None and budget.exhausted:
                self._emit_job(
                    record, "degraded", rung="checkpoint-labels",
                    detail="propagated deadline exhausted before attempt",
                )
                return None
            attempt = record.attempts
            record.attempts += 1
            outcome = self._attempt(
                record, graph, engine, supervised=True, rung="full",
                reason=None,
            )
            if outcome is not None or self.stop_requested:
                return outcome
            if record.last_error is not None and not is_retryable(record.last_error):
                return None  # permanent: the ladder cannot help either,
                # but the caller will fail the job via _finish_failed.
            delay = self.config.backoff.jittered_delay(record.job_id, attempt)
            record.backoffs.append(delay)
            record.wall_spent_s += delay
            self.counters["retries"] += 1
            self._emit_job(
                record, "retrying",
                detail=f"attempt {attempt + 1} failed "
                       f"({type(record.last_error).__name__}); "
                       f"backoff {delay:.3f}s",
            )
            if delay > 0:
                time.sleep(delay)
            if not self._breaker_allows(engine):
                return None  # breaker tripped mid-retry: descend.
        return None

    def _attempt(
        self, record, graph, engine: str, *, supervised: bool,
        rung: str, reason: str | None,
    ) -> JobOutcome | None:
        """One run attempt on one engine; returns None on failure."""
        spec = record.spec
        cfg = self._job_config(spec)
        resilience = self._resilience_for(spec, engine) if supervised else None
        budget = record.remaining_budget()
        t0 = time.perf_counter()
        try:
            result = nu_lpa(
                graph, cfg, engine=engine,
                warn_on_no_convergence=False,
                resilience=resilience,
                validate=spec.validate,
                budget=budget,
                cancel=(lambda: self.stop_requested),
            )
        except CheckpointError:
            # A stale per-job checkpoint (e.g. the breaker rerouted this
            # job to a different engine than a pre-crash attempt used):
            # scrub it and rerun fresh — determinism makes that safe.
            self._scrub_job_checkpoints(spec.job_id)
            try:
                result = nu_lpa(
                    graph, cfg, engine=engine,
                    warn_on_no_convergence=False,
                    resilience=self._resilience_for(spec, engine)
                    if supervised else None,
                    validate=spec.validate,
                    budget=budget,
                    cancel=(lambda: self.stop_requested),
                )
            except ReproError as exc:
                return self._attempt_failed(record, engine, exc, t0)
        except ReproError as exc:
            return self._attempt_failed(record, engine, exc, t0)

        wall = time.perf_counter() - t0
        gpu = self._price(result, cfg)
        record.wall_spent_s += wall
        record.gpu_spent_s += gpu
        record.last_error = None
        self.clock_s += gpu

        if result.degraded_reason == "interrupted":
            return None  # handled by _execute via stop_requested

        # Engine health signal: a clean run closes the loop; a run that
        # needed the supervisor's per-iteration fallback is distress.
        distressed = any(ev.action == "fallback" for ev in result.fault_events)
        self._breaker_record(engine, success=not distressed)

        mem = result.memory
        if mem is not None and (
            mem.get("ooms") or mem.get("shrinks")
            or mem.get("construction_rungs")
        ):
            # The run only fit the device by descending a memory rung
            # (compact layout, table shrink, ...) — count it so operators
            # can see sustained pressure before jobs start failing.
            self.counters["memory_degraded"] += 1

        degraded_reason = result.degraded_reason
        if reason is not None:
            degraded_reason = (
                reason if degraded_reason is None
                else f"{reason};{degraded_reason}"
            )
        elif distressed:
            degraded_reason = degraded_reason or "engine-fallback-iterations"

        stop_detail = ""
        if not result.converged and result.degraded_reason is None:
            n = graph.num_vertices
            frac = result.iterations[-1].changed / n if result.iterations and n else 0.0
            stop_detail = (
                f"max-iterations ({result.num_iterations} iterations, "
                f"final changed fraction {frac:.4f} >= tol {cfg.tolerance})"
            )

        return JobOutcome(
            labels=result.labels,
            rung=rung,
            converged=result.converged,
            iterations=result.num_iterations,
            degraded_reason=degraded_reason,
            stop_detail=stop_detail,
            modeled_seconds=gpu,
            wall_seconds=wall,
            iteration_launches=tuple(
                int(it.counters.launches) for it in result.iterations
            ),
        )

    def _attempt_failed(self, record, engine, exc, t0) -> None:
        record.wall_spent_s += time.perf_counter() - t0
        record.last_error = exc
        self._breaker_record(engine, success=False)
        return None

    def _coarsened_rung(self, record, graph) -> JobOutcome | None:
        """Rung 3: approximate answer from the coarsened graph."""
        if graph.num_vertices == 0:
            return None
        from repro.graph.coarsen import coarsen

        spec = record.spec
        cfg = self._job_config(spec)
        target = max(32, int(graph.num_vertices * self.config.coarsen_target_fraction))
        t0 = time.perf_counter()
        try:
            hierarchy = coarsen(graph, target_vertices=target)
            coarse = nu_lpa(
                hierarchy.coarsest, cfg, engine="vectorized",
                warn_on_no_convergence=False,
                budget=record.remaining_budget(),
                cancel=(lambda: self.stop_requested),
            )
        except ReproError as exc:
            record.wall_spent_s += time.perf_counter() - t0
            record.last_error = exc
            return None
        wall = time.perf_counter() - t0
        gpu = self._price(coarse, cfg)
        record.wall_spent_s += wall
        record.gpu_spent_s += gpu
        self.clock_s += gpu
        if coarse.degraded_reason == "interrupted":
            return None
        labels = coarse.labels[hierarchy.mapping]
        self._emit_job(
            record, "degraded", rung="coarsened",
            detail=f"approximated on {hierarchy.coarsest.num_vertices} "
                   f"super-vertices (reduction {hierarchy.reduction:.1f}x)",
        )
        return JobOutcome(
            labels=labels,
            rung="coarsened",
            converged=coarse.converged,
            iterations=coarse.num_iterations,
            degraded_reason="coarsened-approximation",
            modeled_seconds=gpu,
            wall_seconds=wall,
        )

    def _checkpoint_rung(self, record, graph) -> JobOutcome | None:
        """Rung 4: the best-so-far labels a failed attempt left behind."""
        if self.journal is None:
            return None
        from repro.resilience.checkpoint import CheckpointManager

        ckpt_dir = self.journal.checkpoint_dir(record.job_id)
        if not ckpt_dir.is_dir():
            return None
        state = CheckpointManager(ckpt_dir).latest()
        if state is None or state.labels.shape[0] != graph.num_vertices:
            return None
        self._emit_job(
            record, "degraded", rung="checkpoint-labels",
            detail=f"best-so-far snapshot at iteration {state.iteration}",
        )
        return JobOutcome(
            labels=state.labels,
            rung="checkpoint-labels",
            converged=state.converged,
            iterations=state.iteration,
            degraded_reason="checkpoint-labels",
        )

    # ------------------------------------------------------------------ #
    # Completion
    # ------------------------------------------------------------------ #

    def _finish_completed(self, record: JobRecord, outcome: JobOutcome) -> None:
        record.state = JobState.COMPLETED
        record.outcome = outcome
        record.finished_clock_s = self.clock_s
        self._track_latency(record.latency_s)
        self.rung_counts[outcome.rung] = self.rung_counts.get(outcome.rung, 0) + 1
        self.queue.release(record)
        if self.journal is not None:
            self.journal.record(record)
        # Publish *after* the journal write: a crash mid-publish leaves the
        # catalog serving the previous CRC-verified version while the job
        # itself is durably completed (the recovery republish heals it).
        if (
            self.read_catalog is not None
            and outcome.labels is not None
            and record.spec.kind == "detect"
        ):
            self.read_catalog.publish(
                record.job_id, outcome.labels, source="job"
            )
        self._emit_job(
            record,
            "completed" if not outcome.degraded else "degraded",
            rung=outcome.rung,
            detail=outcome.degraded_reason or outcome.stop_detail or "",
        )
        self._chaos("job-finished", record)

    def _finish_failed(self, record: JobRecord, error: str) -> None:
        record.state = JobState.FAILED
        record.outcome = JobOutcome(labels=None, rung="full", error=error)
        record.finished_clock_s = self.clock_s
        self.queue.release(record)
        if self.journal is not None:
            self.journal.record(record)
        self._emit_job(record, "failed", detail=error)
        self._chaos("job-finished", record)

    # ------------------------------------------------------------------ #
    # Crash recovery
    # ------------------------------------------------------------------ #

    def _recover(self) -> None:
        """Replay the journal: completed jobs keep their labels, unfinished
        jobs re-enter the queue in their original order."""
        records, skipped = self.journal.load_all()
        # Journaled jobs were already admitted once; capacity must never
        # drop them on replay, so widen the queue if the journal is bigger.
        unfinished = sum(
            1 for r in records
            if r.state in (JobState.PENDING, JobState.RUNNING)
        )
        self.queue.capacity = max(self.queue.capacity, unfinished)
        saved_cap = self.queue.tenant_inflight
        self.queue.tenant_inflight = None  # same reasoning for tenant caps
        for record in records:
            self.jobs[record.job_id] = record
            self._seq = max(self._seq, record.seq + 1)
            if record.state in (JobState.COMPLETED, JobState.FAILED):
                if record.state is JobState.COMPLETED:
                    self._track_latency(record.latency_s)
                    # Heal a crash between journal write and publish; the
                    # catalog dedupes, so an already-published job is a
                    # no-op and versions stay stable across restarts.
                    if (
                        self.read_catalog is not None
                        and record.outcome is not None
                        and record.outcome.labels is not None
                        and record.spec.kind == "detect"
                    ):
                        self.read_catalog.publish(
                            record.job_id, record.outcome.labels,
                            source="job",
                        )
                if record.outcome is not None and record.outcome.rung in self.rung_counts:
                    if record.state is JobState.COMPLETED:
                        self.rung_counts[record.outcome.rung] += 1
                continue
            if not record.spec.graph.recoverable:
                self._finish_failed(
                    record,
                    "in-memory graph died with the crashed process; resubmit",
                )
                continue
            record.state = JobState.PENDING
            self.counters["recovered"] += 1
            self.queue.push(record, retry_after_s=self.config.retry_after_base_s)
            self._emit_job(
                record, "recovered",
                detail=f"re-admitted after restart (attempts so far: "
                       f"{record.attempts})",
            )
        self.queue.tenant_inflight = saved_cap
        for path in skipped:
            self._emit_job_raw(
                job_id=path.stem, state="failed",
                detail=f"unreadable journal record {path.name} skipped",
            )

    # ------------------------------------------------------------------ #
    # Health / stats
    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        """Schema-validated health snapshot (``repro.observe/service``)."""
        by_state = {state: 0 for state in JobState}
        for record in self.jobs.values():
            by_state[record.state] += 1
        completed = [
            r for r in self.jobs.values() if r.state is JobState.COMPLETED
        ]
        degraded = sum(
            1 for r in completed
            if r.outcome is not None and r.outcome.degraded
        )
        lat_model = np.asarray([r.latency_s for r in completed], dtype=np.float64)
        lat_wall = np.asarray([r.wall_spent_s for r in completed], dtype=np.float64)

        def pct(arr: np.ndarray, q: float) -> float:
            return float(np.percentile(arr, q)) if arr.size else 0.0

        return {
            "schema": "repro.observe/service",
            "version": 3,
            "clock_s": self.clock_s,
            "wall_seconds": time.perf_counter() - self._wall_start,
            "workers": self.config.workers,
            "queue": {
                "depth": self.queue.depth,
                "capacity": self.queue.capacity,
                "tenants": self.queue.tenant_loads(),
                "rejected_queue_full": self.queue.rejected_queue_full,
                "rejected_tenant_cap": self.queue.rejected_tenant_cap,
            },
            "jobs": {
                "submitted": self.counters["submitted"],
                "rejected": self.counters["rejected"],
                "recovered": self.counters["recovered"],
                "retries": self.counters["retries"],
                "reroutes": self.counters["reroutes"],
                "pending": by_state[JobState.PENDING],
                "running": by_state[JobState.RUNNING],
                "completed": by_state[JobState.COMPLETED],
                "failed": by_state[JobState.FAILED],
                "degraded": degraded,
            },
            "rungs": dict(self.rung_counts),
            "batching": {
                "enabled": self.config.wave_batching,
                "batches": self.counters["batches"],
                "batched_jobs": self.counters["batched_jobs"],
                "launch_seconds_saved": self.launch_seconds_saved,
            },
            "memory": {
                "enabled": self.config.memory_budget_bytes is not None,
                "budget_bytes": self.memory_budget() or 0,
                "in_flight_bytes": self._memory_inflight(),
                "high_water_bytes": self._memory_inflight_high,
                "rejections": self.counters["memory_rejected"],
                "serialized": self.counters["memory_serialized"],
                "degradations": self.counters["memory_degraded"],
            },
            "breakers": [b.snapshot() for b in self.breakers.values()],
            "latency": {
                "count": int(lat_model.size),
                "p50_modeled_s": pct(lat_model, 50),
                "p95_modeled_s": pct(lat_model, 95),
                "p50_wall_s": pct(lat_wall, 50),
                "p95_wall_s": pct(lat_wall, 95),
            },
            "totals": {
                "modeled_seconds": self.clock_s,
                "wall_spent_s": float(
                    sum(r.wall_spent_s for r in self.jobs.values())
                ),
            },
        }

    def snapshot(self) -> dict:
        """Emit a :class:`ServiceStatsEvent` and return the full stats."""
        doc = self.stats()
        self._snapshot_seq += 1
        self.tracer.emit(ServiceStatsEvent(
            iteration=self._snapshot_seq,
            queue_depth=doc["queue"]["depth"],
            running=doc["jobs"]["running"],
            completed=doc["jobs"]["completed"],
            failed=doc["jobs"]["failed"],
            degraded=doc["jobs"]["degraded"],
            p50_latency_s=doc["latency"]["p50_modeled_s"],
            p95_latency_s=doc["latency"]["p95_modeled_s"],
            breaker_states=tuple(
                f"{b['engine']}:{b['state']}" for b in doc["breakers"]
            ),
        ))
        return doc

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    def _memory_graphs_for(self, spec: JobSpec) -> dict:
        return self._memory_graphs

    # ------------------------------------------------------------------ #
    # Memory-aware admission
    # ------------------------------------------------------------------ #

    def memory_budget(self) -> int | None:
        """Effective admission budget in bytes (``None`` = unmetered).

        ``memory_budget_bytes`` minus the reserved fraction — the same
        arithmetic the per-run :class:`~repro.gpu.governor.MemoryGovernor`
        applies, so admission and live enforcement agree on the ceiling.
        """
        raw = self.config.memory_budget_bytes
        if raw is None:
            return None
        return max(1, int(raw * (1.0 - self.config.reserved_memory_fraction)))

    def _admission_estimate(self, spec: JobSpec) -> int | None:
        """Analytic peak-footprint estimate for one submission, in bytes.

        Returns ``None`` when no budget is configured (zero-overhead
        path) or when the graph cannot be materialised here — the load
        error then surfaces through the normal execution path with its
        own typed error instead of masquerading as memory pressure.
        """
        if self.config.memory_budget_bytes is None:
            return None
        try:
            graph = spec.graph.load(self._memory_graphs)
        except ReproError:
            return None
        from repro.gpu.governor import footprint_for

        template = self.config.resilience
        estimate = footprint_for(
            graph,
            self._job_config(spec),
            engine=spec.engine,
            integrity=(template is not None and template.integrity is not None),
            checkpointing=(self.journal is not None
                           or (template is not None
                               and template.checkpoint_dir is not None)),
        )
        return int(estimate["total"])

    def _memory_admits(self, record: JobRecord) -> bool:
        """Whether this job fits next to the currently scheduled set."""
        budget = self.memory_budget()
        if budget is None:
            return True
        if record.footprint_bytes is None:
            # Recovered record (footprint is not journaled): re-estimate.
            record.footprint_bytes = self._admission_estimate(record.spec)
        if record.footprint_bytes is None or not self._running:
            # Unknown estimate, or nothing else running: admit — a job
            # that fits alone must always make progress (the per-run
            # governor still enforces the budget live).
            return True
        if self._memory_inflight() + record.footprint_bytes <= budget:
            return True
        self.counters["memory_serialized"] += 1
        self._emit_job(
            record, "serialized",
            detail=f"footprint {record.footprint_bytes} B would exceed "
                   f"budget {budget} B next to {len(self._running)} "
                   f"running job(s); waiting for memory",
        )
        return False

    def _memory_inflight(self) -> int:
        """Combined footprint estimate of the scheduled set, in bytes."""
        return sum(r.footprint_bytes or 0 for r in self._running)

    def _job_config(self, spec: JobSpec) -> LPAConfig:
        cfg = self.config.lpa
        changes = {}
        if spec.max_iterations is not None:
            changes["max_iterations"] = spec.max_iterations
        if spec.tolerance is not None:
            changes["tolerance"] = spec.tolerance
        if (self.config.memory_budget_bytes is not None
                and cfg.memory_budget_bytes is None):
            changes["memory_budget_bytes"] = self.config.memory_budget_bytes
            changes["reserved_memory_fraction"] = (
                self.config.reserved_memory_fraction
            )
        return cfg.with_(**changes) if changes else cfg

    def _resilience_for(self, spec: JobSpec, engine: str) -> ResilienceConfig | None:
        template = self.config.resilience or ResilienceConfig()
        faults = (self.config.engine_faults or {}).get(engine)
        if self.journal is None:
            if faults is None and self.config.resilience is None:
                return None
            return template.with_(faults=faults)
        return template.with_(
            faults=faults,
            checkpoint_dir=self.journal.checkpoint_dir(spec.job_id),
            checkpoint_every=self.config.checkpoint_every,
            checkpoint_keep=self.config.checkpoint_keep,
            resume=True,
            checkpoint_factory=self.config.checkpoint_factory,
        )

    def _price(self, result, cfg: LPAConfig) -> float:
        from repro.observe.profile import platform_for_device
        from repro.perf.model import estimate_gpu_seconds

        return estimate_gpu_seconds(
            result.total_counters, platform_for_device(cfg.device)
        )

    def _scrub_job_checkpoints(self, job_id: str) -> None:
        if self.journal is None:
            return
        ckpt_dir = self.journal.checkpoint_dir(job_id)
        if ckpt_dir.is_dir():
            for path in ckpt_dir.glob("*"):
                path.unlink(missing_ok=True)

    def _breaker_allows(self, engine: str, *, peek: bool = False) -> bool:
        if not self.config.breaker_enabled:
            return True
        breaker = self.breakers[engine]
        if peek:
            return breaker.state != "open"
        before = len(breaker.transitions)
        allowed = breaker.allow(self.clock_s)
        self._mirror_breaker(breaker, before)
        return allowed

    def _breaker_record(self, engine: str, *, success: bool) -> None:
        if not self.config.breaker_enabled:
            return
        breaker = self.breakers[engine]
        before = len(breaker.transitions)
        breaker.record(success, self.clock_s)
        self._mirror_breaker(breaker, before)

    def _mirror_breaker(self, breaker: CircuitBreaker, before: int) -> None:
        for clock, transition, rate in breaker.transitions[before:]:
            self.tracer.emit(BreakerEvent(
                iteration=sum(
                    1 for r in self.jobs.values()
                    if r.state in (JobState.COMPLETED, JobState.FAILED)
                ),
                engine=breaker.engine,
                transition=transition,
                failure_rate=rate,
            ))

    def _emit_job(self, record: JobRecord, state: str, *, rung: str = "",
                  detail: str = "") -> None:
        self.tracer.emit(JobEvent(
            iteration=record.attempts,
            job_id=record.job_id,
            state=state,
            rung=rung,
            detail=detail,
        ))

    def _emit_job_raw(self, *, job_id: str, state: str, detail: str) -> None:
        self.tracer.emit(JobEvent(
            iteration=0, job_id=job_id, state=state, detail=detail,
        ))

    def _track_latency(self, latency_s: float) -> None:
        """Fold one completed job's latency into the running mean."""
        if latency_s > 0:
            self._latency_sum += latency_s
            self._latency_count += 1

    def _untrack_latency(self, latency_s: float) -> None:
        """Remove a latency contribution (wave batching re-prices jobs)."""
        if latency_s > 0:
            self._latency_sum -= latency_s
            self._latency_count -= 1

    def _chaos(self, point: str, record: JobRecord) -> None:
        hook = self.config.chaos_hook
        if hook is not None:
            hook(point, record)
