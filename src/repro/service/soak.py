"""Kill/restart soak harness for the detection service.

The recovery contract the service sells is strong: *kill the process at
any instant, restart it over the same journal, and every admitted job
still completes exactly once with bit-identical labels* — no lost jobs,
no duplicated completions, no drifted results.  This harness proves it
the same way the chaos layer proves single-run recovery:

1. run a reference service to completion with no crashes and record each
   job's final labels;
2. replay the same workload under a seeded schedule of injected process
   deaths — between jobs (via the service's ``chaos_hook``) and *inside*
   checkpoint writes (via :class:`CrashingCheckpointManager`) — restarting
   a fresh service over the surviving journal after each death;
3. assert every job completed exactly once, with labels equal bit-for-bit
   to the reference.

Crashes surface as :class:`~repro.resilience.chaos.InjectedCrash`, which
deliberately is *not* a ``ReproError`` — anything in the service that
swallowed it broadly would invalidate the soak.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.resilience.chaos import (
    CrashingCheckpointManager,
    CrashPoint,
    InjectedCrash,
)
from repro.service.job import JobSpec, JobState
from repro.service.service import DetectionService, ServiceConfig

__all__ = ["ServiceSoakOutcome", "run_service_soak"]

#: Hard cap on restarts per schedule: a bug that makes recovery loop
#: forever must fail the soak, not hang it.
_MAX_RESTARTS = 64


@dataclass
class ServiceSoakOutcome:
    """Result of one seeded kill/restart schedule."""

    seed: int
    jobs: int
    crashes: int
    restarts: int
    #: Jobs whose recovered labels matched the reference bit-for-bit.
    identical: int
    lost: list[str] = field(default_factory=list)
    duplicated: list[str] = field(default_factory=list)
    mismatched: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.identical == self.jobs
            and not self.lost
            and not self.duplicated
            and not self.mismatched
        )

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "jobs": self.jobs,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "identical": self.identical,
            "lost": list(self.lost),
            "duplicated": list(self.duplicated),
            "mismatched": list(self.mismatched),
            "ok": self.ok,
        }


def _reference_labels(
    specs: list[JobSpec], config: ServiceConfig
) -> dict[str, np.ndarray]:
    """Crash-free run of the workload; the ground truth to compare against."""
    service = DetectionService(config, recover=False)
    for spec in specs:
        service.submit(spec)
    service.drain()
    out: dict[str, np.ndarray] = {}
    for spec in specs:
        record = service.result(spec.job_id)
        if record.state is not JobState.COMPLETED or record.outcome is None:
            raise ConfigurationError(
                f"soak workload job {spec.job_id!r} does not complete even "
                f"without crashes ({record.state.value}); fix the workload"
            )
        out[spec.job_id] = record.outcome.labels.copy()
    return out


def run_service_soak(
    specs: list[JobSpec],
    *,
    journal_dir: str | Path,
    config: ServiceConfig | None = None,
    seed: int = 0,
    crash_between_jobs: int = 2,
    crash_in_checkpoint: int = 1,
) -> ServiceSoakOutcome:
    """Run one seeded kill/restart schedule over ``specs``.

    Parameters
    ----------
    specs:
        The workload.  Every spec must use a *recoverable* graph ref
        (``dataset`` or ``file``) — that is the soak's whole point.
    journal_dir:
        Journal root for the chaos run (must start empty).
    config:
        Service tuning shared by the reference and chaos runs; the harness
        fills in ``journal_dir`` / ``chaos_hook`` / ``checkpoint_factory``
        itself.
    seed:
        Seeds the schedule: which jobs die between completions, which die
        mid-checkpoint, and at which checkpoint iteration.
    crash_between_jobs / crash_in_checkpoint:
        How many deaths of each kind to schedule (clamped to the job
        count).
    """
    base = (config or ServiceConfig()).with_(
        journal_dir=None, chaos_hook=None, checkpoint_factory=None
    )
    for spec in specs:
        if not spec.graph.recoverable:
            raise ConfigurationError(
                f"soak job {spec.job_id!r} uses an in-memory graph; "
                f"only recoverable graph refs can survive a kill"
            )
    reference = _reference_labels(specs, base)

    rng = np.random.default_rng([seed & 0x7FFFFFFF, len(specs)])
    n = len(specs)
    between = set(
        rng.choice(n, size=min(crash_between_jobs, n), replace=False).tolist()
    ) if crash_between_jobs > 0 and n > 0 else set()
    in_ckpt = set(
        rng.choice(n, size=min(crash_in_checkpoint, n), replace=False).tolist()
    ) if crash_in_checkpoint > 0 and n > 0 else set()
    ckpt_iteration = int(rng.integers(1, 4))

    journal_dir = Path(journal_dir)
    crashes = 0
    restarts = 0
    submitted: set[str] = set()
    completions: dict[str, int] = {}

    # Mutable schedule state shared by the hooks across restarts: each
    # scheduled death fires exactly once.
    pending_between = set(between)
    pending_ckpt = set(in_ckpt)

    def chaos_hook(point: str, record) -> None:
        if point != "job-finished":
            return
        # Duplicate-work detector: a completion observed here is real
        # executed work (recovery replays of already-completed jobs load
        # journaled labels and never come through this hook again).
        if record.state is JobState.COMPLETED:
            completions[record.job_id] = completions.get(record.job_id, 0) + 1
        idx = _spec_index(specs, record.job_id)
        if idx in pending_between:
            pending_between.discard(idx)
            raise InjectedCrash(
                f"scheduled process death after job {record.job_id!r}"
            )

    class _Factory:
        """Checkpoint factory that arms a crash for scheduled jobs only."""

        def __init__(self) -> None:
            self._armed: set[str] = set()

        def __call__(self, directory, *, every=1, keep=None):
            directory = Path(directory)
            job_key = directory.name
            for idx in list(pending_ckpt):
                if directory.name.startswith(_safe_prefix(specs[idx].job_id)):
                    if job_key not in self._armed:
                        self._armed.add(job_key)
                        pending_ckpt.discard(idx)
                        return CrashingCheckpointManager(
                            directory, every=every, keep=keep,
                            crash=CrashPoint(
                                iteration=ckpt_iteration, mode="after-write"
                            ),
                        )
            from repro.resilience.checkpoint import CheckpointManager

            return CheckpointManager(directory, every=every, keep=keep)

    chaos_config = base.with_(
        journal_dir=journal_dir,
        chaos_hook=chaos_hook,
        checkpoint_factory=_Factory(),
    )

    service = DetectionService(chaos_config)
    while True:
        try:
            for spec in specs:
                if spec.job_id not in submitted and spec.job_id not in service.jobs:
                    service.submit(spec)
                    submitted.add(spec.job_id)
            service.drain()
            break
        except InjectedCrash:
            crashes += 1
            restarts += 1
            if restarts > _MAX_RESTARTS:
                raise ConfigurationError(
                    f"service soak exceeded {_MAX_RESTARTS} restarts; "
                    f"recovery is looping"
                ) from None
            # The "process" dies: drop the instance, restart on the journal.
            service = DetectionService(chaos_config)

    lost: list[str] = []
    mismatched: list[str] = []
    identical = 0
    for spec in specs:
        try:
            record = service.result(spec.job_id)
        except Exception:
            lost.append(spec.job_id)
            continue
        if record.state is not JobState.COMPLETED or record.outcome is None:
            lost.append(spec.job_id)
            continue
        if np.array_equal(record.outcome.labels, reference[spec.job_id]):
            identical += 1
        else:
            mismatched.append(spec.job_id)
    duplicated = sorted(j for j, c in completions.items() if c > 1)

    return ServiceSoakOutcome(
        seed=seed,
        jobs=len(specs),
        crashes=crashes,
        restarts=restarts,
        identical=identical,
        lost=lost,
        duplicated=duplicated,
        mismatched=mismatched,
    )


def _spec_index(specs: list[JobSpec], job_id: str) -> int:
    for i, spec in enumerate(specs):
        if spec.job_id == job_id:
            return i
    return -1


def _safe_prefix(job_id: str) -> str:
    from repro.service.journal import _safe_name

    return _safe_name(job_id)
