"""Durable streaming-graph pipeline: delta log, epochs, subscriptions.

Streams mutate the graph the paper's kernels consume.  The pipeline turns
a sequence of edge mutations into a sequence of *epochs* — each pairing a
graph version with warm-started ν-LPA labels — with the same crash
semantics the checkpoint layer sells for single runs: kill the process at
any instant, restart it over the same directories, and the stream resumes
bit-identically.

Modules
-------
:mod:`repro.stream.delta`
    :class:`DeltaBatch` — validated edge insert/delete/weight-update
    batches with strict/repair/quarantine policies and a dead-letter file.
:mod:`repro.stream.log`
    :class:`DeltaLog` — the CRC-framed write-ahead log of acknowledged
    batches (fsync per append, atomic segment rotation, torn-tail fsck).
:mod:`repro.stream.epoch`
    :func:`apply_batch` onto an immutable CSR plus the
    :class:`EpochJournal` of labels snapshots.
:mod:`repro.stream.processor`
    :class:`StreamProcessor` — replays the log into epochs with
    warm-started incremental re-detection and crash recovery.
:mod:`repro.stream.soak`
    :func:`run_stream_soak` — the kill/restart chaos proof.
"""

from __future__ import annotations

_EXPORTS = {
    "DeltaOp": "repro.stream.delta",
    "DeltaBatch": "repro.stream.delta",
    "DeltaValidationReport": "repro.stream.delta",
    "DeadLetterFile": "repro.stream.delta",
    "validate_batch": "repro.stream.delta",
    "DeltaLog": "repro.stream.log",
    "StreamFsckEntry": "repro.stream.log",
    "fsck_log": "repro.stream.log",
    "ApplyOutcome": "repro.stream.epoch",
    "apply_batch": "repro.stream.epoch",
    "EpochState": "repro.stream.epoch",
    "EpochJournal": "repro.stream.epoch",
    "StreamProcessor": "repro.stream.processor",
    "StreamSoakOutcome": "repro.stream.soak",
    "run_stream_soak": "repro.stream.soak",
    "random_delta_batches": "repro.stream.soak",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    target = _EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module 'repro.stream' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
