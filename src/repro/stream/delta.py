"""Delta batches: the validated unit of graph mutation.

A :class:`DeltaBatch` is an ordered sequence of edge mutations —
``add`` / ``remove`` / ``update`` — plus an optional grow-only vertex-count
declaration.  Batches are immutable and JSON-round-trippable because the
write-ahead log (:mod:`repro.stream.log`) journals them verbatim and crash
recovery replays them.

Validation reuses the hardening layer's three policies
(:data:`repro.resilience.validate.POLICIES`):

``strict``
    Any malformed op raises :class:`~repro.errors.DeltaValidationError`
    carrying the full :class:`DeltaValidationReport`; nothing is applied.
``repair``
    Weight defects get the same value-preserving fixes the graph sweep
    applies (NaN → 1.0, overflow → fp32 max, negative → 0); ops with no
    unambiguous fix (unknown kind, endpoint out of range) are quarantined.
``quarantine``
    Every offending op is dropped to the :class:`DeadLetterFile` with
    machine-readable reasons — never silently discarded.

Graph-*dependent* defects (removing an edge the graph does not have) are
checked at apply time by :func:`repro.stream.epoch.apply_batch`, which
funnels them through the same report and dead-letter plumbing.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import DeltaValidationError
from repro.resilience.validate import (
    FP32_MAX,
    ValidationIssue,
    check_policy,
)

__all__ = [
    "OPS",
    "DeltaOp",
    "DeltaBatch",
    "DeltaValidationReport",
    "DeadLetterFile",
    "validate_batch",
]

#: Mutation kinds a batch may carry.
OPS = ("add", "remove", "update")


@dataclass(frozen=True)
class DeltaOp:
    """One edge mutation.

    ``add`` inserts the undirected edge (both arcs; weight defaults to
    1.0), ``remove`` deletes it, ``update`` replaces its weight (weight
    required).  Self-loops are legal; the CSR layer stores them as single
    arcs.
    """

    op: str
    src: int
    dst: int
    weight: float | None = None

    def as_dict(self) -> dict:
        """JSON-ready representation (the WAL payload element)."""
        return {"op": self.op, "src": self.src, "dst": self.dst,
                "weight": self.weight}

    @classmethod
    def from_dict(cls, raw: dict) -> "DeltaOp":
        w = raw.get("weight")
        return cls(
            op=str(raw["op"]),
            src=int(raw["src"]),
            dst=int(raw["dst"]),
            weight=None if w is None else float(w),
        )

    @property
    def endpoints(self) -> tuple[int, int]:
        return (self.src, self.dst)


@dataclass(frozen=True)
class DeltaBatch:
    """One atomic batch of mutations, applied in order.

    ``num_vertices`` optionally declares the vertex count *after* the
    batch; it may only grow the graph (new vertices start isolated and
    take their own id as initial label).
    """

    ops: tuple[DeltaOp, ...] = ()
    num_vertices: int | None = None

    def __len__(self) -> int:
        return len(self.ops)

    def count(self, kind: str) -> int:
        """Number of ops of one kind."""
        return sum(1 for op in self.ops if op.op == kind)

    def as_dict(self) -> dict:
        return {
            "ops": [op.as_dict() for op in self.ops],
            "num_vertices": self.num_vertices,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "DeltaBatch":
        n = raw.get("num_vertices")
        return cls(
            ops=tuple(DeltaOp.from_dict(o) for o in raw["ops"]),
            num_vertices=None if n is None else int(n),
        )

    @classmethod
    def from_arrays(
        cls,
        op: str,
        src,
        dst,
        weights=None,
        *,
        num_vertices: int | None = None,
    ) -> "DeltaBatch":
        """Build a single-kind batch from parallel edge arrays."""
        src = np.asarray(src).ravel()
        dst = np.asarray(dst).ravel()
        if weights is None:
            ws = [None] * src.shape[0]
        else:
            ws = [float(w) for w in np.asarray(weights).ravel()]
        return cls(
            ops=tuple(
                DeltaOp(op=op, src=int(s), dst=int(d), weight=w)
                for s, d, w in zip(src.tolist(), dst.tolist(), ws)
            ),
            num_vertices=num_vertices,
        )


@dataclass
class DeltaValidationReport:
    """Machine-readable outcome of validating (and applying) one batch.

    The shape mirrors :class:`repro.resilience.validate.ValidationReport`
    — same issue records, same ``ok`` contract — scoped to ops instead of
    arcs.
    """

    policy: str
    ops_in: int = 0
    ops_out: int = 0
    repaired_ops: int = 0
    quarantined_ops: int = 0
    issues: list[ValidationIssue] = field(default_factory=list)

    def append(self, issue: ValidationIssue) -> None:
        self.issues.append(issue)

    @property
    def errors(self) -> list[ValidationIssue]:
        return [i for i in self.issues if i.severity == "error"]

    @property
    def unresolved_errors(self) -> list[ValidationIssue]:
        return [i for i in self.errors if i.action == "reported"]

    @property
    def ok(self) -> bool:
        return not self.unresolved_errors

    def by_code(self) -> dict[str, int]:
        return {i.code: i.count for i in self.issues}

    def summary(self) -> str:
        if not self.issues:
            return f"clean ({self.policy}): {self.ops_in} op(s), no issues"
        parts = ", ".join(f"{i.code}={i.count}[{i.action}]" for i in self.issues)
        return (f"{self.policy}: {parts}; ops {self.ops_in} -> {self.ops_out}, "
                f"{self.repaired_ops} repaired, "
                f"{self.quarantined_ops} quarantined")

    def as_dict(self) -> dict:
        return {
            "policy": self.policy,
            "ok": self.ok,
            "ops_in": self.ops_in,
            "ops_out": self.ops_out,
            "repaired_ops": self.repaired_ops,
            "quarantined_ops": self.quarantined_ops,
            "issues": [i.as_dict() for i in self.issues],
        }


class DeadLetterFile:
    """Append-only JSONL record of quarantined ops.

    One line per quarantined op: the batch sequence number, the op
    verbatim, and the machine-readable reason codes — so an operator can
    replay repaired deltas later instead of losing them.  Appends are
    fsynced; the file only ever grows, so a torn final line (crash
    mid-append) is detectable and everything before it is intact.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def append(self, seq: int | None, op: DeltaOp, reasons: list[str]) -> None:
        """Durably record one quarantined op."""
        line = json.dumps({
            "seq": seq,
            "op": op.as_dict(),
            "reasons": list(reasons),
        }, separators=(",", ":")) + "\n"
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())

    def entries(self) -> list[dict]:
        """All readable entries, in append order (torn tail skipped)."""
        if not self.path.is_file():
            return []
        out: list[dict] = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError:
                break  # torn final line from a crash mid-append
        return out

    def __len__(self) -> int:
        return len(self.entries())


def _op_reasons(op: DeltaOp, effective_n: int) -> list[str]:
    """Structural defect codes of one op (empty list = structurally ok)."""
    reasons: list[str] = []
    if op.op not in OPS:
        reasons.append("unknown-op")
        return reasons  # endpoints of an unknown op are meaningless
    if op.src < 0 or op.dst < 0:
        reasons.append("negative-endpoint")
    elif op.src >= effective_n or op.dst >= effective_n:
        reasons.append("endpoint-out-of-range")
    if op.op == "update" and op.weight is None:
        reasons.append("missing-weight")
    if op.weight is not None:
        w = float(op.weight)
        if np.isnan(w):
            reasons.append("nan-weight")
        elif w > FP32_MAX:
            reasons.append("inf-weight")
        elif w < 0:
            reasons.append("negative-weight")
    return reasons


#: Defect codes a value-preserving repair exists for (weight rewrites).
_REPAIRABLE = {"nan-weight", "inf-weight", "negative-weight"}


def _repair_weight(op: DeltaOp) -> DeltaOp:
    """The weight-defect repair (matches ``repair_weight_values``)."""
    w = float(op.weight)
    if np.isnan(w):
        fixed = 1.0
    elif w > FP32_MAX:
        fixed = FP32_MAX
    else:
        fixed = 0.0
    return DeltaOp(op=op.op, src=op.src, dst=op.dst, weight=fixed)


def validate_batch(
    batch: DeltaBatch,
    *,
    graph_vertices: int,
    policy: str = "strict",
    dead_letter: DeadLetterFile | None = None,
    seq: int | None = None,
) -> tuple[DeltaBatch, DeltaValidationReport]:
    """Validate one batch against ``policy``; returns ``(clean, report)``.

    ``graph_vertices`` is the vertex count *before* the batch; endpoints
    must lie inside ``max(graph_vertices, batch.num_vertices)``.  Under
    ``strict`` any defect raises :class:`DeltaValidationError` (nothing is
    written to the dead letter — the caller still holds the whole batch).
    Under ``repair``/``quarantine`` offending ops are fixed or dropped,
    dropped ops going to ``dead_letter`` when one is given.
    """
    check_policy(policy)
    report = DeltaValidationReport(policy=policy, ops_in=len(batch.ops))

    num_vertices = batch.num_vertices
    if num_vertices is not None and num_vertices < graph_vertices:
        detail = (f"declared num_vertices {num_vertices} would shrink the "
                  f"graph ({graph_vertices} vertices)")
        if policy == "strict":
            report.append(ValidationIssue(
                "shrinking-vertex-set", "error", 1, detail))
        else:
            # The only safe reading is "no growth": keep current size.
            report.append(ValidationIssue(
                "shrinking-vertex-set", "error", 1, detail, "repaired"))
            num_vertices = None
    effective_n = max(graph_vertices, num_vertices or 0)

    kept: list[DeltaOp] = []
    counts: dict[str, int] = {}
    first_detail: dict[str, str] = {}
    for op in batch.ops:
        reasons = _op_reasons(op, effective_n)
        if not reasons:
            kept.append(op)
            continue
        repairable = set(reasons) <= _REPAIRABLE
        for code in reasons:
            counts[code] = counts.get(code, 0) + 1
            first_detail.setdefault(
                code, f"first: {op.op} {op.src}-{op.dst} weight={op.weight}"
            )
        if policy == "strict":
            continue  # reported below, then raised
        if policy == "repair" and repairable:
            kept.append(_repair_weight(op))
            report.repaired_ops += 1
        else:
            report.quarantined_ops += 1
            if dead_letter is not None:
                dead_letter.append(seq, op, reasons)

    for code, count in counts.items():
        if policy == "strict":
            action = "reported"
        elif policy == "repair" and code in _REPAIRABLE:
            action = "repaired"
        else:
            action = "quarantined"
        report.append(ValidationIssue(
            code, "error", count,
            f"{count} op(s) with {code} ({first_detail[code]})", action,
        ))

    report.ops_out = len(kept)
    if policy == "strict" and report.errors:
        raise DeltaValidationError(
            f"delta batch failed strict validation: {report.summary()}",
            report=report,
        )
    clean = DeltaBatch(ops=tuple(kept), num_vertices=num_vertices)
    return clean, report
