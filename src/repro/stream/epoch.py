"""Epoch-versioned CSR application and the durable epoch journal.

Applying batch *k* to the epoch-``k-1`` graph produces the epoch-``k``
graph plus the ``touched`` vertex set that seeds warm-started
re-detection.  Application is **deterministic**: the same batch sequence
over the same base graph yields bit-identical CSR arrays, which is why an
epoch snapshot only needs to store *labels* — a recovering processor
reconstructs the graph by replaying the log.

Ops apply in order, grouped into consecutive same-kind runs so each run
uses the vectorised delta helpers from :mod:`repro.graph.transform`.
Graph-dependent defects — removing or updating an edge the current graph
does not have — are quarantined (or raised under ``strict``) through the
same report/dead-letter plumbing as structural validation.

:class:`EpochJournal` persists one labels snapshot per epoch with the
checkpoint layer's discipline: CRC32 in the meta blob, temp-file fsync,
atomic rename, directory fsync, newest-readable-wins fallback on load.
"""

from __future__ import annotations

import json
import os
import tokenize
import zipfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import DeltaValidationError, StreamError
from repro.graph.csr import CSRGraph
from repro.graph.transform import add_edges, remove_edges, update_weights
from repro.resilience.checkpoint import _fsync_dir
from repro.resilience.validate import ValidationIssue
from repro.stream.delta import (
    DeadLetterFile,
    DeltaBatch,
    DeltaOp,
    DeltaValidationReport,
    validate_batch,
)
from repro.types import VERTEX_DTYPE

__all__ = ["ApplyOutcome", "apply_batch", "EpochState", "EpochJournal"]

#: Bump when the epoch snapshot schema changes incompatibly.
_SCHEMA_VERSION = 1

_PREFIX = "epoch-"
_SUFFIX = ".npz"


@dataclass
class ApplyOutcome:
    """Result of applying one batch."""

    graph: CSRGraph
    #: Unique endpoints of every applied op (sorted int64).
    touched: np.ndarray
    report: DeltaValidationReport
    added: int = 0
    removed: int = 0
    updated: int = 0


def _contains(sorted_keys: np.ndarray, key: int) -> bool:
    pos = int(np.searchsorted(sorted_keys, key))
    return pos < sorted_keys.shape[0] and int(sorted_keys[pos]) == key


def apply_batch(
    graph: CSRGraph,
    batch: DeltaBatch,
    *,
    policy: str = "strict",
    dead_letter: DeadLetterFile | None = None,
    seq: int | None = None,
) -> ApplyOutcome:
    """Apply one batch to an immutable CSR graph under ``policy``.

    Returns a new graph (the input is never mutated), the ``touched``
    vertex set, and the combined validation/application report.  Under
    ``strict`` a graph-dependent defect (``missing-edge``) raises
    :class:`~repro.errors.DeltaValidationError` *before* anything is
    built, so a strict stream either applies a batch whole or not at all.
    """
    clean, report = validate_batch(
        batch,
        graph_vertices=graph.num_vertices,
        policy=policy,
        dead_letter=dead_letter,
        seq=seq,
    )
    target_n = max(graph.num_vertices, clean.num_vertices or 0)

    # Group the op sequence into consecutive same-kind runs; each run is
    # applied with one vectorised helper, preserving sequential semantics
    # (an update may target an edge added by an earlier run of the same
    # batch).
    runs: list[tuple[str, list[DeltaOp]]] = []
    for op in clean.ops:
        if runs and runs[-1][0] == op.op:
            runs[-1][1].append(op)
        else:
            runs.append((op.op, [op]))

    # Dry pre-pass: every remove/update must name an edge that exists at
    # its point in the sequence.  Simulated on arc-key sets (base index +
    # an add/remove overlay) so under ``strict`` nothing is built unless
    # the whole batch is applicable.
    missing: list[tuple[DeltaOp, str]] = []
    key_n = max(target_n, 1)
    base_keys = np.sort(
        graph.source_ids().astype(np.int64) * np.int64(key_n)
        + graph.targets.astype(np.int64)
    )
    present: set[int] = set()
    absent: set[int] = set()

    def _key(a: int, b: int) -> int:
        return a * key_n + b

    def _exists(a: int, b: int) -> bool:
        k = _key(a, b)
        if k in present:
            return True
        if k in absent:
            return False
        return _contains(base_keys, k)

    applicable: dict[int, bool] = {}
    for idx, op in enumerate(clean.ops):
        if op.op == "add":
            for k in (_key(op.src, op.dst), _key(op.dst, op.src)):
                present.add(k)
                absent.discard(k)
            applicable[idx] = True
        elif op.op == "remove":
            ok = _exists(op.src, op.dst)
            applicable[idx] = ok
            if ok:
                for k in (_key(op.src, op.dst), _key(op.dst, op.src)):
                    absent.add(k)
                    present.discard(k)
            else:
                missing.append((op, "missing-edge"))
        else:  # update
            ok = _exists(op.src, op.dst)
            applicable[idx] = ok
            if not ok:
                missing.append((op, "missing-edge"))

    if missing:
        detail = (f"{len(missing)} op(s) name an edge the graph does not "
                  f"have (first: {missing[0][0].op} "
                  f"{missing[0][0].src}-{missing[0][0].dst})")
        if policy == "strict":
            report.append(ValidationIssue(
                "missing-edge", "error", len(missing), detail))
            raise DeltaValidationError(
                f"delta batch failed strict application: {report.summary()}",
                report=report,
            )
        report.append(ValidationIssue(
            "missing-edge", "error", len(missing), detail, "quarantined"))
        report.quarantined_ops += len(missing)
        report.ops_out -= len(missing)
        if dead_letter is not None:
            for op, reason in missing:
                dead_letter.append(seq, op, [reason])

    # Apply: same runs, skipping quarantined ops.
    touched: set[int] = set()
    added = removed = updated = 0
    out = graph
    if target_n > graph.num_vertices:
        out = add_edges(
            out, np.empty(0, dtype=VERTEX_DTYPE), np.empty(0, dtype=VERTEX_DTYPE),
            num_vertices=target_n,
        )
    idx = 0
    for kind, ops in runs:
        keep = [op for j, op in enumerate(ops) if applicable[idx + j]]
        idx += len(ops)
        if not keep:
            continue
        src = np.asarray([op.src for op in keep], dtype=VERTEX_DTYPE)
        dst = np.asarray([op.dst for op in keep], dtype=VERTEX_DTYPE)
        if kind == "add":
            w = np.asarray(
                [1.0 if op.weight is None else op.weight for op in keep],
                dtype=np.float64,
            )
            out = add_edges(out, src, dst, w, combine="max")
            added += len(keep)
        elif kind == "remove":
            out = remove_edges(out, src, dst, missing="ignore")
            removed += len(keep)
        else:
            w = np.asarray([op.weight for op in keep], dtype=np.float64)
            out = update_weights(out, src, dst, w, missing="ignore")
            updated += len(keep)
        touched.update(int(v) for v in src.tolist())
        touched.update(int(v) for v in dst.tolist())

    return ApplyOutcome(
        graph=out,
        touched=np.asarray(sorted(touched), dtype=np.int64),
        report=report,
        added=added,
        removed=removed,
        updated=updated,
    )


# --------------------------------------------------------------------- #
# Epoch journal
# --------------------------------------------------------------------- #


@dataclass
class EpochState:
    """One journaled epoch: the labels at a graph version.

    ``epoch`` equals the sequence number of the last applied batch
    (epoch 0 is the initial full detection on the base graph); the graph
    itself is reconstructed by replaying the delta log, so only labels
    are stored.
    """

    epoch: int
    labels: np.ndarray
    num_vertices: int = 0
    num_edges: int = 0
    #: |Q_incremental - Q_scratch| of the differential check at this
    #: epoch (``None`` when the check did not run).
    modularity_gap: float | None = None


class EpochJournal:
    """Durable, CRC-verified labels snapshots, one per epoch.

    Same discipline as :class:`~repro.resilience.checkpoint.CheckpointManager`:
    fsync + atomic rename on save, per-array CRC32 verified on load,
    :meth:`latest` falls back generation-by-generation past damage, and a
    ``keep=N`` ring prunes superseded epochs.
    """

    def __init__(self, directory: str | Path, *, keep: int | None = None) -> None:
        if keep is not None and keep < 1:
            raise StreamError(f"epoch keep must be >= 1 or None; got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        #: ``(path, reason)`` of snapshots :meth:`latest` skipped.
        self.skipped: list[tuple[Path, str]] = []

    def path_for(self, epoch: int) -> Path:
        return self.directory / f"{_PREFIX}{epoch:06d}{_SUFFIX}"

    def epochs(self) -> list[Path]:
        """All well-named snapshots, oldest first."""
        return sorted(self.directory.glob(f"{_PREFIX}*{_SUFFIX}"))

    def save(self, state: EpochState) -> Path:
        """Crash-consistently persist one epoch snapshot."""
        meta = {
            "version": _SCHEMA_VERSION,
            "epoch": state.epoch,
            "num_vertices": state.num_vertices,
            "num_edges": state.num_edges,
            "modularity_gap": state.modularity_gap,
            "crc32": {
                "labels": zlib.crc32(
                    np.ascontiguousarray(state.labels).tobytes()
                ),
            },
        }
        final = self.path_for(state.epoch)
        tmp = self.directory / f".tmp-{os.getpid()}-{state.epoch:06d}{_SUFFIX}"
        try:
            with open(tmp, "wb") as fh:
                np.savez(fh, labels=state.labels, meta=np.array(json.dumps(meta)))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, final)
            _fsync_dir(self.directory)
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            raise StreamError(f"cannot write epoch snapshot {final}: {exc}") from exc
        self._prune(protect=final)
        return final

    def _prune(self, protect: Path) -> None:
        if self.keep is None:
            return
        found = self.epochs()
        for stale in found[: max(0, len(found) - self.keep)]:
            if stale != protect:
                stale.unlink(missing_ok=True)
        _fsync_dir(self.directory)

    @staticmethod
    def load(path: str | Path) -> EpochState:
        """Load and CRC-verify one epoch snapshot."""
        try:
            with np.load(path, allow_pickle=False) as data:
                raw = data["labels"]
                meta = json.loads(str(data["meta"]))
        except (
            OSError, KeyError, ValueError, EOFError,
            SyntaxError, tokenize.TokenError,
            zipfile.BadZipFile, json.JSONDecodeError,
        ) as exc:
            # SyntaxError / TokenError: a bit flip inside an npy member's
            # own header escapes numpy's header parser undigested.
            raise StreamError(f"unreadable epoch snapshot {path}: {exc}") from exc
        if meta.get("version") != _SCHEMA_VERSION:
            raise StreamError(
                f"epoch snapshot {path} has schema version "
                f"{meta.get('version')}; this build reads {_SCHEMA_VERSION}"
            )
        expected = (meta.get("crc32") or {}).get("labels")
        # Verify over the stored bytes, then convert: a dtype cast must
        # not be able to defeat (or false-trip) corruption detection.
        actual = zlib.crc32(np.ascontiguousarray(raw).tobytes())
        if expected is None or int(expected) != actual:
            raise StreamError(
                f"epoch snapshot {path}: CRC32 mismatch on labels "
                f"(stored {expected}, computed {actual}) — corrupt snapshot"
            )
        labels = raw.astype(VERTEX_DTYPE)
        gap = meta.get("modularity_gap")
        return EpochState(
            epoch=int(meta["epoch"]),
            labels=labels,
            num_vertices=int(meta.get("num_vertices", labels.shape[0])),
            num_edges=int(meta.get("num_edges", 0)),
            modularity_gap=None if gap is None else float(gap),
        )

    def latest(self) -> EpochState | None:
        """Newest readable epoch, falling back past damaged snapshots."""
        self.skipped = []
        for path in reversed(self.epochs()):
            try:
                return self.load(path)
            except StreamError as exc:
                self.skipped.append((path, str(exc)))
        return None
