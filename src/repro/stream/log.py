"""The durable write-ahead delta log.

Every acknowledged :class:`~repro.stream.delta.DeltaBatch` is one framed
record in a segment file::

    MAGIC(4) | seq u64 | payload_len u32 | payload_crc32 u32 | payload

(little-endian header, JSON payload).  :meth:`DeltaLog.append` returns
only after the frame is flushed *and fsynced*, so an acknowledged batch
survives any crash; rotation creates the next ``segment-NNNNNN.wal`` and
fsyncs the directory, mirroring the checkpoint layer's durability
protocol.

Opening a log runs fsck over every segment:

* a torn *tail* of the newest segment — partial header, truncated
  payload, or CRC mismatch with nothing valid after it — is the expected
  signature of a crash mid-append (the writer died before the fsync that
  would have acknowledged the batch).  It is truncated away and recorded
  in :attr:`DeltaLog.repairs`.
* damage anywhere *before* the committed head — a CRC-invalid frame in a
  non-final segment, a sequence-number gap, or a bad frame in the final
  segment with a valid acknowledged frame after it (bit rot, not a torn
  append) — raises :class:`~repro.errors.DeltaLogCorruptError`:
  truncating there would silently drop acknowledged batches, which the
  log must never do.

``repro stream fsck`` exposes :func:`fsck_log` for offline inspection.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.errors import DeltaLogCorruptError, StreamError
from repro.resilience.checkpoint import _fsync_dir
from repro.stream.delta import DeltaBatch

__all__ = ["DeltaLog", "StreamFsckEntry", "fsck_log"]

_MAGIC = b"DLG1"
_HEADER = struct.Struct("<4sQII")  # magic, seq, payload_len, payload_crc32

_PREFIX = "segment-"
_SUFFIX = ".wal"

#: Refuse absurd frames instead of allocating gigabytes on a bad length
#: field (a corrupted header must not look like a huge valid payload).
_MAX_PAYLOAD = 64 * 1024 * 1024


@dataclass(frozen=True)
class _Frame:
    seq: int
    offset: int  # byte offset of the header within its segment
    length: int  # total frame length (header + payload)
    payload: bytes


def _segment_index(path: Path) -> int:
    return int(path.name[len(_PREFIX):-len(_SUFFIX)])


def _scan_segment(data: bytes) -> tuple[list[_Frame], int, str | None]:
    """Parse frames from raw segment bytes.

    Returns ``(frames, valid_end, damage)`` where ``valid_end`` is the
    byte offset just past the last good frame and ``damage`` describes the
    first problem found after it (``None`` for a perfectly parsed
    segment).
    """
    frames: list[_Frame] = []
    pos = 0
    total = len(data)
    while pos < total:
        if total - pos < _HEADER.size:
            return frames, pos, f"partial header ({total - pos} byte(s)) at offset {pos}"
        magic, seq, length, crc = _HEADER.unpack_from(data, pos)
        if magic != _MAGIC:
            return frames, pos, f"bad magic at offset {pos}"
        if length > _MAX_PAYLOAD:
            return frames, pos, f"implausible payload length {length} at offset {pos}"
        start = pos + _HEADER.size
        if total - start < length:
            return frames, pos, (
                f"truncated payload at offset {pos} "
                f"(need {length}, have {total - start})"
            )
        payload = data[start:start + length]
        if zlib.crc32(payload) != crc:
            return frames, pos, f"CRC32 mismatch at offset {pos} (seq {seq})"
        frames.append(_Frame(
            seq=int(seq), offset=pos, length=_HEADER.size + length,
            payload=payload,
        ))
        pos = start + length
    return frames, pos, None


def _has_valid_frame_after(data: bytes, start: int, min_seq: int) -> bool:
    """Whether a well-formed frame with ``seq >= min_seq`` exists past
    ``start`` — the bit-rot detector: a torn *append* leaves only garbage
    after the tear, never another acknowledged frame."""
    pos = data.find(_MAGIC, start + 1)
    while pos != -1:
        if len(data) - pos >= _HEADER.size:
            magic, seq, length, crc = _HEADER.unpack_from(data, pos)
            payload_start = pos + _HEADER.size
            if (
                length <= _MAX_PAYLOAD
                and len(data) - payload_start >= length
                and zlib.crc32(data[payload_start:payload_start + length]) == crc
                and seq >= min_seq
            ):
                return True
        pos = data.find(_MAGIC, pos + 1)
    return False


class DeltaLog:
    """Durable, CRC-framed, segment-rotated log of delta batches.

    Parameters
    ----------
    directory:
        Segment directory; created if missing.
    segment_bytes:
        Rotation threshold: a segment that reaches this size after an
        append is sealed and the next append opens a fresh segment.
    """

    def __init__(
        self, directory: str | Path, *, segment_bytes: int = 1 << 20
    ) -> None:
        if segment_bytes < _HEADER.size + 2:
            raise StreamError(
                f"segment_bytes must be >= {_HEADER.size + 2}; got {segment_bytes}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_bytes = int(segment_bytes)
        #: Torn-tail truncations performed on open, as human-readable
        #: descriptions (empty = the log was clean).
        self.repairs: list[str] = []
        #: Sequence number of the newest acknowledged batch (0 = empty).
        self.head_seq = 0
        self._recover()

    # ------------------------------------------------------------------ #
    # Open / recovery
    # ------------------------------------------------------------------ #

    def segments(self) -> list[Path]:
        """All segment files, oldest first."""
        return sorted(self.directory.glob(f"{_PREFIX}*{_SUFFIX}"))

    def _recover(self) -> None:
        segments = self.segments()
        expected = 1
        reasons: list[str] = []
        for i, path in enumerate(segments):
            data = path.read_bytes()
            frames, valid_end, damage = _scan_segment(data)
            is_last = i == len(segments) - 1
            for frame in frames:
                if frame.seq != expected:
                    raise DeltaLogCorruptError(
                        f"delta log {self.directory}: sequence gap in "
                        f"{path.name} (expected seq {expected}, found "
                        f"{frame.seq}) — acknowledged batches are missing",
                        reasons=[f"{path.name}: seq gap at offset {frame.offset}"],
                    )
                expected += 1
            if damage is not None:
                if not is_last:
                    reasons.append(f"{path.name}: {damage} (not the final segment)")
                    raise DeltaLogCorruptError(
                        f"delta log {self.directory}: {path.name} is damaged "
                        f"mid-stream ({damage}); refusing to drop "
                        f"acknowledged batches",
                        reasons=reasons,
                    )
                if _has_valid_frame_after(data, valid_end, expected):
                    raise DeltaLogCorruptError(
                        f"delta log {self.directory}: {path.name} has a "
                        f"damaged frame ({damage}) followed by a valid "
                        f"acknowledged frame — mid-stream corruption, not a "
                        f"torn tail",
                        reasons=[f"{path.name}: {damage}"],
                    )
                # Torn tail: the classic crash-mid-append signature.
                with open(path, "r+b") as fh:
                    fh.truncate(valid_end)
                    fh.flush()
                    os.fsync(fh.fileno())
                _fsync_dir(self.directory)
                self.repairs.append(
                    f"{path.name}: truncated torn tail at offset "
                    f"{valid_end} ({damage})"
                )
        self.head_seq = expected - 1

    # ------------------------------------------------------------------ #
    # Append
    # ------------------------------------------------------------------ #

    def _current_segment(self) -> Path:
        segments = self.segments()
        if not segments:
            return self.directory / f"{_PREFIX}{1:06d}{_SUFFIX}"
        last = segments[-1]
        if last.stat().st_size >= self.segment_bytes:
            return self.directory / (
                f"{_PREFIX}{_segment_index(last) + 1:06d}{_SUFFIX}"
            )
        return last

    def append(self, batch: DeltaBatch) -> int:
        """Durably append one batch; returns its sequence number.

        The frame is flushed and fsynced before this method returns —
        the returned seq is the acknowledgement.  A crash before the
        fsync leaves at most a torn tail, which the next open truncates.
        """
        seq = self.head_seq + 1
        payload = json.dumps(
            batch.as_dict(), separators=(",", ":"), sort_keys=True
        ).encode()
        frame = _HEADER.pack(
            _MAGIC, seq, len(payload), zlib.crc32(payload)
        ) + payload
        path = self._current_segment()
        fresh = not path.exists()
        try:
            with open(path, "ab") as fh:
                fh.write(frame)
                fh.flush()
                os.fsync(fh.fileno())
        except OSError as exc:
            raise StreamError(f"cannot append to {path}: {exc}") from exc
        if fresh:
            _fsync_dir(self.directory)
        self.head_seq = seq
        return seq

    # ------------------------------------------------------------------ #
    # Read
    # ------------------------------------------------------------------ #

    def replay(self, start: int = 1) -> Iterator[tuple[int, DeltaBatch]]:
        """Yield ``(seq, batch)`` for every acknowledged batch with
        ``seq >= start``, in order.  Reads from disk, so a fresh
        :class:`DeltaLog` over the same directory replays identically."""
        for path in self.segments():
            frames, _, _ = _scan_segment(path.read_bytes())
            for frame in frames:
                if frame.seq < start or frame.seq > self.head_seq:
                    continue
                yield frame.seq, DeltaBatch.from_dict(json.loads(frame.payload))

    def read(self, seq: int) -> DeltaBatch:
        """The batch with sequence number ``seq``."""
        if not 1 <= seq <= self.head_seq:
            raise StreamError(
                f"batch seq {seq} is not in the log (head is {self.head_seq})"
            )
        for got, batch in self.replay(start=seq):
            if got == seq:
                return batch
        raise StreamError(f"batch seq {seq} vanished from the log")  # pragma: no cover


# --------------------------------------------------------------------- #
# Offline inspection (`repro stream fsck`)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class StreamFsckEntry:
    """Verdict on one segment file."""

    path: Path
    #: ``"ok"`` | ``"torn-tail"`` | ``"corrupt"``.
    status: str
    frames: int
    #: Sequence range ``[first, last]`` of readable frames (0, 0 if none).
    first_seq: int = 0
    last_seq: int = 0
    detail: str = ""


def fsck_log(directory: str | Path) -> list[StreamFsckEntry]:
    """Verify every segment in ``directory`` without modifying anything.

    A ``torn-tail`` verdict on the *final* segment is recoverable (the
    next :class:`DeltaLog` open truncates it); ``corrupt`` anywhere means
    acknowledged batches are damaged.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise StreamError(f"delta log directory {directory} does not exist")
    segments = sorted(directory.glob(f"{_PREFIX}*{_SUFFIX}"))
    entries: list[StreamFsckEntry] = []
    expected = 1
    for i, path in enumerate(segments):
        data = path.read_bytes()
        frames, valid_end, damage = _scan_segment(data)
        first = frames[0].seq if frames else 0
        last = frames[-1].seq if frames else 0
        gap = next(
            (
                (expected + j, f)
                for j, f in enumerate(frames)
                if f.seq != expected + j
            ),
            None,
        )
        expected = last + 1 if frames else expected
        if gap is not None:
            entries.append(StreamFsckEntry(
                path=path, status="corrupt", frames=len(frames),
                first_seq=first, last_seq=last,
                detail=f"sequence gap: expected {gap[0]}, found {gap[1].seq}",
            ))
        elif damage is None:
            entries.append(StreamFsckEntry(
                path=path, status="ok", frames=len(frames),
                first_seq=first, last_seq=last,
            ))
        elif i == len(segments) - 1 and not _has_valid_frame_after(
            data, valid_end, expected
        ):
            entries.append(StreamFsckEntry(
                path=path, status="torn-tail", frames=len(frames),
                first_seq=first, last_seq=last, detail=damage,
            ))
        else:
            entries.append(StreamFsckEntry(
                path=path, status="corrupt", frames=len(frames),
                first_seq=first, last_seq=last, detail=damage,
            ))
    return entries
