"""The stream processor: delta log in, epoch-versioned labels out.

One :class:`StreamProcessor` owns the consumer side of a stream: it reads
acknowledged batches from a :class:`~repro.stream.log.DeltaLog`, applies
each to the current epoch's graph, warm-starts
:func:`~repro.core.incremental.nu_lpa_incremental` from the previous
labels with only the affected frontier active, and journals the new
labels through the :class:`~repro.stream.epoch.EpochJournal`.

Crash recovery is replay: the journal stores *labels only*, so
:meth:`recover` loads the newest readable epoch ``E``, deterministically
reconstructs the epoch-``E`` graph by re-applying batches ``1..E`` from
the log onto the base graph, and resumes at batch ``E+1``.  Because both
application and detection are deterministic, a processor killed at any
instant — before, during, or after a batch — resumes bit-identically with
a never-crashed run (proven by :mod:`repro.stream.soak`).

The optional *differential check* re-runs detection from scratch every
``differential_every`` epochs and records either label equality or the
modularity gap ``|Q_inc - Q_scratch|`` in the epoch trace — the streaming
pipeline's accuracy contract.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.config import LPAConfig
from repro.core.incremental import affected_vertices, nu_lpa_incremental
from repro.core.lpa import nu_lpa
from repro.errors import StreamError
from repro.graph.csr import CSRGraph
from repro.observe.trace import EpochEvent, Tracer
from repro.stream.delta import DeadLetterFile
from repro.stream.epoch import EpochJournal, EpochState, apply_batch
from repro.stream.log import DeltaLog
from repro.types import VERTEX_DTYPE

__all__ = ["StreamProcessor"]

#: Chaos hook points, in per-epoch execution order.
CHAOS_POINTS = ("pre-epoch", "mid-epoch-apply", "post-epoch")


class StreamProcessor:
    """Applies a delta log to a base graph, epoch by epoch.

    Parameters
    ----------
    base_graph:
        The epoch-0 graph (before any batch).
    log:
        The stream's :class:`DeltaLog` (or its directory).
    journal:
        The stream's :class:`EpochJournal` (or its directory).
    config / engine:
        Detection parameters, forwarded to ``nu_lpa`` and
        ``nu_lpa_incremental``.
    hops:
        Warm-start frontier radius around the touched vertices.
    policy:
        Delta validation policy (``strict`` / ``repair`` / ``quarantine``).
    dead_letter:
        Dead-letter file for quarantined ops; defaults to
        ``<log dir>/dead-letter.jsonl``.  Suppressed during recovery
        replay so re-application never duplicates entries.
    tracer:
        Receives one :class:`~repro.observe.trace.EpochEvent` per epoch.
    differential_every:
        Every this many epochs, re-detect from scratch and record the
        modularity gap (0 disables).
    chaos:
        Optional ``chaos(point)`` callable invoked at the
        :data:`CHAOS_POINTS`; the soak harness raises
        :class:`~repro.resilience.chaos.InjectedCrash` from it.
    price:
        Optional ``price(result) -> float`` charging modelled GPU seconds
        for each detection run (the job service passes its own meter).
    publish:
        Optional ``publish(state)`` called with each
        :class:`~repro.stream.epoch.EpochState` *after* its journal write
        — the job service hooks the query snapshot catalog here.  Called
        from :meth:`recover` too (recovery republish), so it must be
        idempotent (the catalog dedupes on content).
    keep:
        Epoch journal retention ring (``None`` keeps everything).
    """

    def __init__(
        self,
        base_graph: CSRGraph,
        log: DeltaLog | str | Path,
        journal: EpochJournal | str | Path,
        *,
        config: LPAConfig | None = None,
        engine: str = "vectorized",
        hops: int = 1,
        policy: str = "strict",
        dead_letter: DeadLetterFile | str | Path | None = None,
        tracer: Tracer | None = None,
        differential_every: int = 0,
        chaos: Callable[[str], None] | None = None,
        price: Callable[[object], float] | None = None,
        publish: Callable[[EpochState], None] | None = None,
        keep: int | None = 8,
    ) -> None:
        if differential_every < 0:
            raise StreamError(
                f"differential_every must be >= 0; got {differential_every}"
            )
        self.base_graph = base_graph
        self.log = log if isinstance(log, DeltaLog) else DeltaLog(log)
        self.journal = (
            journal if isinstance(journal, EpochJournal)
            else EpochJournal(journal, keep=keep)
        )
        self.config = config or LPAConfig()
        self.engine = engine
        self.hops = hops
        self.policy = policy
        if dead_letter is None:
            dead_letter = self.log.directory / "dead-letter.jsonl"
        self.dead_letter = (
            dead_letter if isinstance(dead_letter, DeadLetterFile)
            else DeadLetterFile(dead_letter)
        )
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.differential_every = differential_every
        self.chaos = chaos
        self.price = price
        self.publish = publish

        #: Current epoch (-1 until :meth:`recover` runs; 0 after the
        #: initial full detection).
        self.epoch = -1
        self.graph: CSRGraph = base_graph
        self.labels: np.ndarray | None = None
        #: Modelled GPU seconds charged via ``price`` so far.
        self.gpu_seconds = 0.0
        #: Modularity gap of the most recent differential check.
        self.last_gap: float | None = None

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #

    def recover(self) -> int:
        """Restore state from the journal + log; returns the resume epoch.

        No journal → run the initial full detection (epoch 0) and journal
        it.  Otherwise load the newest readable epoch and reconstruct its
        graph by deterministic replay of the log prefix.  Damaged newest
        snapshots cost one epoch of recompute each (the falls-back-then-
        replays contract), never correctness.
        """
        state = self.journal.latest()
        if state is None:
            result = nu_lpa(
                self.base_graph, self.config, engine=self.engine,
                warn_on_no_convergence=False,
            )
            self._charge(result)
            self.graph = self.base_graph
            self.labels = result.labels
            self.epoch = 0
            state = EpochState(
                epoch=0,
                labels=self.labels,
                num_vertices=self.graph.num_vertices,
                num_edges=self.graph.num_edges,
            )
            self.journal.save(state)
            self._publish(state)
            return 0
        if state.epoch > self.log.head_seq:
            raise StreamError(
                f"epoch journal is ahead of the delta log (epoch "
                f"{state.epoch}, log head {self.log.head_seq}); the log "
                f"directory lost acknowledged batches"
            )
        graph = self.base_graph
        for seq, batch in self.log.replay(start=1):
            if seq > state.epoch:
                break
            # Replay must not duplicate dead-letter entries: quarantine
            # decisions were already recorded when the batch first applied.
            outcome = apply_batch(
                graph, batch, policy=self.policy, dead_letter=None, seq=seq
            )
            graph = outcome.graph
        if state.labels.shape[0] != graph.num_vertices:
            raise StreamError(
                f"epoch {state.epoch} snapshot has {state.labels.shape[0]} "
                f"labels but the replayed graph has {graph.num_vertices} "
                f"vertices; log and journal disagree"
            )
        self.graph = graph
        self.labels = state.labels
        self.epoch = state.epoch
        self.last_gap = state.modularity_gap
        # Republish the restored epoch: heals a crash that landed between
        # the journal write and the publish (dedupe makes it a no-op when
        # the snapshot already exists).
        self._publish(state)
        return self.epoch

    # ------------------------------------------------------------------ #
    # Epoch processing
    # ------------------------------------------------------------------ #

    @property
    def lag(self) -> int:
        """Acknowledged batches not yet turned into epochs."""
        return max(0, self.log.head_seq - max(self.epoch, 0))

    def step(self) -> EpochState | None:
        """Process the next batch into an epoch; ``None`` at the head."""
        if self.epoch < 0:
            self.recover()
        seq = self.epoch + 1
        if seq > self.log.head_seq:
            return None
        self._chaos("pre-epoch")
        batch = self.log.read(seq)
        outcome = apply_batch(
            self.graph, batch, policy=self.policy,
            dead_letter=self.dead_letter, seq=seq,
        )
        graph = outcome.graph
        labels = self.labels
        if graph.num_vertices > labels.shape[0]:
            # New vertices enter as their own singleton communities.
            labels = np.concatenate([
                labels,
                np.arange(labels.shape[0], graph.num_vertices, dtype=VERTEX_DTYPE),
            ])
        frontier = affected_vertices(graph, outcome.touched, hops=self.hops)
        result = nu_lpa_incremental(
            graph, labels, outcome.touched,
            config=self.config, engine=self.engine, hops=self.hops,
        )
        self._charge(result)

        gap: float | None = None
        if self.differential_every and seq % self.differential_every == 0:
            gap = self._differential(graph, result.labels)
            self.last_gap = gap

        self._chaos("mid-epoch-apply")
        state = EpochState(
            epoch=seq,
            labels=result.labels,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            modularity_gap=gap,
        )
        self.journal.save(state)
        self._publish(state)
        self.graph = graph
        self.labels = result.labels
        self.epoch = seq
        self.tracer.emit(EpochEvent(
            iteration=seq,
            added=outcome.added,
            removed=outcome.removed,
            updated=outcome.updated,
            quarantined=outcome.report.quarantined_ops,
            touched=int(outcome.touched.shape[0]),
            frontier=int(frontier.shape[0]),
            frontier_fraction=(
                frontier.shape[0] / graph.num_vertices
                if graph.num_vertices else 0.0
            ),
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            lpa_iterations=result.num_iterations,
            modularity_gap=gap,
        ))
        self._chaos("post-epoch")
        return state

    def run_to_head(self, max_epochs: int | None = None) -> int:
        """Process batches until the log head; returns epochs processed."""
        done = 0
        while max_epochs is None or done < max_epochs:
            if self.step() is None:
                break
            done += 1
        return done

    # ------------------------------------------------------------------ #

    def _differential(self, graph: CSRGraph, inc_labels: np.ndarray) -> float:
        """|Q_incremental - Q_scratch| at the current epoch (0.0 when the
        partitions are bit-identical — the common case)."""
        from repro.metrics import modularity

        scratch = nu_lpa(
            graph, self.config, engine=self.engine,
            warn_on_no_convergence=False,
        )
        self._charge(scratch)
        if np.array_equal(scratch.labels, inc_labels):
            return 0.0
        return abs(
            float(modularity(graph, inc_labels))
            - float(modularity(graph, scratch.labels))
        )

    def _charge(self, result) -> None:
        if self.price is not None:
            self.gpu_seconds += float(self.price(result))

    def _chaos(self, point: str) -> None:
        if self.chaos is not None:
            self.chaos(point)

    def _publish(self, state: EpochState) -> None:
        if self.publish is not None:
            self.publish(state)
