"""Kill/restart chaos soak for the streaming pipeline.

The streaming contract is the service recovery contract extended to
mutating graphs: *kill the producer or the service at any instant —
before, during, or after a log append; before, during, or after an epoch
apply — restart over the same directories, and the stream resumes
bit-identically with a never-crashed run.*  This harness proves it per
seed:

1. generate a deterministic base graph and a valid mixed delta workload
   (inserts, deletes, weight updates, occasional vertex growth);
2. run a crash-free **reference**: write every batch to a fresh log,
   process to the head, record the final labels and CSR arrays, and run
   the differential check (incremental vs from-scratch modularity gap);
3. replay the same workload under a seeded schedule of injected deaths:

   * producer deaths **before** an append (nothing written, retried),
     **mid**-append (a partial frame is written, which the next log open
     must truncate as a torn tail), and **after** an append (the
     idempotent producer must *not* double-append on restart);
   * service deaths at the processor's ``pre-epoch``,
     ``mid-epoch-apply``, and ``post-epoch`` chaos points, restarting a
     fresh :class:`~repro.service.DetectionService` over the surviving
     journal after each death;

4. assert the recovered stream's labels and reconstructed CSR arrays are
   bit-identical to the reference, and the reference differential gap is
   within the accuracy bound.

Deaths surface as :class:`~repro.resilience.chaos.InjectedCrash` — not a
``ReproError``, so any over-broad handler in the pipeline would
invalidate the soak.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.graph.datasets import generate_standin
from repro.resilience.chaos import InjectedCrash
from repro.service.job import GraphRef, JobSpec, JobState
from repro.service.service import DetectionService, ServiceConfig
from repro.stream.delta import DeltaBatch, DeltaOp
from repro.stream.log import DeltaLog
from repro.stream.processor import StreamProcessor

__all__ = ["StreamSoakOutcome", "run_stream_soak", "random_delta_batches"]

#: Hard cap on service restarts per seed: looping recovery must fail the
#: soak, not hang it.
_MAX_RESTARTS = 64

#: Accuracy bound of the differential check (see ISSUE/ROADMAP): the
#: incremental labels either equal the from-scratch run bit-for-bit or
#: sit within this modularity gap of it.
GAP_BOUND = 0.01

_PRODUCER_MODES = ("none", "before-append", "mid-append", "after-append")
_SERVICE_POINTS = ("pre-epoch", "mid-epoch-apply", "post-epoch")


def random_delta_batches(
    graph: CSRGraph,
    rng: np.random.Generator,
    *,
    num_batches: int = 6,
    batch_size: int = 5,
    grow_every: int = 0,
) -> list[DeltaBatch]:
    """A valid mixed workload of delta batches against ``graph``.

    Tracks the evolving edge set so every remove/update names an edge
    that exists at its point in the sequence (the soak exercises crash
    recovery, not quarantine).  ``grow_every`` > 0 adds one new vertex
    (wired to a random existing one) every that many batches.
    """
    edges: set[tuple[int, int]] = set()
    for s, d in zip(graph.source_ids().tolist(), graph.targets.tolist()):
        edges.add((min(s, d), max(s, d)))
    n = graph.num_vertices
    batches: list[DeltaBatch] = []
    for b in range(num_batches):
        ops: list[DeltaOp] = []
        num_vertices = None
        if grow_every and (b + 1) % grow_every == 0:
            anchor = int(rng.integers(n))
            ops.append(DeltaOp("add", anchor, n, weight=1.0))
            edges.add((min(anchor, n), max(anchor, n)))
            num_vertices = n + 1
            n += 1
        while len(ops) < batch_size:
            kind = ("add", "remove", "update")[int(rng.integers(3))]
            if kind == "add":
                a, c = int(rng.integers(n)), int(rng.integers(n))
                key = (min(a, c), max(a, c))
                if a == c or key in edges:
                    continue
                edges.add(key)
                ops.append(DeltaOp("add", a, c, weight=float(rng.uniform(0.5, 2.0))))
            elif not edges:
                continue
            else:
                key = sorted(edges)[int(rng.integers(len(edges)))]
                if kind == "remove":
                    edges.discard(key)
                    ops.append(DeltaOp("remove", key[0], key[1]))
                else:
                    ops.append(DeltaOp(
                        "update", key[0], key[1],
                        weight=float(rng.uniform(0.5, 2.0)),
                    ))
        batches.append(DeltaBatch(ops=tuple(ops), num_vertices=num_vertices))
    return batches


def _produce_with_crashes(
    log_dir: Path,
    batches: list[DeltaBatch],
    modes: list[str],
) -> tuple[int, int]:
    """Write ``batches`` under per-batch producer crash ``modes``.

    Returns ``(deaths, torn_tails_repaired)``.  The producer is
    idempotent by sequence number: after any death it reopens the log and
    appends only batches past ``head_seq`` — exactly what a real producer
    keyed on the WAL acknowledgement does.
    """
    deaths = 0
    repaired = 0
    log = DeltaLog(log_dir)
    for batch, mode in zip(batches, modes):
        seq = log.head_seq + 1
        if mode == "before-append":
            deaths += 1  # died before writing anything; restart and retry
            log = DeltaLog(log_dir)
        elif mode == "mid-append":
            # Die halfway through the frame: raw partial bytes, no fsync
            # acknowledgement.  The restart open must truncate this tail.
            import json as _json
            import struct as _struct
            import zlib as _zlib

            payload = _json.dumps(
                batch.as_dict(), separators=(",", ":"), sort_keys=True
            ).encode()
            frame = _struct.Struct("<4sQII").pack(
                b"DLG1", seq, len(payload), _zlib.crc32(payload)
            ) + payload
            segments = sorted(log_dir.glob("segment-*.wal"))
            target = segments[-1] if segments else log_dir / "segment-000001.wal"
            with open(target, "ab") as fh:
                fh.write(frame[: max(1, len(frame) // 2)])
            deaths += 1
            log = DeltaLog(log_dir)
            repaired += len(log.repairs)
        if log.head_seq < seq:
            log.append(batch)
        if mode == "after-append":
            deaths += 1  # died after the fsync ack; restart must not redo
            log = DeltaLog(log_dir)
            assert log.head_seq >= seq
    return deaths, repaired


@dataclass
class SeedOutcome:
    """One seed's verdict."""

    seed: int
    batches: int
    epochs: int
    producer_deaths: int
    torn_tails: int
    service_deaths: int
    restarts: int
    labels_identical: bool
    graph_identical: bool
    modularity_gap: float

    @property
    def ok(self) -> bool:
        return (
            self.labels_identical
            and self.graph_identical
            and self.modularity_gap <= GAP_BOUND
        )

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "batches": self.batches,
            "epochs": self.epochs,
            "producer_deaths": self.producer_deaths,
            "torn_tails": self.torn_tails,
            "service_deaths": self.service_deaths,
            "restarts": self.restarts,
            "labels_identical": self.labels_identical,
            "graph_identical": self.graph_identical,
            "modularity_gap": self.modularity_gap,
            "ok": self.ok,
        }


@dataclass
class StreamSoakOutcome:
    """Aggregate result across every seed."""

    seeds: list[SeedOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.seeds) and all(s.ok for s in self.seeds)

    @property
    def total_deaths(self) -> int:
        return sum(s.producer_deaths + s.service_deaths for s in self.seeds)

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "num_seeds": len(self.seeds),
            "total_deaths": self.total_deaths,
            "seeds": [s.as_dict() for s in self.seeds],
        }


def run_stream_soak(
    workdir: str | Path,
    *,
    num_seeds: int = 20,
    dataset: str = "com-Orkut",
    scale: float = 0.03,
    num_batches: int = 6,
    batch_size: int = 5,
    hops: int = 1,
    service_deaths: int = 3,
) -> StreamSoakOutcome:
    """Run the kill/restart chaos soak; see the module docstring.

    Every seed gets its own base graph, workload, crash schedule, and
    directories under ``workdir``.  The outcome's :attr:`ok` asserts the
    full contract: bit-identical labels *and* CSR arrays versus the
    never-crashed reference, with the differential modularity gap within
    :data:`GAP_BOUND`.

    The default workload is the ``com-Orkut`` stand-in: dense LFR-style
    communities where warm-started incremental detection and a
    from-scratch run agree to within the gap bound.  (Degenerate toys —
    a 3x3 road grid, say — have many equal-modularity local optima, so
    the differential check would measure LPA's tie-breaking, not the
    streaming pipeline.)
    """
    workdir = Path(workdir)
    outcome = StreamSoakOutcome()
    for seed in range(num_seeds):
        outcome.seeds.append(_run_one_seed(
            workdir / f"seed-{seed:03d}",
            seed=seed,
            dataset=dataset,
            scale=scale,
            num_batches=num_batches,
            batch_size=batch_size,
            hops=hops,
            service_deaths=service_deaths,
        ))
    return outcome


def _run_one_seed(
    root: Path,
    *,
    seed: int,
    dataset: str,
    scale: float,
    num_batches: int,
    batch_size: int,
    hops: int,
    service_deaths: int,
) -> SeedOutcome:
    rng = np.random.default_rng([seed & 0x7FFFFFFF, num_batches])
    base = generate_standin(dataset, scale=scale, seed=seed)
    batches = random_delta_batches(
        base, rng,
        num_batches=num_batches, batch_size=batch_size,
        grow_every=max(2, num_batches // 2),
    )

    # ---- reference: crash-free, with the differential check ------------
    ref_dir = root / "ref"
    ref_log = DeltaLog(ref_dir / "wal")
    for batch in batches:
        ref_log.append(batch)
    reference = StreamProcessor(
        base, ref_log, ref_dir / "epochs",
        hops=hops, differential_every=num_batches,
    )
    reference.recover()
    reference.run_to_head()
    gap = reference.last_gap if reference.last_gap is not None else 0.0
    ref_labels = reference.labels.copy()
    ref_graph = reference.graph

    # ---- chaos: same workload, seeded deaths ---------------------------
    chaos_dir = root / "chaos"
    producer_modes = [
        _PRODUCER_MODES[int(rng.integers(len(_PRODUCER_MODES)))]
        for _ in batches
    ]
    if num_batches >= 3:  # guarantee all three modes appear at least once
        slots = rng.choice(num_batches, size=3, replace=False)
        for slot, mode in zip(slots.tolist(), _PRODUCER_MODES[1:]):
            producer_modes[slot] = mode
    producer_deaths, torn = _produce_with_crashes(
        chaos_dir / "wal", batches, producer_modes
    )

    # Service-side schedule: (epoch, point) pairs, each firing once.
    schedule = {
        (int(rng.integers(1, num_batches + 1)),
         _SERVICE_POINTS[int(rng.integers(len(_SERVICE_POINTS)))])
        for _ in range(service_deaths)
    }
    schedule.add((max(1, num_batches // 2), "mid-epoch-apply"))  # always
    pending = dict.fromkeys(sorted(schedule), True)
    seen_epoch = {"n": 0}

    def chaos_hook(point: str, record) -> None:
        if point == "pre-epoch":
            seen_epoch["n"] += 1
        key = (seen_epoch["n"], point)
        if pending.pop(key, None):
            raise InjectedCrash(f"scheduled death at epoch {key[0]} {point}")

    spec = JobSpec(
        job_id=f"stream-{seed}",
        graph=GraphRef(kind="dataset", name=dataset, scale=scale, seed=seed),
        kind="subscription",
        stream_dir=str(chaos_dir / "wal"),
        hops=hops,
    )
    config = ServiceConfig(
        journal_dir=chaos_dir / "journal",
        chaos_hook=chaos_hook,
    )
    crashes = 0
    restarts = 0
    service = DetectionService(config)
    while True:
        try:
            if spec.job_id not in service.jobs:
                service.submit(spec)
            service.drain()
            break
        except InjectedCrash:
            crashes += 1
            restarts += 1
            if restarts > _MAX_RESTARTS:
                raise ConfigurationError(
                    f"stream soak exceeded {_MAX_RESTARTS} restarts; "
                    f"recovery is looping"
                ) from None
            # The epoch counter is per-process state: a restarted service
            # re-runs recovery (no chaos points) and then continues from
            # the journaled epoch, so reset the observation counter to
            # the journal's epoch on restart.
            service = DetectionService(config)
            seen_epoch["n"] = _journaled_epoch(service, spec.job_id)

    record = service.result(spec.job_id)
    done = (
        record.state is JobState.COMPLETED and record.outcome is not None
        and record.outcome.labels is not None
    )
    labels_identical = bool(
        done and np.array_equal(record.outcome.labels, ref_labels)
    )

    # Reconstruct the chaos stream's graph and compare CSR arrays.
    verify = StreamProcessor(base, chaos_dir / "wal",
                             _stream_epoch_dir(service, spec.job_id), hops=hops)
    verify.recover()
    graph_identical = bool(
        np.array_equal(verify.graph.offsets, ref_graph.offsets)
        and np.array_equal(verify.graph.targets, ref_graph.targets)
        and np.array_equal(verify.graph.weights, ref_graph.weights)
        and np.array_equal(verify.labels, ref_labels)
    )

    return SeedOutcome(
        seed=seed,
        batches=num_batches,
        epochs=record.outcome.iterations if done else -1,
        producer_deaths=producer_deaths,
        torn_tails=torn,
        service_deaths=crashes,
        restarts=restarts,
        labels_identical=labels_identical,
        graph_identical=graph_identical,
        modularity_gap=float(gap),
    )


def _stream_epoch_dir(service: DetectionService, job_id: str) -> Path:
    return service.journal.stream_dir(job_id)


def _journaled_epoch(service: DetectionService, job_id: str) -> int:
    from repro.stream.epoch import EpochJournal

    state = EpochJournal(_stream_epoch_dir(service, job_id)).latest()
    return 0 if state is None else state.epoch
