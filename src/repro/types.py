"""Shared dtype conventions and small type aliases.

The paper fixes 32-bit integers for vertex identifiers and 32-bit floats for
edge weights (Section 5.1.2); hashtable values are fp32 by default with fp64
available for the Figure-5 ablation.  Centralising the dtypes here keeps
every subsystem's arrays layout-compatible without repeated literals.
"""

from __future__ import annotations

from typing import TypeAlias

import numpy as np
import numpy.typing as npt

__all__ = [
    "VERTEX_DTYPE",
    "OFFSET_DTYPE",
    "WEIGHT_DTYPE",
    "VALUE_DTYPE_F32",
    "VALUE_DTYPE_F64",
    "FLAG_DTYPE",
    "EMPTY_KEY",
    "VertexArray",
    "OffsetArray",
    "WeightArray",
    "LabelArray",
]

#: Vertex ids / community labels. int64 rather than the paper's uint32 so a
#: sentinel and intermediate arithmetic (``i + delta_i`` during probing) never
#: overflow in NumPy; the memory model still *accounts* 4 bytes per id.
VERTEX_DTYPE = np.int64

#: CSR offsets. ``2 * offset`` addresses the hashtable buffers, so int64.
OFFSET_DTYPE = np.int64

#: Edge weights (paper: 32-bit floats).
WEIGHT_DTYPE = np.float32

#: Hashtable value dtypes for the Figure-5 datatype experiment.
VALUE_DTYPE_F32 = np.float32
VALUE_DTYPE_F64 = np.float64

#: Processed/active flags. The paper notes an 8-bit integer flag vector beats
#: a boolean vector in their C++ code; we keep uint8 for byte accounting.
FLAG_DTYPE = np.uint8

#: Sentinel for an empty hashtable slot (the paper's phi).
EMPTY_KEY = np.int64(-1)

VertexArray: TypeAlias = npt.NDArray[np.int64]
OffsetArray: TypeAlias = npt.NDArray[np.int64]
WeightArray: TypeAlias = npt.NDArray[np.float32]
LabelArray: TypeAlias = npt.NDArray[np.int64]


def vertex_bytes() -> int:
    """Accounted size of a vertex id on the modelled device (uint32)."""
    return 4


def weight_bytes() -> int:
    """Accounted size of an edge weight on the modelled device (float)."""
    return 4
