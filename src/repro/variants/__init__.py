"""Label-propagation variants the paper's selection study covered.

Section 1 of the paper: "In our evaluation of other label-propagation-based
methods such as COPRA, SLPA, and LabelRank, LPA emerged as the most
efficient, delivering communities of comparable quality."  This package
implements those three variants so the claim is checkable (extension
experiment E1):

* :func:`copra` — Community Overlap PRopagation (Gregory 2010): belief
  vectors of up to ``v`` labels per vertex;
* :func:`slpa` — Speaker-Listener LPA (Xie et al. 2011): per-vertex label
  memories with speaker sampling and listener majority;
* :func:`labelrank` — LabelRank (Xie & Szymanski 2013): label distribution
  propagation with inflation, cutoff, and conditional update.

All three natively produce *overlapping* assignments; each returns both the
sparse assignment and its disjoint argmax projection so the quality
comparison against LPA is apples-to-apples.
"""

from repro.variants.copra import copra
from repro.variants.slpa import slpa
from repro.variants.labelrank import labelrank
from repro.variants.common import VariantResult

__all__ = ["copra", "slpa", "labelrank", "VariantResult"]
