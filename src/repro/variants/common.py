"""Shared machinery for the label-propagation variants.

All three variants manipulate *sparse per-vertex label weights*: a triple
of aligned arrays ``(vertex, label, weight)``.  The helpers here implement
the recurring bulk operations — group-summing duplicate (vertex, label)
pairs, per-vertex normalisation, top-k / threshold pruning, and argmax
projection — as sort-based NumPy passes, which is what keeps COPRA and
LabelRank O(active-pairs log active-pairs) per iteration instead of
Python-dict-per-vertex.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.types import VERTEX_DTYPE

__all__ = [
    "VariantResult",
    "SparseBeliefs",
]


@dataclass
class VariantResult:
    """Outcome of a variant run."""

    #: Disjoint projection: the strongest label per vertex.
    labels: np.ndarray
    #: Sparse overlapping assignment as (vertex, label, weight) arrays.
    vertex: np.ndarray
    label: np.ndarray
    weight: np.ndarray
    algorithm: str
    iterations: int
    #: Total (vertex, label) pairs processed — the work measure E1 reports.
    pairs_processed: int
    extra: dict = field(default_factory=dict)

    def memberships(self, threshold: float = 0.0) -> list[list[int]]:
        """Overlapping communities: vertices per label above ``threshold``."""
        keep = self.weight >= threshold
        labels = self.label[keep]
        vertices = self.vertex[keep]
        out: dict[int, list[int]] = {}
        for v, c in zip(vertices.tolist(), labels.tolist()):
            out.setdefault(c, []).append(v)
        return [sorted(members) for _, members in sorted(out.items())]

    def mean_memberships_per_vertex(self) -> float:
        """Average number of labels held per vertex (1.0 = disjoint)."""
        if self.labels.shape[0] == 0:
            return 0.0
        return self.vertex.shape[0] / self.labels.shape[0]


class SparseBeliefs:
    """Sparse (vertex, label, weight) table with bulk operations."""

    def __init__(
        self, vertex: np.ndarray, label: np.ndarray, weight: np.ndarray
    ) -> None:
        self.vertex = np.asarray(vertex, dtype=VERTEX_DTYPE)
        self.label = np.asarray(label, dtype=VERTEX_DTYPE)
        self.weight = np.asarray(weight, dtype=np.float64)

    @classmethod
    def identity(cls, n: int) -> "SparseBeliefs":
        """Each vertex fully believes its own label."""
        ids = np.arange(n, dtype=VERTEX_DTYPE)
        return cls(ids, ids.copy(), np.ones(n))

    @property
    def num_pairs(self) -> int:
        """Active (vertex, label) pairs."""
        return int(self.vertex.shape[0])

    def combined(self) -> "SparseBeliefs":
        """Group-sum duplicate (vertex, label) pairs; result sorted."""
        if self.num_pairs == 0:
            return self
        order = np.lexsort((self.label, self.vertex))
        v, c, w = self.vertex[order], self.label[order], self.weight[order]
        first = np.ones(v.shape[0], dtype=bool)
        first[1:] = (v[1:] != v[:-1]) | (c[1:] != c[:-1])
        starts = np.flatnonzero(first)
        return SparseBeliefs(
            v[starts], c[starts], np.add.reduceat(w, starts)
        )

    def normalized(self) -> "SparseBeliefs":
        """Scale each vertex's weights to sum to 1 (requires sorted pairs)."""
        if self.num_pairs == 0:
            return self
        totals = np.zeros(int(self.vertex.max()) + 1)
        np.add.at(totals, self.vertex, self.weight)
        denom = totals[self.vertex]
        w = np.divide(self.weight, denom, out=np.zeros_like(self.weight),
                      where=denom > 0)
        return SparseBeliefs(self.vertex, self.label, w)

    def pruned(self, threshold: float) -> "SparseBeliefs":
        """Drop pairs below ``threshold``; vertices losing everything keep
        their single strongest label (COPRA's retention rule)."""
        combined = self.combined()
        keep = combined.weight >= threshold
        survivors = combined.vertex[keep]
        # Vertices with no surviving label keep their argmax.
        all_vertices = np.unique(combined.vertex)
        lost = np.setdiff1d(all_vertices, np.unique(survivors))
        if lost.shape[0]:
            best = combined.argmax_labels(int(all_vertices.max()) + 1)
            extra_v = lost
            extra_c = best[lost]
            extra_w = np.ones(lost.shape[0])
            return SparseBeliefs(
                np.concatenate([combined.vertex[keep], extra_v]),
                np.concatenate([combined.label[keep], extra_c]),
                np.concatenate([combined.weight[keep], extra_w]),
            ).combined()
        return SparseBeliefs(
            combined.vertex[keep], combined.label[keep], combined.weight[keep]
        )

    def top_k(self, k: int) -> "SparseBeliefs":
        """Keep each vertex's ``k`` heaviest labels (ties by smaller label)."""
        if self.num_pairs == 0:
            return self
        combined = self.combined()
        # Rank within vertex by (-weight, label).
        order = np.lexsort(
            (combined.label, -combined.weight, combined.vertex)
        )
        v = combined.vertex[order]
        first = np.ones(v.shape[0], dtype=bool)
        first[1:] = v[1:] != v[:-1]
        starts_of = np.flatnonzero(first)
        seg_id = np.cumsum(first) - 1
        rank = np.arange(v.shape[0]) - starts_of[seg_id]
        keep = rank < k
        sel = order[keep]
        return SparseBeliefs(
            combined.vertex[sel], combined.label[sel], combined.weight[sel]
        )

    def argmax_labels(self, n: int) -> np.ndarray:
        """Strongest label per vertex (ties to smaller label); own id when
        a vertex holds no pairs."""
        out = np.arange(n, dtype=VERTEX_DTYPE)
        if self.num_pairs == 0:
            return out
        combined = self.combined()
        order = np.lexsort(
            (combined.label, -combined.weight, combined.vertex)
        )
        v = combined.vertex[order]
        first = np.ones(v.shape[0], dtype=bool)
        first[1:] = v[1:] != v[:-1]
        sel = order[first]
        out[combined.vertex[sel]] = combined.label[sel]
        return out
