"""COPRA — Community Overlap PRopagation Algorithm (Gregory, 2010).

Each vertex carries a *belief vector* of (label, coefficient) pairs summing
to 1.  Per iteration every vertex averages its neighbours' belief vectors
(edge-weighted), deletes labels whose coefficient falls below ``1/v``
(``v`` = the maximum memberships parameter), retains its single strongest
label if everything fell below, and renormalises.  Convergence follows
Gregory's criterion: stop when the multiset of labels in use stops
shrinking and the per-vertex label counts stabilise.

The propagation step is one edge-expansion + group-sum over the sparse
(vertex, label, weight) table — O(pairs·degree) NumPy work per iteration.
"""

from __future__ import annotations

import numpy as np

from repro.core._gather import gather_edges
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.variants.common import SparseBeliefs, VariantResult

__all__ = ["copra"]


def copra(
    graph: CSRGraph,
    *,
    v: int = 2,
    max_iterations: int = 30,
    seed: int = 0,
) -> VariantResult:
    """Run COPRA with at most ``v`` memberships per vertex.

    ``v = 1`` degenerates to (synchronous) disjoint LPA, as in the paper.
    """
    if v < 1:
        raise ConfigurationError(f"v must be >= 1; got {v}")
    n = graph.num_vertices
    beliefs = SparseBeliefs.identity(n)
    threshold = 1.0 / v

    vertices = np.arange(n, dtype=np.int64)
    gather = gather_edges(graph, vertices)
    targets = graph.targets[gather.edge_index]
    non_loop = targets != vertices[gather.table_id]
    edge_src = gather.table_id[non_loop]  # == source vertex id here
    edge_dst = targets[non_loop]
    edge_w = graph.weights[gather.edge_index][non_loop].astype(np.float64)

    pairs_processed = 0
    prev_label_count = -1
    prev_num_labels = -1
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        # Propagate: each vertex receives every neighbour's belief vector.
        # Join edges with the neighbour's sparse pairs via sorted lookup.
        order = np.argsort(beliefs.vertex, kind="stable")
        b_vertex = beliefs.vertex[order]
        b_label = beliefs.label[order]
        b_weight = beliefs.weight[order]
        starts = np.searchsorted(b_vertex, np.arange(n))
        ends = np.searchsorted(b_vertex, np.arange(n), side="right")

        counts = ends[edge_dst] - starts[edge_dst]
        total = int(counts.sum())
        if total == 0:
            break
        rep_edge = np.repeat(np.arange(edge_dst.shape[0]), counts)
        seg_start = np.zeros(edge_dst.shape[0], dtype=np.int64)
        np.cumsum(counts[:-1], out=seg_start[1:])
        within = np.arange(total, dtype=np.int64) - seg_start[rep_edge]
        pair_idx = starts[edge_dst][rep_edge] + within

        new = SparseBeliefs(
            edge_src[rep_edge],
            b_label[pair_idx],
            b_weight[pair_idx] * edge_w[rep_edge],
        )
        pairs_processed += new.num_pairs

        beliefs = new.combined().normalized().pruned(threshold).normalized()

        # Gregory's stopping rule (simplified): the label universe and the
        # number of active pairs both stopped changing.
        num_labels = int(np.unique(beliefs.label).shape[0])
        if (
            beliefs.num_pairs == prev_label_count
            and num_labels == prev_num_labels
        ):
            break
        prev_label_count = beliefs.num_pairs
        prev_num_labels = num_labels

    labels = beliefs.argmax_labels(n)
    return VariantResult(
        labels=labels,
        vertex=beliefs.vertex,
        label=beliefs.label,
        weight=beliefs.weight,
        algorithm=f"copra(v={v})",
        iterations=iterations,
        pairs_processed=pairs_processed,
        extra={"v": v},
    )
