"""LabelRank (Xie & Szymanski, 2013): stabilised label-distribution
propagation.

Every vertex carries a probability distribution over labels.  Each
iteration applies four operators:

1. **Propagation** — each vertex's new distribution is the edge-weighted
   average of its neighbours' distributions;
2. **Inflation** — coefficients are raised to the power ``inflation`` and
   renormalised, sharpening the distribution (Markov-cluster style);
3. **Cutoff** — coefficients below ``cutoff`` are dropped (this is what
   keeps the representation sparse and the algorithm near-linear);
4. **Conditional update** — a vertex only replaces its distribution when
   fewer than ``q`` of its neighbours share its current strongest label
   (the stabilisation that stops label thrashing).

Implementation uses the shared sparse (vertex, label, weight) machinery;
each operator is a sorted group pass.
"""

from __future__ import annotations

import numpy as np

from repro.core._gather import gather_edges
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.variants.common import SparseBeliefs, VariantResult

__all__ = ["labelrank"]


def labelrank(
    graph: CSRGraph,
    *,
    inflation: float = 2.0,
    cutoff: float = 0.1,
    conditional_q: float = 0.6,
    max_iterations: int = 30,
    seed: int = 0,
) -> VariantResult:
    """Run LabelRank.

    ``conditional_q`` is the stabilisation fraction: a vertex keeps its
    distribution when at least that fraction of neighbours already agree
    with its strongest label.
    """
    if inflation <= 0:
        raise ConfigurationError(f"inflation must be positive; got {inflation}")
    if not 0.0 <= cutoff < 1.0:
        raise ConfigurationError(f"cutoff must be in [0, 1); got {cutoff}")
    n = graph.num_vertices
    beliefs = SparseBeliefs.identity(n)

    vertices = np.arange(n, dtype=np.int64)
    gather = gather_edges(graph, vertices)
    targets = graph.targets[gather.edge_index]
    non_loop = targets != vertices[gather.table_id]
    edge_src = gather.table_id[non_loop]
    edge_dst = targets[non_loop]
    edge_w = graph.weights[gather.edge_index][non_loop].astype(np.float64)

    pairs_processed = 0
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        current_best = beliefs.argmax_labels(n)

        # Conditional-update test: fraction of neighbours sharing the
        # vertex's strongest label.
        agree = (current_best[edge_dst] == current_best[edge_src]).astype(
            np.float64
        )
        agree_frac = np.zeros(n)
        deg_w = np.zeros(n)
        np.add.at(agree_frac, edge_src, agree * edge_w)
        np.add.at(deg_w, edge_src, edge_w)
        update = np.ones(n, dtype=bool)
        has_nbrs = deg_w > 0
        update[has_nbrs] = (
            agree_frac[has_nbrs] / deg_w[has_nbrs]
        ) < conditional_q
        if not update.any():
            break

        # Propagation over updating vertices only.
        sel = update[edge_src]
        e_src, e_dst, e_w = edge_src[sel], edge_dst[sel], edge_w[sel]

        order = np.argsort(beliefs.vertex, kind="stable")
        b_vertex = beliefs.vertex[order]
        b_label = beliefs.label[order]
        b_weight = beliefs.weight[order]
        starts = np.searchsorted(b_vertex, np.arange(n))
        ends = np.searchsorted(b_vertex, np.arange(n), side="right")
        counts = ends[e_dst] - starts[e_dst]
        total = int(counts.sum())
        if total == 0:
            break
        rep_edge = np.repeat(np.arange(e_dst.shape[0]), counts)
        seg_start = np.zeros(e_dst.shape[0], dtype=np.int64)
        np.cumsum(counts[:-1], out=seg_start[1:])
        within = np.arange(total, dtype=np.int64) - seg_start[rep_edge]
        pair_idx = starts[e_dst][rep_edge] + within

        propagated = SparseBeliefs(
            e_src[rep_edge],
            b_label[pair_idx],
            b_weight[pair_idx] * e_w[rep_edge],
        ).combined()
        pairs_processed += propagated.num_pairs

        # Inflation + cutoff + renormalise.
        inflated = SparseBeliefs(
            propagated.vertex,
            propagated.label,
            propagated.weight**inflation,
        ).normalized()
        sharpened = inflated.pruned(cutoff).normalized()

        # Merge: updating vertices take the new distribution, others keep.
        keep_mask = ~update[beliefs.vertex]
        beliefs = SparseBeliefs(
            np.concatenate([beliefs.vertex[keep_mask], sharpened.vertex]),
            np.concatenate([beliefs.label[keep_mask], sharpened.label]),
            np.concatenate([beliefs.weight[keep_mask], sharpened.weight]),
        ).combined()

    labels = beliefs.argmax_labels(n)
    return VariantResult(
        labels=labels,
        vertex=beliefs.vertex,
        label=beliefs.label,
        weight=beliefs.weight,
        algorithm=f"labelrank(in={inflation:g})",
        iterations=iterations,
        pairs_processed=pairs_processed,
        extra={"inflation": inflation, "cutoff": cutoff},
    )
