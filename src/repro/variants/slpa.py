"""SLPA — Speaker-Listener Label Propagation Algorithm (Xie et al., 2011).

Every vertex keeps a *memory* of labels, seeded with its own id.  For each
of ``T`` rounds, every vertex acts as a listener: each of its neighbours
(speakers) utters one label sampled uniformly from the speaker's memory,
and the listener appends the most frequent utterance to its own memory.
After ``T`` rounds each vertex's memory holds ``T + 1`` labels; thresholding
the memory histogram at ``r`` yields (overlapping) communities.

Because each round appends exactly one label per vertex, memory is a dense
``(t+1, N)`` array and speaker sampling is one vectorised gather — no
per-vertex Python at all.
"""

from __future__ import annotations

import numpy as np

from repro.core._gather import gather_edges
from repro.core.engine_vectorized import best_labels_groupby
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE
from repro.variants.common import VariantResult

__all__ = ["slpa"]


def slpa(
    graph: CSRGraph,
    *,
    rounds: int = 20,
    r: float = 0.1,
    seed: int = 0,
) -> VariantResult:
    """Run SLPA for ``rounds`` speaker-listener rounds.

    ``r`` is the post-processing threshold: labels occupying less than
    ``r`` of a vertex's memory are dropped from its (overlapping)
    membership; the disjoint projection takes the most frequent label.
    """
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1; got {rounds}")
    if not 0.0 <= r <= 1.0:
        raise ConfigurationError(f"r must be in [0, 1]; got {r}")
    n = graph.num_vertices
    rng = np.random.default_rng(seed)

    memory = np.empty((rounds + 1, n), dtype=VERTEX_DTYPE)
    memory[0] = np.arange(n, dtype=VERTEX_DTYPE)

    vertices = np.arange(n, dtype=np.int64)
    gather = gather_edges(graph, vertices)
    targets = graph.targets[gather.edge_index]
    non_loop = targets != vertices[gather.table_id]
    listener = gather.table_id[non_loop]
    speaker = targets[non_loop]
    edge_w = graph.weights[gather.edge_index][non_loop]

    pairs_processed = 0
    for t in range(1, rounds + 1):
        # Each speaker utters a uniform sample from its t-label memory.
        draw = rng.integers(0, t, size=speaker.shape[0])
        uttered = memory[draw, speaker]
        # Listener adopts the most frequent utterance (edge-weighted;
        # ties to the smallest label, the deterministic convention).
        memory[t] = best_labels_groupby(listener, uttered, edge_w, memory[t - 1])
        pairs_processed += int(speaker.shape[0])

    # Post-processing: per-vertex memory histogram, threshold at r.
    flat_vertex = np.tile(np.arange(n, dtype=VERTEX_DTYPE), rounds + 1)
    flat_label = memory.reshape(-1)
    keys = flat_vertex.astype(np.int64) * np.int64(n) + flat_label
    uniq, counts = np.unique(keys, return_counts=True)
    pair_vertex = (uniq // n).astype(VERTEX_DTYPE)
    pair_label = (uniq % n).astype(VERTEX_DTYPE)
    frequency = counts / float(rounds + 1)

    keep = frequency >= r
    # Disjoint projection: most frequent label per vertex (ties -> smaller).
    order = np.lexsort((pair_label, -frequency, pair_vertex))
    v_sorted = pair_vertex[order]
    first = np.ones(v_sorted.shape[0], dtype=bool)
    first[1:] = v_sorted[1:] != v_sorted[:-1]
    sel = order[first]
    labels = np.arange(n, dtype=VERTEX_DTYPE)
    labels[pair_vertex[sel]] = pair_label[sel]

    return VariantResult(
        labels=labels,
        vertex=pair_vertex[keep],
        label=pair_label[keep],
        weight=frequency[keep],
        algorithm=f"slpa(T={rounds})",
        iterations=rounds,
        pairs_processed=pairs_processed,
        extra={"r": r},
    )
