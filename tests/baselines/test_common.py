"""Tests for shared baseline machinery."""

import numpy as np

from repro.baselines.common import (
    BaselineResult,
    chunked_async_sweep,
    decorrelated_order,
)
from repro.types import VERTEX_DTYPE


class TestDecorrelatedOrder:
    def test_is_permutation(self):
        v = np.arange(100, dtype=np.int64)
        order = decorrelated_order(v)
        assert np.array_equal(np.sort(order), v)

    def test_deterministic(self):
        v = np.arange(50, dtype=np.int64)
        assert np.array_equal(decorrelated_order(v), decorrelated_order(v))

    def test_breaks_id_adjacency(self):
        v = np.arange(1000, dtype=np.int64)
        order = decorrelated_order(v)
        adjacent = np.abs(np.diff(order)) == 1
        assert adjacent.mean() < 0.05

    def test_subset_input(self):
        v = np.array([3, 17, 42, 99], dtype=np.int64)
        assert set(decorrelated_order(v).tolist()) == set(v.tolist())


class TestChunkedAsyncSweep:
    def test_later_chunks_see_earlier_commits(self, path6):
        # Chunk size 1 == fully asynchronous: a label can travel the whole
        # path in one sweep.
        labels = np.arange(6, dtype=VERTEX_DTYPE)
        changed, edges = chunked_async_sweep(
            path6, labels, np.arange(6, dtype=np.int64), 1, tie_break="smallest"
        )
        assert np.unique(labels).shape[0] == 1  # full cascade
        assert edges == path6.num_edges

    def test_full_chunk_is_synchronous(self, path6):
        labels = np.arange(6, dtype=VERTEX_DTYPE)
        chunked_async_sweep(
            path6, labels, np.arange(6, dtype=np.int64), 6, tie_break="smallest"
        )
        # Synchronous: each vertex adopts its smallest neighbour's old
        # label (vertex 0's only neighbour is 1).
        assert labels.tolist() == [1, 0, 1, 2, 3, 4]

    def test_changed_vertices_reported(self, two_cliques):
        labels = np.arange(10, dtype=VERTEX_DTYPE)
        changed, _ = chunked_async_sweep(
            two_cliques, labels, np.arange(10, dtype=np.int64), 4
        )
        assert changed.shape[0] > 0
        assert np.all(labels[changed] != np.arange(10)[changed])

    def test_result_container(self):
        r = BaselineResult(
            labels=np.array([0, 0, 1]),
            algorithm="x",
            iterations=2,
            converged=True,
            edges_scanned=10,
            vertices_processed=3,
        )
        assert r.num_communities() == 2
