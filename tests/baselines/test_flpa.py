"""Tests for the FLPA baseline."""

import numpy as np
import pytest

from repro.baselines import flpa
from repro.metrics import modularity, normalized_mutual_information


class TestFlpa:
    def test_two_cliques(self, two_cliques):
        r = flpa(two_cliques, seed=0)
        assert r.converged
        assert r.num_communities() == 2

    def test_exact_convergence_no_queue_left(self, small_road):
        r = flpa(small_road, seed=0)
        assert r.converged

    def test_quality_on_planted(self, planted):
        g, truth = planted
        r = flpa(g, seed=0)
        assert normalized_mutual_information(truth, r.labels) > 0.6

    def test_work_counts_positive(self, two_cliques):
        r = flpa(two_cliques, seed=0)
        assert r.edges_scanned > 0
        assert r.vertices_processed >= two_cliques.num_vertices

    def test_seed_changes_tie_breaks(self, small_road):
        a = flpa(small_road, seed=0)
        b = flpa(small_road, seed=1)
        # Same quality regime even if labels differ.
        qa, qb = modularity(small_road, a.labels), modularity(small_road, b.labels)
        assert abs(qa - qb) < 0.2

    def test_max_pops_cap(self, small_road):
        r = flpa(small_road, seed=0, max_pops=5)
        assert not r.converged

    def test_empty_graph(self):
        from repro.graph.build import from_edges

        g = from_edges(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        r = flpa(g)
        assert r.labels.shape[0] == 0
