"""Tests for the Gunrock-style synchronous LPA baseline."""

import numpy as np

from repro.baselines import gunrock_lpa
from repro.graph.generators import watts_strogatz
from repro.metrics import modularity


class TestGunrock:
    def test_two_cliques(self, two_cliques):
        r = gunrock_lpa(two_cliques)
        assert r.num_communities() <= 4  # cliques collapse quickly

    def test_oscillation_on_symmetric_graph(self):
        """No swap mitigation: a symmetric ring never settles."""
        ring = watts_strogatz(64, 2, 0.0, seed=1)
        r = gunrock_lpa(ring, max_iterations=10)
        assert not r.converged
        assert r.iterations == 10

    def test_low_modularity_on_road(self, small_road):
        """The paper: 'the modularity achieved by Gunrock LPA is very low'."""
        from repro import nu_lpa

        q_gr = modularity(small_road, gunrock_lpa(small_road).labels)
        q_nu = modularity(small_road, nu_lpa(small_road).labels)
        assert q_gr < q_nu - 0.3

    def test_fixed_iteration_work(self, small_web):
        r = gunrock_lpa(small_web, max_iterations=5)
        assert r.iterations <= 5
        # Synchronous: every iteration scans every (non-loop) edge.
        assert r.edges_scanned >= 4 * (small_web.num_edges * 0.9)

    def test_deterministic(self, small_web):
        a = gunrock_lpa(small_web)
        b = gunrock_lpa(small_web)
        assert np.array_equal(a.labels, b.labels)
