"""Tests for the Louvain baseline."""

import numpy as np
import pytest

from repro.baselines import louvain
from repro.baselines.louvain import aggregate_graph, local_moving
from repro.graph.build import from_edges
from repro.metrics import modularity, normalized_mutual_information


class TestLocalMoving:
    def test_path_pairs_up(self, path6):
        labels, rounds, edges = local_moving(path6)
        # P6 optimum groups consecutive pairs/triples; Q must be positive.
        assert modularity(path6, labels) > 0.2
        assert edges > 0

    def test_empty_graph(self):
        g = from_edges(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        labels, rounds, edges = local_moving(g)
        assert labels.shape[0] == 0


class TestAggregate:
    def test_preserves_total_weight(self, two_cliques):
        labels = np.array([0] * 5 + [1] * 5)
        agg = aggregate_graph(two_cliques, labels)
        assert agg.num_vertices == 2
        assert agg.total_weight() == pytest.approx(two_cliques.total_weight())

    def test_intra_weight_becomes_self_loops(self, two_cliques):
        labels = np.array([0] * 5 + [1] * 5)
        agg = aggregate_graph(two_cliques, labels)
        # K5 has 10 undirected intra edges -> arc weight 20 on the loop.
        assert 0 in agg.neighbors(0)

    def test_modularity_invariant_under_aggregation(self, two_cliques):
        labels = np.array([0] * 5 + [1] * 5)
        agg = aggregate_graph(two_cliques, labels)
        q_orig = modularity(two_cliques, labels)
        q_agg = modularity(agg, np.array([0, 1]))
        assert q_agg == pytest.approx(q_orig, rel=1e-6)


class TestLouvain:
    def test_two_cliques_exact(self, two_cliques):
        r = louvain(two_cliques)
        assert r.num_communities() == 2
        assert modularity(two_cliques, r.labels) > 0.4

    def test_planted_partition_recovered(self, planted):
        g, truth = planted
        r = louvain(g)
        assert normalized_mutual_information(truth, r.labels) > 0.8

    def test_quality_ceiling_on_road(self, small_road):
        """Louvain is the paper's quality reference (+9.6% over nu-LPA)."""
        from repro import nu_lpa

        q_lv = modularity(small_road, louvain(small_road).labels)
        q_nu = modularity(small_road, nu_lpa(small_road).labels)
        assert q_lv > q_nu

    def test_pass_modularity_non_decreasing(self, small_web):
        r = louvain(small_web)
        qs = r.pass_modularity
        assert all(qs[i + 1] >= qs[i] - 1e-9 for i in range(len(qs) - 1))

    def test_pass_sizes_shrink(self, small_web):
        r = louvain(small_web)
        sizes = r.pass_sizes
        assert all(sizes[i + 1] < sizes[i] for i in range(len(sizes) - 1))

    def test_labels_cover_original_vertices(self, small_web):
        r = louvain(small_web)
        assert r.labels.shape[0] == small_web.num_vertices

    def test_resolution_controls_granularity(self, small_web):
        coarse = louvain(small_web, resolution=0.5)
        fine = louvain(small_web, resolution=2.0)
        assert fine.num_communities() >= coarse.num_communities()
