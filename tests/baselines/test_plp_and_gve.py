"""Tests for the NetworKit-PLP and GVE-LPA baselines."""

import numpy as np
import pytest

from repro.baselines import gve_lpa, networkit_plp
from repro.metrics import modularity, normalized_mutual_information


class TestNetworkitPlp:
    def test_two_cliques(self, two_cliques):
        r = networkit_plp(two_cliques)
        assert r.num_communities() == 2

    def test_planted_quality(self, planted):
        g, truth = planted
        r = networkit_plp(g)
        assert normalized_mutual_information(truth, r.labels) > 0.7

    def test_tight_tolerance_runs_longer(self, small_web):
        tight = networkit_plp(small_web, tolerance=1e-5)
        loose = networkit_plp(small_web, tolerance=0.2)
        assert tight.iterations >= loose.iterations

    def test_deterministic(self, small_web):
        a = networkit_plp(small_web)
        b = networkit_plp(small_web)
        assert np.array_equal(a.labels, b.labels)

    def test_work_counts(self, small_web):
        r = networkit_plp(small_web)
        assert r.edges_scanned > small_web.num_edges * 0.5
        assert r.extra["num_threads"] == 32

    def test_beats_nu_lpa_quality_on_road(self, small_road):
        """The paper's +6.1% NetworKit quality edge, at stand-in scale."""
        from repro import nu_lpa

        q_nk = modularity(small_road, networkit_plp(small_road).labels)
        q_nu = modularity(small_road, nu_lpa(small_road).labels)
        assert q_nk > q_nu


class TestGveLpa:
    def test_two_cliques(self, two_cliques):
        r = gve_lpa(two_cliques)
        assert r.num_communities() == 2

    def test_converges_within_cap(self, small_web):
        r = gve_lpa(small_web)
        assert r.iterations <= 20

    def test_planted_quality(self, planted):
        g, truth = planted
        r = gve_lpa(g)
        assert normalized_mutual_information(truth, r.labels) > 0.7

    def test_loose_tolerance_stops_earlier_than_networkit(self, small_web):
        assert gve_lpa(small_web).iterations <= networkit_plp(small_web).iterations
