"""Shared fixtures: small deterministic graphs covering the main shapes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.build import from_edges
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    planted_partition,
    rmat_graph,
    road_network,
    web_graph,
)


@pytest.fixture
def triangle() -> CSRGraph:
    """K3 — the smallest graph with a non-trivial community."""
    return from_edges(np.array([0, 1, 2]), np.array([1, 2, 0]))


@pytest.fixture
def path6() -> CSRGraph:
    """P6 — path of six vertices; pathological for synchronous LPA."""
    return from_edges(np.arange(5), np.arange(1, 6))


@pytest.fixture
def star() -> CSRGraph:
    """Star with 8 leaves — a hub plus degree-1 vertices."""
    n = 9
    return from_edges(np.zeros(n - 1, dtype=np.int64), np.arange(1, n))


@pytest.fixture
def two_cliques() -> CSRGraph:
    """Two K5 cliques joined by one bridge edge — unambiguous communities."""
    import itertools

    edges = []
    for base in (0, 5):
        edges.extend((base + a, base + b) for a, b in itertools.combinations(range(5), 2))
    edges.append((4, 5))
    src, dst = map(np.asarray, zip(*edges))
    return from_edges(src, dst)


@pytest.fixture
def weighted_triangle() -> CSRGraph:
    """K3 with distinct weights, for weighted-path assertions."""
    return from_edges(
        np.array([0, 1, 2]),
        np.array([1, 2, 0]),
        np.array([1.0, 2.0, 3.0], dtype=np.float32),
    )


@pytest.fixture(scope="session")
def small_web() -> CSRGraph:
    """A 2000-vertex web-graph stand-in (session-scoped: generation cost)."""
    return web_graph(2000, avg_degree=8, seed=7)


@pytest.fixture(scope="session")
def small_road() -> CSRGraph:
    """A small road-network stand-in."""
    return road_network(10, 10, chain_length=4, seed=7)


@pytest.fixture(scope="session")
def small_social() -> CSRGraph:
    """A small heavy-tailed social-network stand-in."""
    return rmat_graph(10, 8, seed=7)


@pytest.fixture(scope="session")
def planted() -> tuple[CSRGraph, np.ndarray]:
    """Planted partition with strong, recoverable communities."""
    return planted_partition(400, 8, p_in=0.25, p_out=0.01, seed=7)
