"""Tests for RunBudget / BudgetMeter: graceful degradation, never raising."""

import numpy as np
import pytest

from repro.core.budget import BudgetMeter, RunBudget
from repro.core.config import LPAConfig, ResilienceConfig
from repro.core.lpa import nu_lpa
from repro.errors import ConfigurationError
from repro.graph.generators import web_graph
from repro.observe.trace import Tracer


@pytest.fixture
def graph():
    return web_graph(600, seed=11)


class TestRunBudget:
    def test_defaults_unlimited(self):
        assert RunBudget().unlimited

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"wall_seconds": 0.0},
            {"wall_seconds": -1.0},
            {"gpu_seconds": 0.0},
            {"max_iterations": 0},
        ],
    )
    def test_nonpositive_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RunBudget(**kwargs)

    def test_with_updates(self):
        b = RunBudget(max_iterations=3).with_(wall_seconds=1.0)
        assert b.max_iterations == 3 and b.wall_seconds == 1.0


class TestMeter:
    def test_iteration_breach(self):
        meter = BudgetMeter(RunBudget(max_iterations=2), LPAConfig().device)
        from repro.gpu.metrics import KernelCounters

        meter.charge(KernelCounters())
        assert meter.breached() is None
        meter.charge(KernelCounters())
        assert meter.breached() == "iterations"

    def test_wall_clock_breach(self):
        meter = BudgetMeter(RunBudget(wall_seconds=1e-9), LPAConfig().device)
        assert meter.breached() == "wall-clock"


class TestDriverIntegration:
    def test_iteration_budget_returns_degraded_best_so_far(self, graph):
        full = nu_lpa(graph, warn_on_no_convergence=False)
        capped = nu_lpa(
            graph, budget=RunBudget(max_iterations=2),
            warn_on_no_convergence=False,
        )
        assert capped.degraded
        assert capped.degraded_reason == "iterations"
        assert capped.num_iterations == 2
        assert not capped.converged
        # best-so-far labels are a valid partition over all vertices
        assert capped.labels.shape == full.labels.shape
        assert capped.num_communities() >= full.num_communities()

    def test_gpu_budget_breach(self, graph):
        r = nu_lpa(
            graph, engine="hashtable", budget=RunBudget(gpu_seconds=1e-12),
            warn_on_no_convergence=False,
        )
        assert r.degraded_reason == "gpu-seconds"
        assert r.num_iterations == 1

    def test_converging_iteration_is_charged(self, graph, monkeypatch):
        # The iteration that detects convergence still ran its kernels,
        # so the meter must charge it like any other — one charge per
        # recorded iteration, the final one included.
        charges = []

        class RecordingMeter(BudgetMeter):
            def charge(self, counters):
                charges.append(counters)
                super().charge(counters)

        monkeypatch.setattr("repro.core.lpa.BudgetMeter", RecordingMeter)
        result = nu_lpa(graph, budget=RunBudget(max_iterations=1000))
        assert result.converged
        assert len(charges) == result.num_iterations

    def test_unconstraining_budget_changes_nothing(self, graph):
        plain = nu_lpa(graph)
        budgeted = nu_lpa(graph, budget=RunBudget(max_iterations=1000))
        assert not budgeted.degraded
        assert budgeted.degraded_reason is None
        assert np.array_equal(plain.labels, budgeted.labels)

    def test_no_convergence_warning_on_breach(self, graph):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            r = nu_lpa(graph, budget=RunBudget(max_iterations=1))
        assert r.degraded

    def test_budget_event_traced(self, graph):
        tracer = Tracer()
        r = nu_lpa(
            graph, budget=RunBudget(max_iterations=1), tracer=tracer,
            warn_on_no_convergence=False,
        )
        events = [e for e in tracer.events if e.kind == "budget_breach"]
        assert len(events) == 1
        assert events[0].reason == "iterations"

    def test_supervised_breach_records_fault_event(self, graph):
        r = nu_lpa(
            graph, budget=RunBudget(max_iterations=1),
            resilience=ResilienceConfig(),
            warn_on_no_convergence=False,
        )
        actions = [ev.action for ev in r.fault_events]
        assert "budget-stop" in actions

    def test_breached_run_checkpoints_and_resumes(self, tmp_path, graph):
        """A budget-stopped run leaves a checkpoint a later (richer) budget
        can finish from, matching the never-budgeted run bit for bit."""
        baseline = nu_lpa(graph, engine="hashtable", warn_on_no_convergence=False)
        first = nu_lpa(
            graph, engine="hashtable", budget=RunBudget(max_iterations=2),
            resilience=ResilienceConfig(checkpoint_dir=tmp_path / "ckpt"),
            warn_on_no_convergence=False,
        )
        assert first.degraded
        resumed = nu_lpa(
            graph, engine="hashtable",
            resilience=ResilienceConfig(
                checkpoint_dir=tmp_path / "ckpt", resume=True,
            ),
            warn_on_no_convergence=False,
        )
        assert resumed.resumed_from == 2
        assert np.array_equal(resumed.labels, baseline.labels)
