"""Tests for LPAConfig."""

import numpy as np
import pytest

from repro.core.config import LPAConfig, SwapPrevention
from repro.errors import ConfigurationError
from repro.hashing.probing import ProbeStrategy


class TestDefaults:
    def test_paper_defaults(self):
        c = LPAConfig()
        assert c.max_iterations == 20
        assert c.tolerance == 0.05
        assert c.pl_period == 4
        assert c.cc_period is None
        assert c.switch_degree == 32
        assert c.probing is ProbeStrategy.QUADRATIC_DOUBLE
        assert np.dtype(c.value_dtype) == np.dtype(np.float32)
        assert c.pruning

    def test_default_method_is_pick_less(self):
        assert LPAConfig().swap_prevention is SwapPrevention.PICK_LESS


class TestValidation:
    def test_bad_iterations(self):
        with pytest.raises(ConfigurationError):
            LPAConfig(max_iterations=0)

    def test_bad_tolerance(self):
        with pytest.raises(ConfigurationError):
            LPAConfig(tolerance=1.5)

    def test_bad_periods(self):
        with pytest.raises(ConfigurationError):
            LPAConfig(pl_period=0)
        with pytest.raises(ConfigurationError):
            LPAConfig(cc_period=-1)

    def test_bad_dtype(self):
        with pytest.raises(ConfigurationError):
            LPAConfig(value_dtype=np.int32)

    def test_bad_switch_degree(self):
        with pytest.raises(ConfigurationError):
            LPAConfig(switch_degree=-1)


class TestSchedules:
    def test_pl_active_on_multiples(self):
        c = LPAConfig(pl_period=4)
        assert [c.pick_less_active(i) for i in range(6)] == [
            True, False, False, False, True, False,
        ]

    def test_pl_disabled(self):
        c = LPAConfig(pl_period=None)
        assert not any(c.pick_less_active(i) for i in range(10))

    def test_cc_schedule(self):
        c = LPAConfig(pl_period=None, cc_period=2)
        assert [c.cross_check_active(i) for i in range(4)] == [
            True, False, True, False,
        ]


class TestVariants:
    def test_method_classification(self):
        assert LPAConfig(pl_period=None).swap_prevention is SwapPrevention.NONE
        assert (
            LPAConfig(pl_period=None, cc_period=2).swap_prevention
            is SwapPrevention.CROSS_CHECK
        )
        assert (
            LPAConfig(pl_period=3, cc_period=2).swap_prevention
            is SwapPrevention.HYBRID
        )

    def test_describe_labels(self):
        assert LPAConfig().describe() == "PL4"
        assert LPAConfig(pl_period=None, cc_period=2).describe() == "CC2"
        assert LPAConfig(pl_period=1, cc_period=3).describe() == "H(CC3,PL1)"
        assert LPAConfig(pl_period=None).describe() == "none"

    def test_with_updates(self):
        c = LPAConfig().with_(tolerance=0.1)
        assert c.tolerance == 0.1
        assert c.pl_period == 4  # untouched
