"""Degenerate inputs through the full nu_lpa pipeline, both engines.

The hardening contract is that pathological-but-legal graphs — empty,
single-vertex, edgeless, a hub past the two-kernel switch degree, weights
that saturate the fp32 accumulators — run to a sane answer (or a clean
validation verdict), never crash deep in a kernel.
"""

import numpy as np
import pytest

from repro.core.config import LPAConfig
from repro.core.lpa import nu_lpa
from repro.graph.build import coo_to_csr, from_edges
from repro.graph.csr import CSRGraph
from repro.resilience.validate import FP32_MAX, validate_graph
from repro.types import WEIGHT_DTYPE

ENGINES = ["vectorized", "hashtable"]


def empty_graph():
    return from_edges(
        np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), num_vertices=0
    )


def edgeless(n):
    return CSRGraph(
        np.zeros(n + 1, dtype=np.int64), np.empty(0, dtype=np.int64)
    )


def star(n):
    """Hub 0 joined to n-1 leaves."""
    hub = np.zeros(n - 1, dtype=np.int64)
    leaves = np.arange(1, n, dtype=np.int64)
    return from_edges(hub, leaves, num_vertices=n, symmetrize=True)


@pytest.mark.parametrize("engine", ENGINES)
class TestDegenerate:
    def test_empty_graph(self, engine):
        result = nu_lpa(empty_graph(), engine=engine)
        assert result.converged
        assert result.labels.shape == (0,)
        assert result.num_communities() == 0

    def test_single_vertex(self, engine):
        result = nu_lpa(edgeless(1), engine=engine)
        assert result.converged
        assert result.num_communities() == 1

    def test_all_isolated(self, engine):
        result = nu_lpa(edgeless(64), engine=engine)
        assert result.converged
        # no edges: everyone keeps their own label
        assert result.num_communities() == 64

    def test_star_beyond_switch_degree(self, engine):
        config = LPAConfig(switch_degree=32)
        n = 100  # hub degree 99 > 32: must land in the high-degree kernel
        result = nu_lpa(star(n), config, engine=engine)
        assert result.labels.shape == (n,)
        # a star collapses into one community around the hub
        assert result.num_communities() == 1

    def test_fp32_total_weight_overflow_still_terminates(self, engine):
        # every individual weight is fp32-legal, but the hub's incident
        # total saturates the fp32 accumulator
        n = 40
        hub = np.zeros(n - 1, dtype=np.int64)
        leaves = np.arange(1, n, dtype=np.int64)
        w = np.full(n - 1, FP32_MAX / 4, dtype=WEIGHT_DTYPE)
        g = from_edges(hub, leaves, w, num_vertices=n, symmetrize=True)
        _, report = validate_graph(g, "strict")
        assert "fp32-accumulation-overflow" in report.by_code()
        result = nu_lpa(g, engine=engine, warn_on_no_convergence=False)
        assert result.labels.shape == (n,)
        assert np.all(result.labels >= 0) and np.all(result.labels < n)

    def test_self_loop_only(self, engine):
        g = coo_to_csr(
            np.array([0], dtype=np.int64),
            np.array([0], dtype=np.int64),
            np.array([1.0], dtype=WEIGHT_DTYPE),
            1,
        )
        result = nu_lpa(g, engine=engine)
        assert result.converged
        assert result.num_communities() == 1


def test_two_vertices_one_edge_merge():
    g = from_edges(
        np.array([0], dtype=np.int64), np.array([1], dtype=np.int64),
        num_vertices=2, symmetrize=True,
    )
    result = nu_lpa(g, warn_on_no_convergence=False)
    assert result.num_communities() == 1
