"""Tests for convergence diagnostics."""

import numpy as np
import pytest

from repro.core import LPAConfig, nu_lpa
from repro.core.diagnostics import diagnose_run, find_swap_cycles
from repro.graph.generators import watts_strogatz


class TestSwapDetection:
    def test_perfect_matching_swaps_everywhere(self):
        """The canonical pathology: disjoint edges swap labels forever."""
        from repro.graph.build import from_edges

        n = 32
        g = from_edges(np.arange(0, n, 2), np.arange(1, n, 2))
        report = find_swap_cycles(g)
        assert report.swap_fraction == pytest.approx(1.0)

    def test_ring_drifts_rather_than_swaps(self):
        """A ring under smallest-label ties is a travelling wave, not a
        period-2 swap: only the wrap-around pair 2-cycles."""
        ring = watts_strogatz(64, 2, 0.0, seed=1)
        report = find_swap_cycles(ring)
        assert report.any_swaps
        assert report.swap_fraction < 0.1

    def test_two_cliques_mostly_stable(self, two_cliques):
        report = find_swap_cycles(two_cliques)
        # Clique cores converge instantly; at most boundary jitter.
        assert report.swap_fraction < 0.5

    def test_converged_state_has_no_swaps(self, two_cliques):
        labels = np.array([0] * 5 + [5] * 5)
        report = find_swap_cycles(two_cliques, labels)
        assert not report.any_swaps

    def test_report_vertices_are_valid(self, small_road):
        report = find_swap_cycles(small_road)
        if report.any_swaps:
            assert report.swapping_vertices.max() < small_road.num_vertices


class TestDiagnoseRun:
    def test_converged_run(self, two_cliques):
        r = nu_lpa(two_cliques)
        report = diagnose_run(r, two_cliques.num_vertices)
        assert report.converged
        assert report.final_change_fraction < 0.2

    def test_oscillating_run_decay_near_one(self):
        ring = watts_strogatz(64, 2, 0.0, seed=1)
        r = nu_lpa(ring, LPAConfig(pl_period=None))
        report = diagnose_run(r, ring.num_vertices)
        assert not report.converged
        assert report.change_decay > 0.8  # stuck, not decaying

    def test_healthy_run_decays(self, small_web):
        r = nu_lpa(small_web)
        report = diagnose_run(r, small_web.num_vertices)
        assert report.change_decay < 1.0
        assert report.knee_iteration >= 0

    def test_empty_history(self):
        from repro.core.result import LPAResult

        r = LPAResult(labels=np.array([]), iterations=[], converged=True)
        report = diagnose_run(r, 0)
        assert report.iterations == 0

    def test_mid_history_zero_does_not_collapse_decay(self):
        # Regression: [100, 0, 40, 20] used to report decay 0.0 because a
        # single zero anywhere in the history voided the whole estimate.
        # The only consecutive positive pair is (40, 20) -> decay 0.5.
        r = _result_with_history([100, 0, 40, 20])
        report = diagnose_run(r, 1000)
        assert report.change_decay == pytest.approx(0.5)

    def test_all_positive_history_unchanged(self):
        # [100, 50, 25]: both pairs halve -> geometric mean 0.5, exactly
        # what the pre-fix code computed for zero-free histories.
        r = _result_with_history([100, 50, 25])
        report = diagnose_run(r, 1000)
        assert report.change_decay == pytest.approx(0.5)

    def test_trailing_zero_keeps_positive_pair_decay(self):
        # [100, 50, 0]: the (50, 0) pair is excluded (a ratio into zero is
        # convergence, not a decay observation); decay comes from (100, 50).
        r = _result_with_history([100, 50, 0])
        report = diagnose_run(r, 1000)
        assert report.change_decay == pytest.approx(0.5)

    def test_no_positive_pairs_yields_zero(self):
        r = _result_with_history([100, 0, 0, 50])
        report = diagnose_run(r, 1000)
        assert report.change_decay == 0.0


def _result_with_history(changes):
    from repro.core.result import IterationStats, LPAResult

    stats = [
        IterationStats(iteration=i, changed=c, processed=c,
                       pick_less=False, cross_check=False)
        for i, c in enumerate(changes)
    ]
    return LPAResult(labels=np.arange(4), iterations=stats, converged=False)
