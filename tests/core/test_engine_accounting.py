"""Tests for the hashtable engine's event accounting.

Counters feed the cost model, so their *relationships* (coalesced beats
scattered, pruning shrinks scans, atomics only from shared tables) must be
exact even where absolute values are model-defined.
"""

import numpy as np
import pytest

from repro.core import LPAConfig, nu_lpa
from repro.graph.build import from_edges
from repro.graph.generators import web_graph
from repro.hashing.probing import ProbeStrategy


class TestAccountingRelations:
    def test_probes_at_least_entries(self, small_web):
        r = nu_lpa(small_web, engine="hashtable")
        c = r.total_counters
        assert c.probes >= c.edges_scanned

    def test_clears_cover_capacities(self, star):
        r = nu_lpa(star, LPAConfig(max_iterations=1), engine="hashtable")
        from repro.hashing.primes import table_capacity

        expected = int(np.asarray(table_capacity(star.degrees)).sum())
        assert r.iterations[0].counters.slots_cleared == expected

    def test_fp64_moves_more_bytes(self, small_web):
        f32 = nu_lpa(small_web, LPAConfig(value_dtype=np.float32,
                                          max_iterations=2),
                     engine="hashtable").total_counters
        f64 = nu_lpa(small_web, LPAConfig(value_dtype=np.float64,
                                          max_iterations=2),
                     engine="hashtable").total_counters
        from repro.gpu.device import A100

        assert f64.bytes_moved(A100.sector_bytes) > f32.bytes_moved(A100.sector_bytes)
        # Identical algorithmic work.
        assert f64.edges_scanned == f32.edges_scanned

    def test_block_kernel_only_for_high_degree(self):
        # A pure star: hub (degree 8 < 32) stays in the thread kernel.
        g = from_edges(np.zeros(8, dtype=np.int64), np.arange(1, 9))
        r = nu_lpa(g, engine="hashtable")
        assert r.total_counters.atomic_add == 0

        # Force the hub into the block kernel via a tiny switch degree.
        r2 = nu_lpa(g, LPAConfig(switch_degree=2), engine="hashtable")
        assert r2.total_counters.atomic_add > 0

    def test_warp_serial_grows_with_hub_degree(self):
        small_hub = from_edges(np.zeros(40, dtype=np.int64), np.arange(1, 41))
        big_hub = from_edges(np.zeros(400, dtype=np.int64), np.arange(1, 401))
        cfg = LPAConfig(switch_degree=10**6, max_iterations=1)  # thread kernel
        a = nu_lpa(small_hub, cfg, engine="hashtable").total_counters
        b = nu_lpa(big_hub, cfg, engine="hashtable").total_counters
        assert b.warp_serial_probes > a.warp_serial_probes

    def test_linear_probing_discounts_extra_probe_sectors(self, small_web):
        cfg_lin = LPAConfig(probing=ProbeStrategy.LINEAR, max_iterations=2)
        cfg_dbl = LPAConfig(probing=ProbeStrategy.DOUBLE, max_iterations=2)
        lin = nu_lpa(small_web, cfg_lin, engine="hashtable").total_counters
        dbl = nu_lpa(small_web, cfg_dbl, engine="hashtable").total_counters
        # Per probe, linear must be cheaper in sectors.
        assert lin.sectors_read / max(lin.probes, 1) < dbl.sectors_read / max(
            dbl.probes, 1
        ) + 1e-9

    def test_shared_memory_reduces_traffic_only(self, small_road):
        base = nu_lpa(small_road, LPAConfig(), engine="hashtable")
        smem = nu_lpa(
            small_road, LPAConfig(shared_memory_tables=True), engine="hashtable"
        )
        assert np.array_equal(base.labels, smem.labels)  # same algorithm
        assert (
            smem.total_counters.sectors_read < base.total_counters.sectors_read
        )

    def test_waves_scale_with_block_kernel_grid(self):
        g = web_graph(4000, avg_degree=10, seed=3)
        low = nu_lpa(g, LPAConfig(switch_degree=2, max_iterations=1),
                     engine="hashtable").total_counters
        high = nu_lpa(g, LPAConfig(switch_degree=256, max_iterations=1),
                      engine="hashtable").total_counters
        # Sending everything to the block kernel needs more waves.
        assert low.waves > high.waves
