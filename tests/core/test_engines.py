"""Engine-level tests: one lpaMove at a time."""

import numpy as np
import pytest

from repro.core.config import LPAConfig
from repro.core.engine_hashtable import HashtableEngine
from repro.core.engine_vectorized import VectorizedEngine, best_labels_groupby
from repro.core.pruning import Frontier
from repro.types import VERTEX_DTYPE


ENGINE_CLASSES = [VectorizedEngine, HashtableEngine]


class TestGroupby:
    def test_basic_argmax(self):
        table_id = np.array([0, 0, 0, 1])
        keys = np.array([7, 7, 3, 9])
        values = np.array([1.0, 1.0, 1.5, 2.0])
        out = best_labels_groupby(table_id, keys, values, 2, np.array([-1, -1]))
        assert out.tolist() == [7, 9]

    def test_tie_breaks_to_smallest(self):
        table_id = np.array([0, 0])
        keys = np.array([9, 4])
        values = np.array([1.0, 1.0])
        out = best_labels_groupby(table_id, keys, values, 1, np.array([-1]))
        assert out[0] == 4

    def test_hash_tie_break_differs_deterministically(self):
        table_id = np.zeros(4, dtype=np.int64)
        keys = np.array([1, 2, 3, 4])
        values = np.ones(4)
        a = best_labels_groupby(table_id, keys, values, 1, np.array([-1]),
                                tie_break="hash")
        b = best_labels_groupby(table_id, keys, values, 1, np.array([-1]),
                                tie_break="hash")
        assert a[0] == b[0]
        assert a[0] in keys

    def test_unknown_tie_break_rejected(self):
        with pytest.raises(ValueError):
            best_labels_groupby(
                np.array([0]), np.array([1]), np.array([1.0]), 1,
                np.array([-1]), tie_break="random",
            )

    def test_empty_tables_get_fallback(self):
        out = best_labels_groupby(
            np.array([1]), np.array([5]), np.array([1.0]), 3,
            np.array([10, 11, 12]),
        )
        assert out.tolist() == [10, 5, 12]

    def test_weights_accumulate_across_duplicate_keys(self):
        table_id = np.array([0, 0, 0])
        keys = np.array([4, 9, 4])
        values = np.array([1.0, 1.5, 1.0])  # 4 totals 2.0 > 9's 1.5
        out = best_labels_groupby(table_id, keys, values, 1, np.array([-1]))
        assert out[0] == 4


@pytest.mark.parametrize("engine_cls", ENGINE_CLASSES)
class TestMove:
    def test_first_move_changes_vertices(self, two_cliques, engine_cls):
        config = LPAConfig()
        engine = engine_cls(two_cliques, config)
        labels = np.arange(two_cliques.num_vertices, dtype=VERTEX_DTYPE)
        frontier = Frontier(two_cliques)
        out = engine.move(labels, frontier, pick_less=True, iteration=0)
        assert out.changed > 0
        assert out.processed == two_cliques.num_vertices
        assert np.array_equal(np.sort(out.changed_vertices),
                              np.flatnonzero(labels != np.arange(labels.shape[0])))

    def test_pick_less_only_lowers_labels(self, small_web, engine_cls):
        config = LPAConfig()
        engine = engine_cls(small_web, config)
        labels = np.arange(small_web.num_vertices, dtype=VERTEX_DTYPE)
        before = labels.copy()
        frontier = Frontier(small_web)
        engine.move(labels, frontier, pick_less=True, iteration=0)
        assert np.all(labels <= before)

    def test_processed_vertices_marked(self, star, engine_cls):
        config = LPAConfig()
        engine = engine_cls(star, config)
        labels = np.arange(star.num_vertices, dtype=VERTEX_DTYPE)
        frontier = Frontier(star)
        out = engine.move(labels, frontier, pick_less=False, iteration=0)
        # Changed vertices re-marked their neighbours; everything else done.
        assert frontier.num_active() <= star.num_vertices

    def test_move_without_changes_empties_frontier(self, triangle, engine_cls):
        config = LPAConfig()
        engine = engine_cls(triangle, config)
        labels = np.zeros(3, dtype=VERTEX_DTYPE)  # already converged
        frontier = Frontier(triangle)
        out = engine.move(labels, frontier, pick_less=False, iteration=0)
        assert out.changed == 0
        assert frontier.num_active() == 0
