"""Engine-level tests: one lpaMove at a time."""

import numpy as np
import pytest

from repro.core.config import LPAConfig
from repro.core.engine_hashtable import HashtableEngine
from repro.core.engine_vectorized import VectorizedEngine, best_labels_groupby
from repro.core.pruning import Frontier
from repro.graph.build import from_edges
from repro.types import VERTEX_DTYPE


ENGINE_CLASSES = [VectorizedEngine, HashtableEngine]


class TestGroupby:
    def test_basic_argmax(self):
        table_id = np.array([0, 0, 0, 1])
        keys = np.array([7, 7, 3, 9])
        values = np.array([1.0, 1.0, 1.5, 2.0])
        out = best_labels_groupby(table_id, keys, values, np.array([-1, -1]))
        assert out.tolist() == [7, 9]

    def test_tie_breaks_to_smallest(self):
        table_id = np.array([0, 0])
        keys = np.array([9, 4])
        values = np.array([1.0, 1.0])
        out = best_labels_groupby(table_id, keys, values, np.array([-1]))
        assert out[0] == 4

    def test_hash_tie_break_differs_deterministically(self):
        table_id = np.zeros(4, dtype=np.int64)
        keys = np.array([1, 2, 3, 4])
        values = np.ones(4)
        a = best_labels_groupby(table_id, keys, values, np.array([-1]),
                                tie_break="hash")
        b = best_labels_groupby(table_id, keys, values, np.array([-1]),
                                tie_break="hash")
        assert a[0] == b[0]
        assert a[0] in keys

    def test_unknown_tie_break_rejected(self):
        with pytest.raises(ValueError):
            best_labels_groupby(
                np.array([0]), np.array([1]), np.array([1.0]),
                np.array([-1]), tie_break="random",
            )

    def test_empty_tables_get_fallback(self):
        out = best_labels_groupby(
            np.array([1]), np.array([5]), np.array([1.0]),
            np.array([10, 11, 12]),
        )
        assert out.tolist() == [10, 5, 12]

    def test_weights_accumulate_across_duplicate_keys(self):
        table_id = np.array([0, 0, 0])
        keys = np.array([4, 9, 4])
        values = np.array([1.0, 1.5, 1.0])  # 4 totals 2.0 > 9's 1.5
        out = best_labels_groupby(table_id, keys, values, np.array([-1]))
        assert out[0] == 4


@pytest.mark.parametrize("engine_cls", ENGINE_CLASSES)
class TestMove:
    def test_first_move_changes_vertices(self, two_cliques, engine_cls):
        config = LPAConfig()
        engine = engine_cls(two_cliques, config)
        labels = np.arange(two_cliques.num_vertices, dtype=VERTEX_DTYPE)
        frontier = Frontier(two_cliques)
        out = engine.move(labels, frontier, pick_less=True, iteration=0)
        assert out.changed > 0
        assert out.processed == two_cliques.num_vertices
        assert np.array_equal(np.sort(out.changed_vertices),
                              np.flatnonzero(labels != np.arange(labels.shape[0])))

    def test_pick_less_only_lowers_labels(self, small_web, engine_cls):
        config = LPAConfig()
        engine = engine_cls(small_web, config)
        labels = np.arange(small_web.num_vertices, dtype=VERTEX_DTYPE)
        before = labels.copy()
        frontier = Frontier(small_web)
        engine.move(labels, frontier, pick_less=True, iteration=0)
        assert np.all(labels <= before)

    def test_processed_vertices_marked(self, star, engine_cls):
        config = LPAConfig()
        engine = engine_cls(star, config)
        labels = np.arange(star.num_vertices, dtype=VERTEX_DTYPE)
        frontier = Frontier(star)
        out = engine.move(labels, frontier, pick_less=False, iteration=0)
        # Changed vertices re-marked their neighbours; everything else done.
        assert frontier.num_active() <= star.num_vertices

    def test_move_without_changes_empties_frontier(self, triangle, engine_cls):
        config = LPAConfig()
        engine = engine_cls(triangle, config)
        labels = np.zeros(3, dtype=VERTEX_DTYPE)  # already converged
        frontier = Frontier(triangle)
        out = engine.move(labels, frontier, pick_less=False, iteration=0)
        assert out.changed == 0
        assert frontier.num_active() == 0

    def test_processed_counts_retired_isolated_vertices(self, engine_cls):
        # Triangle 0-1-2 plus isolated vertices 3 and 4.  Degree-0
        # vertices are retired from the frontier without entering a
        # kernel wave, but they were still handed to the move and must
        # show up in its processed-vertex accounting.
        graph = from_edges(
            np.array([0, 1, 2]), np.array([1, 2, 0]), num_vertices=5
        )
        engine = engine_cls(graph, LPAConfig())
        labels = np.arange(5, dtype=VERTEX_DTYPE)
        frontier = Frontier(graph)
        out = engine.move(labels, frontier, pick_less=False, iteration=0)
        assert out.processed == 5
        assert out.counters.vertices_processed == 5
        active = frontier.active_vertices()
        assert 3 not in active and 4 not in active


class TestValueDtypeFidelity:
    """``config.value_dtype`` reaches the accumulator (Figure-5 ablation).

    The discriminating instance: label B's weight arrives split over two
    edges as ``2**24`` and ``2.5``; label A's as a single ``2**24 + 2``.
    A float32 accumulator rounds the only inexact sum, ``2**24 + 2.5``,
    down to ``2**24 + 2`` (the ulp there is 2), tying the labels; float64
    keeps the 0.5 margin and B wins outright.  Two-term sums make the
    rounding independent of summation order, so the fp32/fp64 split is a
    property of the configured precision, not of numpy's reduction
    blocking.
    """

    @pytest.mark.parametrize(
        "accum_dtype,expected", [(np.float32, 100), (np.float64, 300)]
    )
    def test_groupby_accumulates_in_configured_dtype(
        self, accum_dtype, expected
    ):
        # Regression for the Figure-5 fp32 ablation: this used to
        # accumulate in float64 unconditionally, returning 300 for both.
        big = float(2**24)
        out = best_labels_groupby(
            np.array([0, 0, 0]),
            np.array([300, 300, 100]),
            np.array([big, 2.5, big + 2.0]),
            np.array([-1]),
            accum_dtype=accum_dtype,
        )
        assert out[0] == expected

    @pytest.mark.parametrize("engine_cls", ENGINE_CLASSES)
    @pytest.mark.parametrize(
        "value_dtype,expected", [(np.float32, 10), (np.float64, 20)]
    )
    def test_engines_agree_on_dtype_sensitive_vote(
        self, engine_cls, value_dtype, expected
    ):
        # Cross-engine parity: both engines resolve the same instance the
        # same way under each precision.  In the float32 tie the group-by
        # prefers the smallest label and the hashtable the lowest slot
        # holding the max; label ids 10 < 20 are chosen so the two rules
        # coincide for this table size.
        big = float(2**24)
        graph = from_edges(
            np.zeros(3, dtype=np.int64),
            np.arange(1, 4),
            np.array([big, 2.5, big + 2.0]),
        )
        engine = engine_cls(graph, LPAConfig(value_dtype=value_dtype))
        labels = np.array([999, 20, 20, 10], dtype=VERTEX_DTYPE)
        frontier = Frontier(graph)
        # Only vertex 0 votes; its neighbours keep their labels fixed.
        frontier.mark_processed(np.arange(1, 4))
        engine.move(labels, frontier, pick_less=False, iteration=0)
        assert labels[0] == expected
