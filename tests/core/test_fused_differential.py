"""Differential suite for the fused-sweep / compact-layout hot paths.

PR 9's contract is that none of its performance levers change *what* is
computed:

* ``fused_sweep`` replaces the clear → insert → max hashtable sweeps with
  one fused kernel (tables start clean, CAS-claimed slots are scrubbed
  after the max) — labels, per-iteration stats, and every kernel counter
  must match the unfused path bit for bit;
* ``compact_layout`` shrinks offsets/targets/labels to 32 bits when the
  graph fits — same values, half the bytes;
* ``persistent_kernel`` only re-prices launches in the cost model — the
  partition itself must be untouched;
* ``degree_renumber`` is the one *documented* exception: labels are a
  renaming of the input ids, so it is tested for validity and
  determinism, not bitwise equality.

These tests pin that contract across both engines, every probing
strategy, and arena on/off, and extend the steady-state ``tracemalloc``
proof to the fused hashtable path.
"""

import tracemalloc

import numpy as np
import pytest

from repro.core.config import LPAConfig
from repro.core.lpa import make_engine, nu_lpa
from repro.core.pruning import Frontier
from repro.errors import ConfigurationError
from repro.graph.generators import rmat_graph, watts_strogatz, web_graph
from repro.hashing.probing import ProbeStrategy
from repro.types import VERTEX_DTYPE

ENGINES = ["vectorized", "hashtable"]


def _run(graph, engine, **config_kwargs):
    return nu_lpa(
        graph,
        LPAConfig(**config_kwargs),
        engine=engine,
        warn_on_no_convergence=False,
    )


def _assert_identical(a, b, context):
    assert np.array_equal(a.labels, b.labels), context
    assert len(a.iterations) == len(b.iterations), context
    for it_a, it_b in zip(a.iterations, b.iterations):
        assert it_a.changed == it_b.changed, context
        assert it_a.processed == it_b.processed, context
        assert it_a.reverted == it_b.reverted, context
        assert it_a.counters.as_dict() == it_b.counters.as_dict(), context


class TestFusedSweepDifferential:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("arena", [True, False])
    def test_bit_identical_labels_and_counters(self, small_web, engine, arena):
        fused = _run(small_web, engine, fused_sweep=True, workspace_arena=arena)
        plain = _run(small_web, engine, fused_sweep=False, workspace_arena=arena)
        _assert_identical(fused, plain, f"{engine}, arena={arena}")

    @pytest.mark.parametrize("probing", list(ProbeStrategy))
    def test_bit_identical_across_probing_strategies(self, small_social, probing):
        fused = _run(small_social, "hashtable", fused_sweep=True, probing=probing)
        plain = _run(small_social, "hashtable", fused_sweep=False, probing=probing)
        _assert_identical(fused, plain, probing.value)

    def test_dense_tables_take_segmented_branch(self):
        # Uniform-degree ring lattice: occupancy is high enough that the
        # adaptive heuristic prefers segmented-max + claimed-slot scrub
        # over the packed sort.  Both fused branches must still agree
        # with the unfused path.
        graph = watts_strogatz(2000, 10, 0.05, seed=5)
        fused = _run(graph, "hashtable", fused_sweep=True)
        plain = _run(graph, "hashtable", fused_sweep=False)
        _assert_identical(fused, plain, "watts_strogatz dense branch")

    def test_scalar_tail_graph(self):
        # Heavy-tailed graph small enough that waves finish in the scalar
        # tail (pending <= _SCALAR_TAIL_MAX) almost immediately.
        graph = rmat_graph(6, 4, seed=3)
        fused = _run(graph, "hashtable", fused_sweep=True)
        plain = _run(graph, "hashtable", fused_sweep=False)
        _assert_identical(fused, plain, "scalar tail")


class TestCompactLayoutDifferential:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_bit_identical_labels_and_counters(self, small_web, engine):
        compact = _run(small_web, engine, compact_layout=True)
        wide = _run(small_web, engine, compact_layout=False)
        _assert_identical(compact, wide, engine)
        # The public result is always wide, whatever ran internally.
        assert compact.labels.dtype == VERTEX_DTYPE
        assert wide.labels.dtype == VERTEX_DTYPE

    @pytest.mark.parametrize("engine", ENGINES)
    def test_full_matrix_corner(self, small_social, engine):
        # Cross-check the extreme corners of the fused x compact matrix.
        fast = _run(small_social, engine, fused_sweep=True, compact_layout=True)
        slow = _run(small_social, engine, fused_sweep=False, compact_layout=False)
        _assert_identical(fast, slow, engine)

    def test_initial_labels_outside_int32_fall_back_to_wide(self, triangle):
        big = np.full(3, 2**40, dtype=VERTEX_DTYPE)
        result = nu_lpa(
            triangle,
            LPAConfig(compact_layout=True),
            initial_labels=big,
            warn_on_no_convergence=False,
        )
        assert result.labels.dtype == VERTEX_DTYPE


class TestPersistentKernelDifferential:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_labels_identical_launches_amortised(self, small_web, engine):
        on = _run(small_web, engine, persistent_kernel=True)
        off = _run(small_web, engine, persistent_kernel=False)
        assert np.array_equal(on.labels, off.labels)
        on_c = on.total_counters
        off_c = off.total_counters
        # Same work, fewer launches: only the first launch per kind counts.
        assert on_c.waves == off_c.waves
        assert on_c.sectors_read == off_c.sectors_read
        assert on_c.launches < off_c.launches

        from repro.perf.model import estimate_gpu_seconds

        assert estimate_gpu_seconds(on_c) < estimate_gpu_seconds(off_c)


class TestDegreeRenumber:
    def test_valid_partition_and_determinism(self, small_web):
        a = _run(small_web, "hashtable", degree_renumber=True)
        b = _run(small_web, "hashtable", degree_renumber=True)
        assert np.array_equal(a.labels, b.labels)
        assert a.labels.dtype == VERTEX_DTYPE
        assert a.labels.min() >= 0
        assert a.labels.max() < small_web.num_vertices
        # The renaming must preserve community quality, not just validity.
        from repro.metrics.modularity import modularity

        base = _run(small_web, "hashtable")
        q_renum = modularity(small_web, a.labels)
        q_base = modularity(small_web, base.labels)
        assert q_renum > 0.5 * q_base > 0

    def test_rejects_initial_labels(self, small_web):
        with pytest.raises(ConfigurationError):
            nu_lpa(
                small_web,
                LPAConfig(degree_renumber=True),
                initial_labels=np.zeros(small_web.num_vertices, VERTEX_DTYPE),
            )

    def test_initial_active_is_remapped(self, small_web):
        active = np.zeros(small_web.num_vertices, dtype=bool)
        active[: small_web.num_vertices // 4] = True
        result = nu_lpa(
            small_web,
            LPAConfig(degree_renumber=True),
            initial_active=active,
            warn_on_no_convergence=False,
        )
        assert result.labels.shape[0] == small_web.num_vertices


class TestFusedSteadyStateAllocations:
    """The fused sweep must stay allocation-free at the fixed point."""

    _SLACK_BYTES = 16384

    def test_fused_hashtable_steady_state(self):
        graph = web_graph(1200, avg_degree=6, seed=3).with_compact_layout()
        config = LPAConfig(pruning=False, fused_sweep=True)
        eng = make_engine(graph, config, "hashtable")
        frontier = Frontier(graph, enabled=False, arena=eng.arena)
        labels = np.arange(graph.num_vertices, dtype=VERTEX_DTYPE)
        for it in range(64):
            outcome = eng.move(
                labels, frontier, pick_less=config.pick_less_active(it),
                iteration=it,
            )
            if outcome.changed == 0:
                break
        else:
            pytest.fail("workload did not converge while warming the arena")

        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        for it in range(3):
            outcome = eng.move(
                labels, frontier, pick_less=config.pick_less_active(it),
                iteration=it,
            )
            assert outcome.changed == 0
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak - before < self._SLACK_BYTES, (
            f"fused steady-state iterations allocated {peak - before} bytes"
        )
