"""Tests for the CSR edge-gather utility."""

import numpy as np

from repro.core._gather import gather_edges


class TestGatherEdges:
    def test_full_graph(self, triangle):
        g = gather_edges(triangle, np.arange(3, dtype=np.int64))
        assert g.num_edges == triangle.num_edges
        # Edge indices enumerate the CSR arcs exactly once, in order.
        assert np.array_equal(g.edge_index, np.arange(triangle.num_edges))

    def test_table_ids_are_wave_local(self, star):
        g = gather_edges(star, np.array([3, 7], dtype=np.int64))
        assert set(np.unique(g.table_id)) == {0, 1}
        assert g.num_edges == 2  # leaves have degree 1

    def test_edge_ranks_restart_per_vertex(self, star):
        g = gather_edges(star, np.array([0], dtype=np.int64))
        assert np.array_equal(g.edge_rank, np.arange(8))

    def test_targets_match_neighbors(self, two_cliques):
        vertices = np.array([2, 9], dtype=np.int64)
        g = gather_edges(two_cliques, vertices)
        got = two_cliques.targets[g.edge_index]
        expected = np.concatenate(
            [two_cliques.neighbors(2), two_cliques.neighbors(9)]
        )
        assert np.array_equal(got, expected)

    def test_empty_vertex_set(self, triangle):
        g = gather_edges(triangle, np.empty(0, dtype=np.int64))
        assert g.num_edges == 0

    def test_all_zero_degree(self):
        from repro.graph.build import from_edges

        g = from_edges(np.array([0]), np.array([1]), num_vertices=4)
        gathered = gather_edges(g, np.array([2, 3], dtype=np.int64))
        assert gathered.num_edges == 0
