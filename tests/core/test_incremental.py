"""Tests for warm-start incremental re-detection."""

import numpy as np
import pytest

from repro.core import nu_lpa, nu_lpa_incremental
from repro.core.incremental import affected_vertices
from repro.errors import ConfigurationError
from repro.graph.build import from_edges
from repro.graph.generators import web_graph
from repro.metrics import modularity


def _add_edges(graph, new_src, new_dst):
    src = np.concatenate([graph.source_ids(), np.asarray(new_src)])
    dst = np.concatenate([graph.targets, np.asarray(new_dst)])
    w = np.concatenate(
        [graph.weights, np.ones(len(new_src), dtype=np.float32)]
    )
    return from_edges(src, dst, w, num_vertices=graph.num_vertices,
                      symmetrize=True)


class TestAffectedVertices:
    def test_includes_touched_and_neighbors(self, star):
        out = affected_vertices(star, np.array([1]))
        assert 1 in out and 0 in out  # leaf and hub

    def test_hops_expand(self, path6):
        one = affected_vertices(path6, np.array([0]), hops=1)
        two = affected_vertices(path6, np.array([0]), hops=2)
        assert set(one.tolist()) == {0, 1}
        assert set(two.tolist()) == {0, 1, 2}

    def test_out_of_range_rejected(self, triangle):
        with pytest.raises(ConfigurationError):
            affected_vertices(triangle, np.array([9]))

    def test_zero_hops(self, star):
        out = affected_vertices(star, np.array([3]), hops=0)
        assert out.tolist() == [3]

    def test_negative_hops_rejected(self, star):
        with pytest.raises(ConfigurationError):
            affected_vertices(star, np.array([0]), hops=-1)

    def test_duplicate_touched_deduped(self, star):
        out = affected_vertices(star, np.array([1, 1, 1]), hops=0)
        assert out.tolist() == [1]

    def test_empty_touched(self, star):
        out = affected_vertices(star, np.array([], dtype=np.int64))
        assert out.shape == (0,) and out.dtype == np.int64


def _random_graph(rng, n, m, *, self_loops=True, isolated=True):
    """Random multigraph with self-loops and isolated vertices baked in.

    ``num_vertices=n`` with edges drawn from a smaller id range leaves the
    top ids isolated; appending ``(v, v)`` pairs adds self-loops.
    """
    hi = max(1, int(n * 0.8)) if isolated else n
    src = rng.integers(0, hi, size=m)
    dst = rng.integers(0, hi, size=m)
    if self_loops:
        loops = rng.integers(0, hi, size=max(1, m // 20))
        src = np.concatenate([src, loops])
        dst = np.concatenate([dst, loops])
    return from_edges(src, dst, num_vertices=n, symmetrize=True)


class TestAffectedVerticesDifferential:
    """The vectorized frontier expansion against the plain-BFS oracle."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("hops", [0, 1, 2, 3])
    def test_matches_reference_on_random_graphs(self, seed, hops):
        from repro.core.incremental import _affected_vertices_reference

        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 120))
        m = int(rng.integers(0, 4 * n))
        graph = _random_graph(rng, n, m)
        touched = rng.integers(0, n, size=int(rng.integers(1, 1 + n // 2)))
        fast = affected_vertices(graph, touched, hops=hops)
        slow = _affected_vertices_reference(graph, touched, hops=hops)
        assert np.array_equal(fast, slow)

    def test_matches_reference_on_isolated_touched(self):
        from repro.core.incremental import _affected_vertices_reference

        rng = np.random.default_rng(0)
        graph = _random_graph(rng, 50, 60)  # top ids have degree 0
        touched = np.array([49, 48])
        fast = affected_vertices(graph, touched, hops=3)
        slow = _affected_vertices_reference(graph, touched, hops=3)
        assert np.array_equal(fast, slow)
        assert set(fast.tolist()) == {48, 49}

    def test_self_loop_does_not_expand_frontier(self):
        from repro.core.incremental import _affected_vertices_reference

        graph = from_edges(
            np.array([0, 1]), np.array([0, 2]), num_vertices=3,
            symmetrize=True,
        )
        fast = affected_vertices(graph, np.array([0]), hops=2)
        slow = _affected_vertices_reference(graph, np.array([0]), hops=2)
        assert np.array_equal(fast, slow)
        assert fast.tolist() == [0]

    def test_saturates_whole_component(self):
        from repro.core.incremental import _affected_vertices_reference

        rng = np.random.default_rng(3)
        graph = _random_graph(rng, 80, 300, isolated=False)
        fast = affected_vertices(graph, np.array([0]), hops=80)
        slow = _affected_vertices_reference(graph, np.array([0]), hops=80)
        assert np.array_equal(fast, slow)

    def test_vectorized_beats_python_bfs_on_large_frontier(self):
        """The hot-path fix: CSR slicing must outrun per-vertex Python."""
        import time

        from repro.core.incremental import _affected_vertices_reference

        graph = web_graph(20_000, avg_degree=12, seed=4)
        rng = np.random.default_rng(4)
        touched = rng.integers(0, graph.num_vertices, size=2_000)

        t0 = time.perf_counter()
        fast = affected_vertices(graph, touched, hops=2)
        fast_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        slow = _affected_vertices_reference(graph, touched, hops=2)
        slow_s = time.perf_counter() - t0

        assert np.array_equal(fast, slow)
        # Generous 2x bar (the observed gap is an order of magnitude);
        # guards against regressing to per-vertex Python iteration.
        assert fast_s * 2 < slow_s, (
            f"vectorized {fast_s:.4f}s vs reference {slow_s:.4f}s"
        )


class TestIncremental:
    def test_small_update_small_work(self):
        g = web_graph(3000, avg_degree=8, seed=9)
        base = nu_lpa(g, engine="hashtable")

        # Insert one intra-graph edge and re-detect incrementally.
        g2 = _add_edges(g, [0], [1])
        inc = nu_lpa_incremental(
            g2, base.labels, np.array([0, 1]), engine="hashtable"
        )
        fresh = nu_lpa(g2, engine="hashtable")
        # Warm start processes far fewer vertices than a fresh run.
        assert (
            inc.total_counters.vertices_processed
            < fresh.total_counters.vertices_processed / 3
        )

    def test_quality_preserved(self):
        g = web_graph(3000, avg_degree=8, seed=9)
        base = nu_lpa(g)
        g2 = _add_edges(g, [5, 17], [6, 30])
        inc = nu_lpa_incremental(g2, base.labels, np.array([5, 6, 17, 30]))
        fresh = nu_lpa(g2)
        assert modularity(g2, inc.labels) > modularity(g2, fresh.labels) - 0.05

    def test_untouched_region_keeps_labels(self, two_cliques):
        base = nu_lpa(two_cliques)
        # Touch only the first clique.
        inc = nu_lpa_incremental(
            two_cliques, base.labels, np.array([0])
        )
        # The second clique (untouched, far away) is label-stable.
        assert np.array_equal(inc.labels[5:], base.labels[5:])

    def test_algorithm_name_marked(self, two_cliques):
        base = nu_lpa(two_cliques)
        inc = nu_lpa_incremental(two_cliques, base.labels, np.array([0]))
        assert "incremental" in inc.algorithm

    def test_label_length_mismatch_rejected(self, two_cliques, triangle):
        base = nu_lpa(triangle)
        with pytest.raises(ConfigurationError):
            nu_lpa_incremental(two_cliques, base.labels, np.array([0]))

    def test_initial_active_out_of_range(self, triangle):
        with pytest.raises(ConfigurationError):
            nu_lpa(triangle, initial_active=np.array([10]))


class TestRak:
    def test_two_cliques(self, two_cliques):
        from repro.baselines import rak

        r = rak(two_cliques, seed=0)
        assert r.converged
        assert r.num_communities() == 2

    def test_planted_quality(self, planted):
        from repro.baselines import rak
        from repro.metrics import normalized_mutual_information

        g, truth = planted
        r = rak(g, seed=0)
        # RAK sometimes merges planted blocks (its known coarsening
        # tendency — the "monster community" literature); agreement stays
        # well above chance regardless of seed.
        assert normalized_mutual_information(truth, r.labels) > 0.6

    def test_shuffle_differs_by_seed(self, small_road):
        from repro.baselines import rak

        a = rak(small_road, seed=0)
        b = rak(small_road, seed=1)
        # Different orders usually yield different (valid) partitions.
        assert a.converged and b.converged

    def test_converges_on_symmetric_ring(self):
        """RAK's shuffle is its symmetry breaker: the ring that defeats
        synchronous LPA converges under random async order."""
        from repro.baselines import rak
        from repro.graph.generators import watts_strogatz

        ring = watts_strogatz(64, 2, 0.0, seed=1)
        r = rak(ring, seed=0)
        assert r.converged


class TestAffectedVerticesEdgeCases:
    def _two_paths(self):
        # Two disjoint 3-vertex paths: 0-1-2 and 3-4-5.
        return from_edges([0, 1, 3, 4], [1, 2, 4, 5], num_vertices=6,
                          symmetrize=True)

    def test_frontier_never_crosses_components(self):
        g = self._two_paths()
        out = affected_vertices(g, np.array([0]), hops=5)
        assert set(out.tolist()) == {0, 1, 2}

    def test_multi_hop_union_across_components(self):
        g = self._two_paths()
        out = affected_vertices(g, np.array([0, 3]), hops=2)
        assert set(out.tolist()) == {0, 1, 2, 3, 4, 5}

    def test_self_loop_does_not_inflate_frontier(self):
        g = from_edges([0, 0], [0, 1], num_vertices=3, symmetrize=True)
        out = affected_vertices(g, np.array([0]), hops=2)
        assert set(out.tolist()) == {0, 1}
        assert len(out) == len(set(out.tolist()))  # no duplicates

    def test_negative_touched_rejected(self, triangle):
        with pytest.raises(ConfigurationError):
            affected_vertices(triangle, np.array([-1]))

    def test_negative_hops_rejected(self, triangle):
        with pytest.raises(ConfigurationError):
            affected_vertices(triangle, np.array([0]), hops=-1)

    def test_empty_touched_empty_frontier(self, triangle):
        out = affected_vertices(triangle, np.array([], dtype=np.int64), hops=3)
        assert out.shape[0] == 0


class TestIncrementalFastPath:
    def test_empty_touched_returns_previous_labels(self, two_cliques):
        labels = nu_lpa(two_cliques).labels
        result = nu_lpa_incremental(
            two_cliques, labels, np.array([], dtype=np.int64)
        )
        assert result.converged
        assert result.iterations == []
        assert np.array_equal(result.labels, labels)
        assert result.labels is not labels  # a copy, not an alias
        assert result.algorithm == "nu-lpa-incremental[vectorized]"

    def test_empty_touched_still_validates_engine(self, two_cliques):
        labels = nu_lpa(two_cliques).labels
        with pytest.raises(ConfigurationError):
            nu_lpa_incremental(
                two_cliques, labels, np.array([], dtype=np.int64),
                engine="cuda",
            )

    def test_negative_hops_rejected(self, two_cliques):
        labels = nu_lpa(two_cliques).labels
        with pytest.raises(ConfigurationError):
            nu_lpa_incremental(two_cliques, labels, np.array([0]), hops=-1)

    def test_out_of_range_touched_rejected(self, two_cliques):
        labels = nu_lpa(two_cliques).labels
        with pytest.raises(ConfigurationError):
            nu_lpa_incremental(two_cliques, labels, np.array([99]))
