"""Tests for the degree partitioner."""

import numpy as np

from repro.core.kernels import partition_by_degree
from repro.gpu.kernel import KernelKind


class TestPartition:
    def test_split_by_threshold(self, star):
        vertices = np.arange(star.num_vertices, dtype=np.int64)
        part = partition_by_degree(vertices, star.degrees, 2)
        assert part.high.tolist() == [0]  # the hub
        assert len(part.low) == 8

    def test_zero_threshold_all_block(self, star):
        vertices = np.arange(star.num_vertices, dtype=np.int64)
        part = partition_by_degree(vertices, star.degrees, 0)
        assert part.low.shape[0] == 0
        assert part.total == star.num_vertices

    def test_huge_threshold_all_thread(self, star):
        vertices = np.arange(star.num_vertices, dtype=np.int64)
        part = partition_by_degree(vertices, star.degrees, 10**6)
        assert part.high.shape[0] == 0

    def test_subset_of_vertices(self, star):
        part = partition_by_degree(np.array([0, 3]), star.degrees, 2)
        assert part.total == 2

    def test_order_preserved(self, small_web):
        vertices = np.arange(small_web.num_vertices, dtype=np.int64)
        part = partition_by_degree(vertices, small_web.degrees, 32)
        assert np.all(np.diff(part.low) > 0)
        assert np.all(np.diff(part.high) > 0)

    def test_empty_input(self, star):
        part = partition_by_degree(np.empty(0, dtype=np.int64), star.degrees, 32)
        assert part.total == 0

    def test_for_kind(self, star):
        vertices = np.arange(star.num_vertices, dtype=np.int64)
        part = partition_by_degree(vertices, star.degrees, 2)
        assert part.for_kind(KernelKind.BLOCK_PER_VERTEX).tolist() == [0]
        assert len(part.for_kind(KernelKind.THREAD_PER_VERTEX)) == 8
