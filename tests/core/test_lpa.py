"""End-to-end tests of the ν-LPA driver."""

import numpy as np
import pytest

from repro.core import LPAConfig, nu_lpa
from repro.errors import ConfigurationError
from repro.graph.build import from_edges
from repro.graph.generators import watts_strogatz
from repro.metrics import modularity, normalized_mutual_information


ENGINES = ["vectorized", "hashtable"]


class TestBasics:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_two_cliques_found(self, two_cliques, engine):
        r = nu_lpa(two_cliques, engine=engine)
        labels = r.labels
        # Each clique ends in one community; communities differ.
        assert np.unique(labels[:5]).shape[0] == 1
        assert np.unique(labels[5:]).shape[0] == 1
        assert labels[0] != labels[5]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_labels_are_valid_vertex_ids(self, small_web, engine):
        r = nu_lpa(small_web, engine=engine)
        assert r.labels.min() >= 0
        assert r.labels.max() < small_web.num_vertices

    @pytest.mark.parametrize("engine", ENGINES)
    def test_empty_graph(self, engine):
        g = from_edges(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        r = nu_lpa(g, engine=engine)
        assert r.labels.shape[0] == 0
        assert r.converged

    @pytest.mark.parametrize("engine", ENGINES)
    def test_isolated_vertices_keep_own_label(self, engine):
        g = from_edges(np.array([0]), np.array([1]), num_vertices=4)
        r = nu_lpa(g, engine=engine)
        assert r.labels[2] == 2 and r.labels[3] == 3

    def test_unknown_engine_rejected(self, triangle):
        with pytest.raises(ConfigurationError):
            nu_lpa(triangle, engine="cuda")

    def test_bad_initial_labels_rejected(self, triangle):
        with pytest.raises(ConfigurationError):
            nu_lpa(triangle, initial_labels=np.array([0]))

    def test_initial_labels_used(self, two_cliques):
        init = np.zeros(10, dtype=np.int64)
        r = nu_lpa(two_cliques, initial_labels=init)
        # Everything starts merged; nothing can split in LPA.
        assert r.num_communities() == 1

    def test_deterministic(self, small_web):
        a = nu_lpa(small_web, engine="hashtable")
        b = nu_lpa(small_web, engine="hashtable")
        assert np.array_equal(a.labels, b.labels)


class TestConvergence:
    def test_respects_max_iterations(self, small_web):
        r = nu_lpa(small_web, LPAConfig(max_iterations=3))
        assert r.num_iterations <= 3

    def test_no_convergence_check_during_pick_less(self, two_cliques):
        # With pl_period=1, PL is active every iteration, so the tolerance
        # test never fires and the driver runs to the iteration cap.
        r = nu_lpa(two_cliques, LPAConfig(pl_period=1, max_iterations=5))
        assert r.num_iterations == 5
        assert not r.converged

    def test_swap_pathology_without_mitigation(self):
        # A perfectly symmetric ring with synchronous waves oscillates.
        ring = watts_strogatz(64, 2, 0.0, seed=1)
        r = nu_lpa(ring, LPAConfig(pl_period=None), engine="hashtable")
        assert not r.converged

    def test_changed_history_recorded(self, small_web):
        r = nu_lpa(small_web)
        assert r.changed_history.shape[0] == r.num_iterations
        assert r.changed_history[0] > 0

    def test_warns_on_no_convergence(self):
        from repro.errors import ConvergenceWarning

        ring = watts_strogatz(64, 2, 0.0, seed=1)
        with pytest.warns(ConvergenceWarning):
            nu_lpa(
                ring, LPAConfig(pl_period=None), warn_on_no_convergence=True
            )


class TestQuality:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_planted_partition_recovered(self, planted, engine):
        g, truth = planted
        r = nu_lpa(g, engine=engine)
        assert normalized_mutual_information(truth, r.labels) > 0.7

    def test_engines_agree_on_quality(self, planted):
        g, _ = planted
        q = {
            e: modularity(g, nu_lpa(g, engine=e).labels) for e in ENGINES
        }
        assert abs(q["vectorized"] - q["hashtable"]) < 0.1

    def test_pl4_beats_pl1(self, small_web):
        q1 = modularity(small_web, nu_lpa(small_web, LPAConfig(pl_period=1)).labels)
        q4 = modularity(small_web, nu_lpa(small_web, LPAConfig(pl_period=4)).labels)
        assert q4 > q1

    def test_cross_check_produces_valid_result(self, small_web):
        r = nu_lpa(small_web, LPAConfig(pl_period=None, cc_period=1))
        assert modularity(small_web, r.labels) > 0.3


class TestCounters:
    def test_hashtable_engine_counts_work(self, small_web):
        r = nu_lpa(small_web, engine="hashtable")
        c = r.total_counters
        assert c.edges_scanned > 0
        assert c.probes >= c.edges_scanned  # at least one probe per entry
        assert c.launches >= r.num_iterations
        assert c.sectors_read > 0

    def test_pruning_reduces_scanned_edges(self, small_web):
        on = nu_lpa(small_web, LPAConfig(pruning=True), engine="hashtable")
        off = nu_lpa(small_web, LPAConfig(pruning=False), engine="hashtable")
        assert on.total_counters.edges_scanned < off.total_counters.edges_scanned

    def test_atomics_only_from_block_kernel(self, small_road):
        # Road networks have max degree < 32: everything runs in the
        # thread-per-vertex kernel, which needs no atomics.
        r = nu_lpa(small_road, engine="hashtable")
        assert r.total_counters.atomic_add == 0
        assert r.total_counters.atomic_cas == 0

    def test_result_metadata(self, small_web):
        r = nu_lpa(small_web, engine="hashtable")
        assert r.algorithm == "nu-lpa[hashtable]"
        assert r.wall_seconds > 0
        assert r.config is not None


class TestWeightedGraphs:
    def test_heavier_edge_wins(self):
        """A vertex between two groups follows the heavier connection."""
        from repro.graph.build import from_edges

        # Vertex 2 bridges cliques {0,1} and {3,4}; its edge into the
        # right group is 5x heavier.
        src = np.array([0, 0, 1, 3, 2, 2])
        dst = np.array([1, 2, 2, 4, 3, 4])
        w = np.array([1, 1, 1, 1, 5, 5], dtype=np.float32)
        g = from_edges(src, dst, w)
        for engine in ENGINES:
            r = nu_lpa(g, engine=engine)
            assert r.labels[2] == r.labels[3] == r.labels[4]
            assert r.labels[0] != r.labels[2]

    def test_weighted_engines_agree(self):
        from repro.graph.generators import web_graph
        from repro.graph.build import from_edges

        base = web_graph(800, avg_degree=6, seed=4)
        rng = np.random.default_rng(0)
        weights = rng.uniform(0.5, 4.0, size=base.num_edges).astype(np.float32)
        # Rebuild with random symmetric weights (max-combine keeps symmetry).
        g = from_edges(base.source_ids(), base.targets, weights,
                       num_vertices=base.num_vertices)
        q = {
            e: modularity(g, nu_lpa(g, engine=e).labels) for e in ENGINES
        }
        assert abs(q["vectorized"] - q["hashtable"]) < 0.12


class TestConvergenceWarningDefault:
    """The warning must be emitted *by default*, not only on request, and
    the result must carry the same information programmatically."""

    def test_warns_by_default(self):
        from repro.errors import ConvergenceWarning

        ring = watts_strogatz(64, 2, 0.0, seed=1)
        with pytest.warns(ConvergenceWarning, match="max_iterations"):
            r = nu_lpa(ring, LPAConfig(pl_period=None))
        assert r.converged is False

    def test_opt_out_suppresses(self):
        import warnings

        ring = watts_strogatz(64, 2, 0.0, seed=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            r = nu_lpa(
                ring, LPAConfig(pl_period=None), warn_on_no_convergence=False
            )
        assert r.converged is False

    def test_converged_run_does_not_warn(self, small_web):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            r = nu_lpa(small_web)
        assert r.converged is True
