"""Tests for the unprocessed-vertex frontier."""

import numpy as np

from repro.core.pruning import Frontier


class TestFrontier:
    def test_starts_all_active(self, star):
        f = Frontier(star)
        assert f.num_active() == star.num_vertices

    def test_mark_processed(self, star):
        f = Frontier(star)
        f.mark_processed(np.array([0, 1]))
        assert f.num_active() == star.num_vertices - 2
        active = f.active_vertices()
        assert 0 not in active and 1 not in active

    def test_neighbor_marking_reactivates(self, star):
        f = Frontier(star)
        f.mark_processed(np.arange(star.num_vertices))
        arcs = f.mark_neighbors_unprocessed(np.array([0]))  # the hub
        assert arcs == 8
        assert f.num_active() == 8  # all leaves reactivated, hub still done

    def test_neighbor_marking_empty(self, star):
        f = Frontier(star)
        assert f.mark_neighbors_unprocessed(np.empty(0, dtype=np.int64)) == 0

    def test_disabled_pruning_always_active(self, star):
        f = Frontier(star, enabled=False)
        f.mark_processed(np.arange(star.num_vertices))
        assert f.num_active() == star.num_vertices
        assert f.active_vertices().shape[0] == star.num_vertices

    def test_flags_dtype_is_uint8(self, star):
        assert Frontier(star).flags.dtype == np.uint8

    def test_active_vertices_sorted(self, small_road):
        f = Frontier(small_road)
        f.mark_processed(np.array([5, 2, 9]))
        active = f.active_vertices()
        assert np.all(np.diff(active) > 0)
