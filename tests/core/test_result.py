"""Tests for the LPAResult container."""

import numpy as np

from repro.core.result import IterationStats, LPAResult
from repro.gpu.metrics import KernelCounters


def _result(changes):
    iterations = [
        IterationStats(
            iteration=i, changed=c, processed=10, pick_less=(i % 4 == 0),
            cross_check=False, counters=KernelCounters(probes=c),
        )
        for i, c in enumerate(changes)
    ]
    return LPAResult(
        labels=np.array([0, 0, 1]),
        iterations=iterations,
        converged=True,
    )


class TestLPAResult:
    def test_num_iterations(self):
        assert _result([5, 3, 1]).num_iterations == 3

    def test_total_counters_sum(self):
        r = _result([5, 3, 1])
        assert r.total_counters.probes == 9

    def test_changed_history(self):
        r = _result([5, 3, 1])
        assert r.changed_history.tolist() == [5, 3, 1]

    def test_num_communities(self):
        assert _result([1]).num_communities() == 2

    def test_empty_run(self):
        r = LPAResult(labels=np.array([]), iterations=[], converged=True)
        assert r.num_iterations == 0
        assert r.total_counters == KernelCounters()
        assert r.changed_history.shape[0] == 0

    def test_iteration_stats_fields(self):
        r = _result([4])
        stat = r.iterations[0]
        assert stat.pick_less  # iteration 0, period 4
        assert stat.reverted == 0
