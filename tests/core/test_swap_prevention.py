"""Tests for Pick-Less filtering and Cross-Check reverts."""

import numpy as np

from repro.core.swap_prevention import cross_check_revert, pick_less_filter


class TestPickLess:
    def test_inactive_allows_any_change(self):
        current = np.array([5, 5, 5])
        proposed = np.array([3, 5, 9])
        mask = pick_less_filter(current, proposed, pick_less=False)
        assert mask.tolist() == [True, False, True]

    def test_active_blocks_larger_labels(self):
        current = np.array([5, 5, 5])
        proposed = np.array([3, 5, 9])
        mask = pick_less_filter(current, proposed, pick_less=True)
        assert mask.tolist() == [True, False, False]

    def test_equal_label_never_counts_as_change(self):
        mask = pick_less_filter(np.array([4]), np.array([4]), pick_less=True)
        assert mask.tolist() == [False]


class TestCrossCheck:
    def test_swap_pair_resolves_to_merge(self):
        # Vertices 0 and 1 swapped labels: C = [1, 0]; both memberships are
        # "bad" (leader not in own community).  Sequential revert fixes 0,
        # making 1's membership good: only one member reverts.
        labels = np.array([1, 0])
        previous = np.array([0, 1])
        reverted = cross_check_revert(labels, previous, np.array([0, 1]))
        assert reverted == 1
        assert labels.tolist() == [0, 0]

    def test_good_changes_untouched(self):
        # Vertex 1 joined community 0 whose leader 0 is present: good.
        labels = np.array([0, 0])
        previous = np.array([0, 1])
        reverted = cross_check_revert(labels, previous, np.array([1]))
        assert reverted == 0
        assert labels.tolist() == [0, 0]

    def test_bad_non_swap_reverts(self):
        # Vertex 2 joined community 1, but vertex 1 itself moved to 0:
        # leader check fails, 2 reverts.
        labels = np.array([0, 0, 1])
        previous = np.array([0, 1, 2])
        reverted = cross_check_revert(labels, previous, np.array([1, 2]))
        assert reverted == 1
        assert labels.tolist() == [0, 0, 2]

    def test_empty_changed_set(self):
        labels = np.array([1, 0])
        assert cross_check_revert(labels, labels.copy(), np.array([], dtype=int)) == 0

    def test_three_cycle(self):
        # 0 -> 1's label, 1 -> 2's label, 2 -> 0's label (rotation).
        labels = np.array([1, 2, 0])
        previous = np.array([0, 1, 2])
        cross_check_revert(labels, previous, np.array([0, 1, 2]))
        # After the pass every membership must be self-consistent.
        assert np.all(labels[labels] == labels)
