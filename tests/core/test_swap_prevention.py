"""Tests for Pick-Less filtering and Cross-Check reverts."""

import numpy as np
import pytest

from repro.core.swap_prevention import cross_check_revert, pick_less_filter


class TestPickLess:
    def test_inactive_allows_any_change(self):
        current = np.array([5, 5, 5])
        proposed = np.array([3, 5, 9])
        mask = pick_less_filter(current, proposed, pick_less=False)
        assert mask.tolist() == [True, False, True]

    def test_active_blocks_larger_labels(self):
        current = np.array([5, 5, 5])
        proposed = np.array([3, 5, 9])
        mask = pick_less_filter(current, proposed, pick_less=True)
        assert mask.tolist() == [True, False, False]

    def test_equal_label_never_counts_as_change(self):
        mask = pick_less_filter(np.array([4]), np.array([4]), pick_less=True)
        assert mask.tolist() == [False]


class TestCrossCheck:
    def test_swap_pair_resolves_to_merge(self):
        # Vertices 0 and 1 swapped labels: C = [1, 0]; both memberships are
        # "bad" (leader not in own community).  Sequential revert fixes 0,
        # making 1's membership good: only one member reverts.
        labels = np.array([1, 0])
        previous = np.array([0, 1])
        reverted = cross_check_revert(labels, previous, np.array([0, 1]))
        assert reverted == 1
        assert labels.tolist() == [0, 0]

    def test_good_changes_untouched(self):
        # Vertex 1 joined community 0 whose leader 0 is present: good.
        labels = np.array([0, 0])
        previous = np.array([0, 1])
        reverted = cross_check_revert(labels, previous, np.array([1]))
        assert reverted == 0
        assert labels.tolist() == [0, 0]

    def test_bad_non_swap_reverts(self):
        # Vertex 2 joined community 1, but vertex 1 itself moved to 0:
        # leader check fails, 2 reverts.
        labels = np.array([0, 0, 1])
        previous = np.array([0, 1, 2])
        reverted = cross_check_revert(labels, previous, np.array([1, 2]))
        assert reverted == 1
        assert labels.tolist() == [0, 0, 2]

    def test_empty_changed_set(self):
        labels = np.array([1, 0])
        assert cross_check_revert(labels, labels.copy(), np.array([], dtype=int)) == 0

    def test_three_cycle(self):
        # 0 -> 1's label, 1 -> 2's label, 2 -> 0's label (rotation).
        labels = np.array([1, 2, 0])
        previous = np.array([0, 1, 2])
        cross_check_revert(labels, previous, np.array([0, 1, 2]))
        # After the pass every membership must be self-consistent.
        assert np.all(labels[labels] == labels)

    @pytest.mark.parametrize("offset", [0, 10, 37])
    def test_swapped_pair_invariant_exactly_one_reverts(self, offset):
        """Paper-faithful invariant (Section 4.1): of a swapped pair,
        exactly one member reverts.

        The paper's CC is an atomic revert racing on the GPU; our
        deterministic stand-in processes bad vertices in ascending order
        *re-evaluating against the updated labels*, so the smaller vertex
        reverts and thereby heals the larger one.  The one-revert outcome
        (a merge, not a double rollback) is the behaviour the paper
        depends on — reverting both members would restore the original
        state and re-enter the swap cycle next iteration.
        """
        n = offset + 2
        previous = np.arange(n)
        labels = np.arange(n)
        a, b = offset, offset + 1
        labels[a], labels[b] = b, a  # the pair traded labels
        reverted = cross_check_revert(labels, previous, np.array([a, b]))
        assert reverted == 1
        # Merge outcome: both members share one self-consistent community.
        assert labels[a] == labels[b] == a
        assert np.all(labels[labels] == labels)

    def test_many_independent_pairs_each_revert_once(self):
        n = 20
        previous = np.arange(n)
        labels = np.arange(n)
        pairs = [(0, 1), (4, 5), (10, 11), (18, 19)]
        changed = []
        for a, b in pairs:
            labels[a], labels[b] = b, a
            changed += [a, b]
        reverted = cross_check_revert(labels, previous, np.array(changed))
        assert reverted == len(pairs)
        for a, b in pairs:
            assert labels[a] == labels[b] == a

    def test_leader_revert_cascades_to_followers(self):
        """Reverting a leader invalidates followers that joined it.

        Vertex 1 (an old member of community 3) adopted label 4, which
        fails the leader check (vertex 4 moved to 0), so 1 reverts to 3.
        Vertex 2 joined community 1 in the same iteration; once 1 has
        reverted away, ``labels[1] != 1`` and 2's membership is bad too,
        so the revert cascades.  Ascending-order re-evaluation makes this
        deterministic: leaders are settled before their followers.  This
        is the *other* paper-faithful half of CC — a follower must never
        be left pointing at a community whose leader abandoned it, or the
        "good community" invariant (labels[c*] == c*) breaks for the
        state CC hands to the next iteration.
        """
        previous = np.array([0, 3, 2, 3, 4])
        labels = np.array([0, 4, 1, 3, 0])  # post-move state
        reverted = cross_check_revert(labels, previous, np.array([1, 2, 4]))
        assert reverted == 2
        assert labels.tolist() == [0, 3, 2, 3, 0]
        # Vertex 4's change (joined 0, whose leader stayed) was good.
        assert labels[4] == 0

    def test_revert_heals_followers_when_leader_returns_home(self):
        """Counterpart case: the revert *restores* the leader's own label,
        so followers that joined it become good and do not revert."""
        previous = np.array([0, 1, 2])
        labels = np.array([1, 0, 0])  # 0 and 1 swapped; 2 joined community 0
        reverted = cross_check_revert(labels, previous, np.array([0, 1, 2]))
        # 0 reverts back to label 0; that heals both 1 and 2, which keep
        # their new memberships in the now-consistent community 0.
        assert reverted == 1
        assert labels.tolist() == [0, 0, 0]
        assert np.all(labels[labels] == labels)
