"""Differential tests for the workspace arena: on vs off, bit for bit.

The arena's contract is that it only changes *where scratch memory comes
from*, never what is computed: every hot-path function runs the same
arithmetic on arena slots or on fresh ``np.empty`` buffers.  These tests
pin that contract across both engines, every probing strategy, and
pruning on/off — labels, per-iteration stats, and every kernel counter
must match exactly — and verify the performance half of the bargain with
``tracemalloc``: a warmed engine re-running a converged workload performs
no array allocation on the hot path.
"""

import tracemalloc

import numpy as np
import pytest

from repro.core.config import LPAConfig
from repro.core.lpa import make_engine, nu_lpa
from repro.core.pruning import Frontier
from repro.graph.generators import rmat_graph, web_graph
from repro.hashing.probing import ProbeStrategy
from repro.types import VERTEX_DTYPE

ENGINES = ["vectorized", "hashtable"]


def _run(graph, engine, **config_kwargs):
    result = nu_lpa(
        graph,
        LPAConfig(**config_kwargs),
        engine=engine,
        warn_on_no_convergence=False,
    )
    return result


def _assert_identical(a, b, context):
    assert np.array_equal(a.labels, b.labels), context
    assert len(a.iterations) == len(b.iterations), context
    for it_a, it_b in zip(a.iterations, b.iterations):
        assert it_a.changed == it_b.changed, context
        assert it_a.processed == it_b.processed, context
        assert it_a.reverted == it_b.reverted, context
        assert it_a.counters.as_dict() == it_b.counters.as_dict(), context


class TestArenaDifferential:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("pruning", [True, False])
    def test_bit_identical_labels_and_counters(self, small_web, engine, pruning):
        on = _run(small_web, engine, workspace_arena=True, pruning=pruning)
        off = _run(small_web, engine, workspace_arena=False, pruning=pruning)
        _assert_identical(on, off, f"{engine}, pruning={pruning}")

    @pytest.mark.parametrize("probing", list(ProbeStrategy))
    def test_bit_identical_across_probing_strategies(self, small_social, probing):
        on = _run(small_social, "hashtable", workspace_arena=True, probing=probing)
        off = _run(small_social, "hashtable", workspace_arena=False, probing=probing)
        _assert_identical(on, off, probing.value)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_bit_identical_with_fp64_values(self, small_web, engine):
        on = _run(small_web, engine, workspace_arena=True, value_dtype=np.float64)
        off = _run(small_web, engine, workspace_arena=False, value_dtype=np.float64)
        _assert_identical(on, off, engine)


def _converge(eng, graph, config, max_iterations=64):
    """Run full-wave moves to the fixed point; returns (labels, frontier).

    Pruning is disabled so *every* move — including post-convergence ones —
    processes all vertices through the complete wave pipeline (gather,
    group-by/hashtable reduce, adoption filter).  The run both reaches the
    fixed point and grows every arena slot to its high-water mark.
    """
    frontier = Frontier(graph, enabled=False, arena=eng.arena)
    labels = np.arange(graph.num_vertices, dtype=VERTEX_DTYPE)
    for it in range(max_iterations):
        outcome = eng.move(
            labels, frontier, pick_less=config.pick_less_active(it),
            iteration=it,
        )
        if outcome.changed == 0:
            return labels, frontier
    pytest.fail("workload did not converge while warming the arena")


class TestSteadyStateAllocations:
    """tracemalloc proof that steady-state iterations allocate nothing.

    Measured at the fixed point rather than from a cold start: early
    iterations legitimately allocate their *outputs* (the documented
    ``changed_vertices`` copy is proportional to adopting vertices), but
    the scratch pipeline itself must come entirely from the arena.
    """

    #: Covers interpreter-level object churn (MoveOutcome, KernelCounters,
    #: zero-length changed copies) plus numpy-internal *constant-size*
    #: transients: ``ufunc.at`` — the simulated atomics, whose duplicate
    #: scattered indices rule out a reduceat rewrite without reordering
    #: float accumulation — holds a ~5 KB iterator buffer per call, and
    #: ``ndarray.sort`` a ~3 KB one.  None of it scales with the graph
    #: (the size parametrisation below pins that); anything wave-sized
    #: (hundreds of KB at these graph sizes) fails both sizes.
    _SLACK_BYTES = 16384

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("num_vertices", [1200, 4800])
    def test_steady_state_iterations_allocate_no_arrays(
        self, engine, num_vertices
    ):
        graph = web_graph(num_vertices, avg_degree=6, seed=3)
        config = LPAConfig(pruning=False)
        eng = make_engine(graph, config, engine)
        labels, frontier = _converge(eng, graph, config)

        grows_before = eng.arena.stats()["grows"]
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        for it in range(3):
            outcome = eng.move(
                labels, frontier, pick_less=config.pick_less_active(it),
                iteration=it,
            )
            assert outcome.changed == 0
            assert outcome.processed == graph.num_vertices
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert eng.arena.stats()["grows"] == grows_before, (
            "arena slots grew on a steady-state move"
        )
        assert peak - before < self._SLACK_BYTES, (
            f"steady-state {engine} iterations allocated {peak - before} bytes"
        )

    def test_arena_off_allocates_plenty(self):
        """Control: the same fixed-point workload without the arena."""
        graph = web_graph(1200, avg_degree=6, seed=3)
        config = LPAConfig(pruning=False, workspace_arena=False)
        eng = make_engine(graph, config, "vectorized")
        labels, frontier = _converge(eng, graph, config)

        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        for it in range(3):
            eng.move(
                labels, frontier, pick_less=config.pick_less_active(it),
                iteration=it,
            )
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak - before > 100_000
