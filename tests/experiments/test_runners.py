"""Smoke + shape tests for the experiment runners (tiny scale).

Each runner is executed at ``scale=0.05`` with a two-dataset subset so the
whole module stays in tens of seconds; assertions target the *shape* facts
the paper reports, at thresholds loose enough for tiny stand-ins.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments import ablations, collision_resolution, datatype
from repro.experiments import swap_prevention, switch_degree

TINY = dict(scale=0.08, seed=42, datasets=["indochina-2004", "europe_osm"])


class TestRegistry:
    def test_all_ids_present(self):
        assert set(EXPERIMENTS) == {"T1", "F1", "F3", "F4", "F5", "F6", "F7", "A1", "A2", "A3", "E1", "E2", "E3", "E4"}

    def test_unknown_id_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("F2")

    def test_case_insensitive(self):
        r = run_experiment("t1", scale=0.05, datasets=["asia_osm"])
        assert r.experiment_id == "T1"


class TestT1:
    def test_values_and_table(self):
        r = run_experiment("T1", scale=0.05, datasets=["asia_osm", "kmer_A2a"])
        assert "asia_osm" in r.values
        assert r.values["asia_osm"]["num_communities"] > 1
        assert "asia_osm" in r.table

    def test_community_density_tracks_family(self):
        r = run_experiment(
            "T1", scale=0.1, datasets=["indochina-2004", "kmer_A2a"]
        )
        # k-mer graphs have far more communities per vertex than web graphs.
        assert (
            r.values["kmer_A2a"]["communities_per_vertex"]
            > 3 * r.values["indochina-2004"]["communities_per_vertex"]
        )


class TestF1:
    def test_pl1_collapses_quality(self):
        r = swap_prevention.run(**TINY, include_hybrid=False)
        assert r.values["modularity"]["PL1"] < r.values["modularity"]["PL4"]

    def test_reference_is_one(self):
        r = swap_prevention.run(**TINY, include_hybrid=False)
        assert r.values["runtime"]["PL4"] == pytest.approx(1.0)


class TestF3:
    def test_quadratic_is_worst(self):
        r = collision_resolution.run(**TINY)
        rt = r.values["runtime"]
        assert rt["quadratic"] == max(rt.values())

    def test_hub_stress_reproduces_paper_gaps(self):
        stress = collision_resolution.hub_table_stress(seed=1)
        qd = stress["quadratic-double"]["probes"]
        assert stress["quadratic"]["probes"] > 10 * qd
        assert stress["linear"]["probes"] > 1.5 * qd
        assert stress["double"]["probes"] == pytest.approx(qd, rel=0.5)


class TestF4:
    def test_degree_2_is_bad_on_road(self):
        r = switch_degree.run(scale=0.08, seed=42, datasets=["europe_osm"])
        assert r.values["runtime"]["2"] > 1.5


class TestF5:
    def test_fp64_slower_fp32_equal_quality(self):
        r = datatype.run(**TINY)
        assert r.values["runtime"]["double"] > 1.0
        assert r.values["max_modularity_gap"] < 0.02


class TestAblations:
    def test_pruning_saves_time(self):
        r = ablations.run_pruning(**TINY)
        assert r.values["runtime"]["no-pruning"] > 1.0
        assert r.values["modularity_gap"] < 0.25

    def test_tolerance_monotone_iterations(self):
        r = ablations.run_tolerance(**TINY)
        iters = [r.values[t]["iterations"] for t in sorted(r.values)]
        # Tighter tolerance (smaller tau) needs at least as many iterations.
        assert iters[0] >= iters[-1]


class TestSerialization:
    def test_to_json_roundtrips(self):
        import json

        r = run_experiment("E3", datasets=["it-2004", "sk-2005"])
        payload = json.loads(r.to_json())
        assert payload["experiment_id"] == "E3"
        # The paper's own OOM: sk-2005 fits the A100 in neither layout.
        assert payload["values"]["sk-2005"]["fits_wide"] is False
        assert payload["values"]["sk-2005"]["fits_compact"] is False

    def test_save(self, tmp_path):
        import json

        r = run_experiment("T1", scale=0.05, datasets=["asia_osm"])
        out = tmp_path / "t1.json"
        r.save(out)
        assert json.loads(out.read_text())["experiment_id"] == "T1"
