"""Tests for simulated atomics."""

import numpy as np
import pytest

from repro.gpu.atomics import (
    contention_cost,
    first_winner_per_address,
    simulate_atomic_add,
)


class TestWinners:
    def test_first_in_lane_order_wins(self):
        addresses = np.array([5, 3, 5, 3, 5])
        winners = first_winner_per_address(addresses)
        # Ascending address order: addr 3 -> index 1, addr 5 -> index 0.
        assert winners.tolist() == [1, 0]

    def test_no_contenders(self):
        assert first_winner_per_address(np.array([], dtype=np.int64)).shape[0] == 0

    def test_all_distinct(self):
        winners = first_winner_per_address(np.array([9, 4, 7]))
        assert sorted(winners.tolist()) == [0, 1, 2]


class TestContention:
    def test_cost_is_multiplicity_minus_one(self):
        assert contention_cost(np.array([1, 1, 1, 2])) == 2

    def test_zero_for_distinct(self):
        assert contention_cost(np.array([1, 2, 3])) == 0

    def test_empty(self):
        assert contention_cost(np.array([], dtype=np.int64)) == 0


class TestAtomicAdd:
    def test_result_matches_serial(self):
        target = np.zeros(4)
        cost = simulate_atomic_add(
            target, np.array([0, 1, 0, 0]), np.array([1.0, 2.0, 3.0, 4.0])
        )
        assert target.tolist() == [8.0, 2.0, 0.0, 0.0]
        assert cost == 2

    def test_empty(self):
        target = np.zeros(2)
        assert simulate_atomic_add(target, np.array([], dtype=np.int64),
                                   np.array([])) == 0
