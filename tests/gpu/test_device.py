"""Tests for device specifications."""

import pytest

from repro.errors import KernelLaunchError
from repro.gpu.device import A100, XEON_GOLD_6226R_DUAL, DeviceSpec


class TestA100:
    def test_paper_section_511_numbers(self):
        assert A100.num_sms == 108
        assert A100.cuda_cores_per_sm == 64
        assert A100.global_memory_bytes == 80 * 1024**3
        assert A100.shared_memory_per_sm_bytes == 164 * 1024

    def test_resident_threads(self):
        assert A100.max_resident_threads == 108 * 2048

    def test_resident_blocks_bounded_by_threads(self):
        # 2048 threads / 256-thread blocks = 8 blocks per SM by threads,
        # below the 32-block architectural limit.
        assert A100.max_resident_blocks == 108 * 8

    def test_warps_per_block(self):
        assert A100.warps_per_block == 8


class TestValidation:
    def test_rejects_bad_block_size(self):
        with pytest.raises(KernelLaunchError):
            DeviceSpec(
                name="bad", num_sms=1, cuda_cores_per_sm=1, warp_size=32,
                max_threads_per_sm=64, max_blocks_per_sm=1,
                shared_memory_per_sm_bytes=1, global_memory_bytes=1,
                global_bandwidth=1.0, default_block_size=100,
            )

    def test_rejects_zero_sms(self):
        with pytest.raises(KernelLaunchError):
            DeviceSpec(
                name="bad", num_sms=0, cuda_cores_per_sm=1, warp_size=32,
                max_threads_per_sm=64, max_blocks_per_sm=1,
                shared_memory_per_sm_bytes=1, global_memory_bytes=1,
                global_bandwidth=1.0,
            )


class TestScaled:
    def test_scaling_sms_and_bandwidth(self):
        half = A100.scaled(0.5)
        assert half.num_sms == 54
        assert half.global_bandwidth == pytest.approx(A100.global_bandwidth / 2)

    def test_cpu_spec(self):
        assert XEON_GOLD_6226R_DUAL.total_cores == 32
