"""Tests for the device-memory governor: ledger, budget, estimator."""

import numpy as np
import pytest

from repro.core.config import LPAConfig
from repro.core.lpa import nu_lpa
from repro.errors import ConfigurationError, DeviceOomError
from repro.gpu.device import A100
from repro.gpu.governor import (
    ESTIMATE_TOLERANCE,
    REGION_KINDS,
    MemoryGovernor,
    estimate_run_footprint,
    footprint_for,
    wave_edge_bound,
)
from repro.graph.datasets import generate_standin
from repro.observe.trace import MemoryEvent, OomEvent, Tracer


@pytest.fixture
def gov():
    return MemoryGovernor(budget_bytes=1000)


class TestLedger:
    def test_reserve_release_roundtrip(self, gov):
        assert gov.reserve("csr", 300) == 300
        assert gov.in_use_bytes == 300
        assert gov.region_bytes("csr") == 300
        gov.release("csr", 300)
        assert gov.in_use_bytes == 0
        assert gov.reserves == 1 and gov.releases == 1
        assert gov.underflows == 0

    def test_high_water_survives_release(self, gov):
        gov.reserve("labels", 400)
        gov.reserve("arena", 200)
        gov.release("arena", 200)
        gov.release("labels", 400)
        assert gov.high_water_bytes == 600
        assert gov.region_high_water("labels") == 400
        assert gov.region_high_water("arena") == 200
        assert gov.in_use_bytes == 0

    def test_unknown_region_rejected(self, gov):
        with pytest.raises(ConfigurationError):
            gov.reserve("heap", 1)
        with pytest.raises(ConfigurationError):
            gov.release("heap", 1)

    def test_negative_sizes_rejected(self, gov):
        with pytest.raises(ConfigurationError):
            gov.reserve("csr", -1)
        with pytest.raises(ConfigurationError):
            gov.release("csr", -1)

    def test_over_release_clamps_and_counts_underflow(self, gov):
        gov.reserve("hashtable", 100)
        gov.release("hashtable", 250)
        assert gov.in_use_bytes == 0
        assert gov.region_bytes("hashtable") == 0
        assert gov.underflows == 1

    def test_stats_shape(self, gov):
        gov.reserve("csr", 10)
        stats = gov.stats()
        for key in (
            "device", "budget_bytes", "reserved_fraction", "in_use_bytes",
            "high_water_bytes", "regions", "region_high_water",
            "reserves", "releases", "ooms", "shrinks", "underflows",
        ):
            assert key in stats
        assert set(stats["regions"]) == set(REGION_KINDS)
        assert stats["in_use_bytes"] == 10


class TestBudget:
    def test_oom_raises_before_charging(self, gov):
        gov.reserve("csr", 900)
        with pytest.raises(DeviceOomError) as exc:
            gov.reserve("arena", 200)
        # Nothing was charged by the failed reservation.
        assert gov.in_use_bytes == 900
        assert gov.region_bytes("arena") == 0
        assert gov.ooms == 1
        err = exc.value
        assert err.region == "arena"
        assert err.requested_bytes == 200
        assert err.in_use_bytes == 900
        assert err.budget_bytes == 1000

    def test_would_fit(self, gov):
        gov.reserve("csr", 600)
        assert gov.would_fit(400)
        assert not gov.would_fit(401)

    def test_reserved_fraction_shrinks_effective_budget(self):
        gov = MemoryGovernor(budget_bytes=1000, reserved_fraction=0.25)
        assert gov.budget_bytes == 750
        gov.reserve("csr", 750)
        with pytest.raises(DeviceOomError):
            gov.reserve("csr", 1)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            MemoryGovernor(budget_bytes=0)
        with pytest.raises(ConfigurationError):
            MemoryGovernor(budget_bytes=100, reserved_fraction=1.0)

    def test_shrink_budget_explicit(self, gov):
        assert gov.shrink_budget(400) == 600
        assert gov.shrinks == 1
        gov.reserve("csr", 600)
        with pytest.raises(DeviceOomError):
            gov.reserve("csr", 1)

    def test_shrink_to_fraction_of_use_leaves_over_budget(self, gov):
        gov.reserve("hashtable", 800)
        gov.shrink_budget(to_fraction_of_use=0.5)
        assert gov.budget_bytes == 400
        assert gov.over_budget()
        # Releasing down to the new ceiling clears the condition.
        gov.release("hashtable", 500)
        assert not gov.over_budget()

    def test_restore_budget_undoes_every_shrink(self, gov):
        gov.shrink_budget(300)
        gov.shrink_budget(300)
        assert gov.budget_bytes == 400
        assert gov.restore_budget() == 1000


class TestTrace:
    def test_ledger_transactions_emit_events(self):
        tracer = Tracer(enabled=True)
        gov = MemoryGovernor(budget_bytes=100, tracer=tracer)
        gov.reserve("labels", 60)
        gov.release("labels", 60)
        with pytest.raises(DeviceOomError):
            gov.reserve("labels", 200)
        kinds = [type(ev) for ev in tracer.events]
        assert kinds.count(MemoryEvent) == 2
        assert kinds.count(OomEvent) == 1
        oom = [ev for ev in tracer.events if isinstance(ev, OomEvent)][0]
        assert oom.requested_bytes == 200
        assert oom.budget_bytes == 100


class TestEstimator:
    def test_exact_components(self):
        est = estimate_run_footprint(100, 1000, compact=True,
                                     engine="hashtable", value_itemsize=4)
        assert est["csr"] == 4 * 101 + 8 * 1000
        assert est["labels"] == 2 * 4 * 100
        assert est["hashtable"] == 2 * 1000 * (4 + 4)
        assert est["integrity"] == 0 and est["checkpoint"] == 0
        assert est["total"] == sum(
            est[k] for k in REGION_KINDS
        )

    def test_wide_layout_doubles_indices(self):
        compact = estimate_run_footprint(100, 1000, compact=True)
        wide = estimate_run_footprint(100, 1000, compact=False)
        assert wide["csr"] > compact["csr"]
        assert wide["labels"] == 2 * compact["labels"]

    def test_integrity_and_checkpoint_terms(self):
        base = estimate_run_footprint(100, 1000, engine="hashtable")
        integ = estimate_run_footprint(100, 1000, engine="hashtable",
                                       integrity=True)
        ckpt = estimate_run_footprint(100, 1000, engine="hashtable",
                                      checkpointing=True)
        assert integ["integrity"] == (
            base["csr"] + base["hashtable"] + base["arena"]
        )
        assert ckpt["checkpoint"] == 4 * 100 + 100

    def test_wave_edges_bounds_arena(self):
        full = estimate_run_footprint(100, 10_000, engine="hashtable")
        bounded = estimate_run_footprint(100, 10_000, engine="hashtable",
                                         wave_edges=1000)
        assert bounded["arena"] < full["arena"]
        # wave_edges above m clamps to m (never inflates the estimate).
        clamped = estimate_run_footprint(100, 10_000, engine="hashtable",
                                         wave_edges=10**9)
        assert clamped["arena"] == full["arena"]

    def test_vectorized_engine_has_no_hashtable_term(self):
        est = estimate_run_footprint(100, 1000, engine="vectorized")
        assert est["hashtable"] == 0


class TestWaveEdgeBound:
    def test_never_exceeds_edge_count(self):
        graph = generate_standin("asia_osm", scale=0.02, seed=3)
        bound = wave_edge_bound(graph, LPAConfig())
        assert 0 < bound <= graph.num_edges

    def test_small_graph_is_one_wave(self):
        # Fewer vertices than one residency wave: the bound is exactly m.
        graph = generate_standin("asia_osm", scale=0.02, seed=3)
        assert graph.num_vertices <= A100.max_resident_threads
        assert wave_edge_bound(graph, LPAConfig()) == graph.num_edges


class TestReconciliation:
    """The estimator is an admission upper bound the ledger must respect."""

    @pytest.mark.parametrize("engine", ["hashtable", "vectorized"])
    @pytest.mark.parametrize("compact", [True, False])
    def test_high_water_within_band(self, engine, compact):
        graph = generate_standin("asia_osm", scale=0.05, seed=7)
        config = LPAConfig(max_iterations=10, compact_layout=compact)
        est = footprint_for(graph, config, engine=engine)
        result = nu_lpa(
            graph,
            config.with_(memory_budget_bytes=4 * est["total"]),
            engine=engine,
            warn_on_no_convergence=False,
        )
        stats = result.memory
        assert stats is not None
        assert stats["underflows"] == 0
        assert stats["in_use_bytes"] == 0  # everything released at run end
        hw = stats["high_water_bytes"]
        # Exact-size regions are priced to the byte; the ledger must have
        # metered at least them ...
        floor = est["csr"] + est["labels"] + est["hashtable"]
        assert hw >= floor
        # ... and must not exceed the conservative total past tolerance.
        assert hw <= est["total"] * (1.0 + ESTIMATE_TOLERANCE)
        assert stats["region_high_water"]["csr"] == est["csr"]
        assert stats["region_high_water"]["labels"] == est["labels"]
        assert stats["region_high_water"]["hashtable"] == est["hashtable"]

    def test_governed_run_is_invisible(self):
        graph = generate_standin("asia_osm", scale=0.05, seed=7)
        config = LPAConfig(max_iterations=10)
        free = nu_lpa(graph, config, engine="hashtable",
                      warn_on_no_convergence=False)
        assert free.memory is None
        est = footprint_for(graph, config, engine="hashtable")
        governed = nu_lpa(
            graph, config.with_(memory_budget_bytes=4 * est["total"]),
            engine="hashtable", warn_on_no_convergence=False,
        )
        assert np.array_equal(free.labels, governed.labels)
        assert governed.memory["ooms"] == 0
        assert governed.memory["construction_rungs"] == []
