"""Tests for the sector-based memory model."""

import numpy as np
import pytest

from repro.gpu.device import A100
from repro.gpu.memory import AccessPattern, MemoryModel


@pytest.fixture
def mem():
    return MemoryModel(A100)


class TestContiguous:
    def test_exact_multiple(self, mem):
        assert mem.sectors_for_contiguous(8, 4) == 1  # 32 bytes

    def test_rounds_up(self, mem):
        assert mem.sectors_for_contiguous(9, 4) == 2

    def test_zero(self, mem):
        assert mem.sectors_for_contiguous(0, 4) == 0


class TestScattered:
    def test_one_sector_per_access(self, mem):
        assert mem.sectors_for_scattered(17) == 17


class TestSegments:
    def test_coalesced_pays_ceil_per_segment(self, mem):
        lengths = np.array([1, 8, 9])
        # 1 elem -> 1 sector; 8 -> 1; 9 -> 2.
        assert mem.sectors_for_segments(lengths, 4, AccessPattern.COALESCED) == 4

    def test_scattered_pays_per_element(self, mem):
        lengths = np.array([1, 8, 9])
        assert mem.sectors_for_segments(lengths, 4, AccessPattern.SCATTERED) == 18

    def test_empty(self, mem):
        assert mem.sectors_for_segments(np.array([], dtype=np.int64), 4,
                                        AccessPattern.COALESCED) == 0


class TestExactAddresses:
    def test_shared_sector_within_warp(self, mem):
        # Eight 4-byte elements in the same 32-byte sector, same warp.
        addresses = np.arange(8)
        warps = np.zeros(8, dtype=np.int64)
        assert mem.sectors_for_addresses(addresses, 4, warps) == 1

    def test_distinct_warps_do_not_share(self, mem):
        addresses = np.zeros(4, dtype=np.int64)
        warps = np.arange(4)
        assert mem.sectors_for_addresses(addresses, 4, warps) == 4

    def test_scattered_addresses(self, mem):
        addresses = np.arange(4) * 1000
        warps = np.zeros(4, dtype=np.int64)
        assert mem.sectors_for_addresses(addresses, 4, warps) == 4
