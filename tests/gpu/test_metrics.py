"""Tests for kernel counters."""

from repro.gpu.metrics import KernelCounters


class TestCounters:
    def test_addition(self):
        a = KernelCounters(probes=3, sectors_read=10)
        b = KernelCounters(probes=4, waves=2)
        c = a + b
        assert c.probes == 7 and c.sectors_read == 10 and c.waves == 2

    def test_inplace_addition(self):
        a = KernelCounters(atomic_add=1)
        a += KernelCounters(atomic_add=5)
        assert a.atomic_add == 6

    def test_bytes_moved_tracks_device_sector_size(self):
        from repro.gpu.device import A100, DeviceSpec

        c = KernelCounters(sectors_read=2, sectors_written=3)
        assert c.bytes_moved(A100.sector_bytes) == 5 * 32
        wide = DeviceSpec(
            name="wide-sector",
            num_sms=4,
            cuda_cores_per_sm=64,
            warp_size=32,
            max_threads_per_sm=1536,
            max_blocks_per_sm=16,
            shared_memory_per_sm_bytes=100 * 1024,
            global_memory_bytes=8 * 1024**3,
            global_bandwidth=400e9,
            sector_bytes=128,
        )
        assert c.bytes_moved(wide.sector_bytes) == 5 * 128

    def test_bytes_moved_rejects_bad_sector_size(self):
        c = KernelCounters(sectors_read=1)
        try:
            c.bytes_moved(0)
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")

    def test_as_dict_roundtrip(self):
        c = KernelCounters(probes=9)
        assert KernelCounters(**c.as_dict()) == c

    def test_addition_rejects_other_types(self):
        try:
            KernelCounters() + 3
        except TypeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected TypeError")


class TestKernelLaunch:
    def test_launch_counts_itself(self):
        from repro.gpu.device import A100
        from repro.gpu.kernel import KernelKind, KernelLaunch

        launch = KernelLaunch(KernelKind.THREAD_PER_VERTEX, A100, 100)
        assert launch.counters.launches == 1
        assert launch.threads_launched == 100

    def test_block_kernel_thread_count(self):
        from repro.gpu.device import A100
        from repro.gpu.kernel import KernelKind, KernelLaunch

        launch = KernelLaunch(KernelKind.BLOCK_PER_VERTEX, A100, 10)
        assert launch.threads_launched == 10 * 256

    def test_negative_grid_rejected(self):
        from repro.errors import KernelLaunchError
        from repro.gpu.device import A100
        from repro.gpu.kernel import KernelKind, KernelLaunch
        import pytest

        with pytest.raises(KernelLaunchError):
            KernelLaunch(KernelKind.THREAD_PER_VERTEX, A100, -5)
