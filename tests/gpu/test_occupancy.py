"""Tests for the occupancy calculator."""

import pytest

from repro.errors import KernelLaunchError
from repro.gpu.device import A100
from repro.gpu.occupancy import occupancy_for


class TestOccupancy:
    def test_default_config_thread_limited(self):
        occ = occupancy_for(A100)
        # 2048 threads / 256-thread blocks = 8 blocks; below 32-block limit.
        assert occ.blocks_per_sm == 8
        assert occ.threads_per_sm == 2048
        assert occ.limited_by == "threads"
        assert occ.occupancy_fraction == pytest.approx(1.0)

    def test_small_blocks_hit_block_limit(self):
        occ = occupancy_for(A100, block_size=32)
        # 2048/32 = 64 by threads, but the architectural cap is 32.
        assert occ.blocks_per_sm == 32
        assert occ.limited_by == "blocks"
        assert occ.threads_per_sm == 1024
        assert occ.occupancy_fraction == pytest.approx(0.5)

    def test_shared_memory_limits(self):
        # 64 KB per block: only 2 blocks fit in 164 KB of shared memory.
        occ = occupancy_for(A100, shared_bytes_per_block=64 * 1024)
        assert occ.blocks_per_sm == 2
        assert occ.limited_by == "shared"

    def test_a3_per_thread_tables_fit_without_loss(self):
        """The A3 budget (82 B per thread) costs no occupancy on an A100."""
        block = A100.default_block_size
        per_thread = A100.shared_memory_per_sm_bytes // A100.max_threads_per_sm
        occ = occupancy_for(A100, shared_bytes_per_block=per_thread * block)
        assert occ.threads_per_sm == A100.max_threads_per_sm

    def test_device_wide_numbers(self):
        occ = occupancy_for(A100)
        assert occ.device_blocks(A100) == A100.max_resident_blocks
        assert occ.device_threads(A100) == A100.max_resident_threads

    def test_invalid_block_size(self):
        with pytest.raises(KernelLaunchError):
            occupancy_for(A100, block_size=100)

    def test_oversized_shared_memory(self):
        with pytest.raises(KernelLaunchError):
            occupancy_for(A100, shared_bytes_per_block=10**9)

    def test_negative_shared_memory(self):
        with pytest.raises(KernelLaunchError):
            occupancy_for(A100, shared_bytes_per_block=-1)
