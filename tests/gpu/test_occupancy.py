"""Tests for the occupancy calculator."""

import pytest

from repro.errors import KernelLaunchError
from repro.gpu.device import A100, DeviceSpec
from repro.gpu.occupancy import occupancy_for

#: A consumer-class SM: 1536-thread budget (Ada/Ampere GeForce parts),
#: smaller shared memory — exercises every non-A100 branch.
CONSUMER = DeviceSpec(
    name="consumer-1536",
    num_sms=46,
    cuda_cores_per_sm=128,
    warp_size=32,
    max_threads_per_sm=1536,
    max_blocks_per_sm=24,
    shared_memory_per_sm_bytes=100 * 1024,
    global_memory_bytes=12 * 1024**3,
    global_bandwidth=504e9,
)


class TestOccupancy:
    def test_default_config_thread_limited(self):
        occ = occupancy_for(A100)
        # 2048 threads / 256-thread blocks = 8 blocks; below 32-block limit.
        assert occ.blocks_per_sm == 8
        assert occ.threads_per_sm == 2048
        assert occ.limited_by == "threads"
        assert occ.occupancy_fraction == pytest.approx(1.0)

    def test_small_blocks_hit_block_limit(self):
        occ = occupancy_for(A100, block_size=32)
        # 2048/32 = 64 by threads, but the architectural cap is 32.
        assert occ.blocks_per_sm == 32
        assert occ.limited_by == "blocks"
        assert occ.threads_per_sm == 1024
        assert occ.occupancy_fraction == pytest.approx(0.5)

    def test_shared_memory_limits(self):
        # 64 KB per block: only 2 blocks fit in 164 KB of shared memory.
        occ = occupancy_for(A100, shared_bytes_per_block=64 * 1024)
        assert occ.blocks_per_sm == 2
        assert occ.limited_by == "shared"

    def test_a3_per_thread_tables_fit_without_loss(self):
        """The A3 budget (82 B per thread) costs no occupancy on an A100."""
        block = A100.default_block_size
        per_thread = A100.shared_memory_per_sm_bytes // A100.max_threads_per_sm
        occ = occupancy_for(A100, shared_bytes_per_block=per_thread * block)
        assert occ.threads_per_sm == A100.max_threads_per_sm

    def test_device_wide_numbers(self):
        occ = occupancy_for(A100)
        assert occ.device_blocks(A100) == A100.max_resident_blocks
        assert occ.device_threads(A100) == A100.max_resident_threads

    def test_invalid_block_size(self):
        with pytest.raises(KernelLaunchError):
            occupancy_for(A100, block_size=100)

    def test_oversized_shared_memory(self):
        with pytest.raises(KernelLaunchError):
            occupancy_for(A100, shared_bytes_per_block=10**9)

    def test_negative_shared_memory(self):
        with pytest.raises(KernelLaunchError):
            occupancy_for(A100, shared_bytes_per_block=-1)

    def test_consumer_device_full_occupancy_is_1536_threads(self):
        # 1536 / 256 = 6 blocks; a full SM must report fraction 1.0, not
        # 1536/2048 (the old A100-hardcoded denominator).
        occ = occupancy_for(CONSUMER)
        assert occ.blocks_per_sm == 6
        assert occ.threads_per_sm == 1536
        assert occ.limited_by == "threads"
        assert occ.occupancy_fraction == pytest.approx(1.0)

    def test_consumer_device_partial_occupancy(self):
        # 512-thread blocks: 3 blocks = 1536 threads resident, still full;
        # with 40 KB shared per block only 2 fit -> 1024/1536 threads.
        occ = occupancy_for(CONSUMER, block_size=512,
                            shared_bytes_per_block=40 * 1024)
        assert occ.blocks_per_sm == 2
        assert occ.limited_by == "shared"
        assert occ.occupancy_fraction == pytest.approx(1024 / 1536)

    def test_fraction_differs_across_devices_for_same_config(self):
        # Identical kernel configuration, different architectural budgets:
        # the fraction must be computed against each device's own max.
        a = occupancy_for(A100, block_size=256, shared_bytes_per_block=0)
        c = occupancy_for(CONSUMER, block_size=256, shared_bytes_per_block=0)
        assert a.occupancy_fraction == pytest.approx(1.0)
        assert c.occupancy_fraction == pytest.approx(1.0)
        assert a.threads_per_sm != c.threads_per_sm

    def test_shared_memory_tie_reports_shared(self):
        # 164 KB / 20.5 KB = exactly 8 blocks by shared memory, tying the
        # 2048/256 = 8 thread limit.  Shared memory is the binding wall
        # (any more of it shrinks residency), so the tie must say "shared",
        # not "threads".
        occ = occupancy_for(A100, shared_bytes_per_block=20 * 1024 + 512)
        assert occ.blocks_per_sm == 8
        assert occ.limited_by == "shared"

    def test_zero_shared_memory_never_reports_shared(self):
        occ = occupancy_for(A100, shared_bytes_per_block=0)
        assert occ.limited_by in ("threads", "blocks")
