"""Tests for wave scheduling and warp assignment."""

import numpy as np
import pytest

from repro.errors import KernelLaunchError
from repro.gpu.device import A100
from repro.gpu.kernel import KernelKind
from repro.gpu.scheduler import plan_waves, warp_assignment


class TestWavePlan:
    def test_thread_kernel_wave_size(self):
        plan = plan_waves(A100, KernelKind.THREAD_PER_VERTEX, 10)
        assert plan.wave_size == A100.max_resident_threads

    def test_block_kernel_wave_size(self):
        plan = plan_waves(A100, KernelKind.BLOCK_PER_VERTEX, 10)
        assert plan.wave_size == A100.max_resident_blocks

    def test_wave_count(self):
        plan = plan_waves(A100, KernelKind.BLOCK_PER_VERTEX, 2000)
        assert plan.num_waves == -(-2000 // A100.max_resident_blocks)

    def test_bounds_cover_all_items(self):
        plan = plan_waves(A100, KernelKind.BLOCK_PER_VERTEX, 2000)
        covered = []
        for lo, hi in plan:
            covered.extend(range(lo, hi))
        assert covered == list(range(2000))

    def test_empty_grid(self):
        plan = plan_waves(A100, KernelKind.THREAD_PER_VERTEX, 0)
        assert plan.num_waves == 0
        assert list(plan) == []

    def test_negative_grid_rejected(self):
        with pytest.raises(KernelLaunchError):
            plan_waves(A100, KernelKind.THREAD_PER_VERTEX, -1)

    def test_out_of_range_wave_rejected(self):
        plan = plan_waves(A100, KernelKind.THREAD_PER_VERTEX, 10)
        with pytest.raises(KernelLaunchError):
            plan.wave_bounds(5)


class TestWarpAssignment:
    def test_thread_kernel_groups_of_32(self):
        idx = np.array([0, 31, 32, 63, 64])
        warps = warp_assignment(A100, KernelKind.THREAD_PER_VERTEX, idx)
        assert warps.tolist() == [0, 0, 1, 1, 2]

    def test_block_kernel_strides_edges_across_warps(self):
        # Vertex 0's edges 0..255 fill the block's 8 warps of 32 lanes.
        item = np.zeros(256, dtype=np.int64)
        rank = np.arange(256)
        warps = warp_assignment(A100, KernelKind.BLOCK_PER_VERTEX, item, rank)
        assert warps.min() == 0 and warps.max() == 7
        assert np.all(warps == rank // 32)

    def test_block_kernel_requires_ranks(self):
        with pytest.raises(KernelLaunchError):
            warp_assignment(A100, KernelKind.BLOCK_PER_VERTEX, np.array([0]))

    def test_kernel_kind_atomics(self):
        assert KernelKind.BLOCK_PER_VERTEX.uses_atomics
        assert not KernelKind.THREAD_PER_VERTEX.uses_atomics
