"""Tests for edge-array builders."""

import numpy as np
import pytest

from repro.errors import GraphConstructionError
from repro.graph.build import (
    coo_to_csr,
    deduplicate_edges,
    from_edges,
    from_networkx,
    from_scipy_sparse,
    symmetrize_edges,
)
from repro.graph.properties import is_symmetric


class TestSymmetrize:
    def test_adds_reverse_edges(self):
        src, dst, w = symmetrize_edges(np.array([0, 1]), np.array([1, 2]))
        pairs = set(zip(src.tolist(), dst.tolist()))
        assert pairs == {(0, 1), (1, 2), (1, 0), (2, 1)}

    def test_self_loop_not_duplicated(self):
        src, dst, _ = symmetrize_edges(np.array([3]), np.array([3]))
        assert src.tolist() == [3] and dst.tolist() == [3]

    def test_weights_copied_to_reverse(self):
        _, _, w = symmetrize_edges(
            np.array([0]), np.array([1]), np.array([2.5], dtype=np.float32)
        )
        assert w.tolist() == [2.5, 2.5]

    def test_length_mismatch_rejected(self):
        with pytest.raises(GraphConstructionError):
            symmetrize_edges(np.array([0, 1]), np.array([1]))

    def test_negative_ids_rejected(self):
        with pytest.raises(GraphConstructionError):
            symmetrize_edges(np.array([-1]), np.array([0]))


class TestDeduplicate:
    def test_max_combine_is_idempotent_under_symmetrize(self):
        src = np.array([0, 1, 0])
        dst = np.array([1, 0, 1])
        s, d, w = deduplicate_edges(src, dst, np.ones(3, dtype=np.float32))
        assert s.shape[0] == 2  # (0,1) and (1,0)
        assert np.all(w == 1.0)

    def test_sum_combine(self):
        s, d, w = deduplicate_edges(
            np.array([0, 0]), np.array([1, 1]),
            np.array([1.0, 2.0], dtype=np.float32), combine="sum",
        )
        assert w.tolist() == [3.0]

    def test_first_combine(self):
        s, d, w = deduplicate_edges(
            np.array([0, 0]), np.array([1, 1]),
            np.array([5.0, 2.0], dtype=np.float32), combine="first",
        )
        assert w.tolist() == [5.0]

    def test_unknown_combine_rejected(self):
        with pytest.raises(GraphConstructionError):
            deduplicate_edges(np.array([0]), np.array([1]), combine="weird")

    def test_empty_input(self):
        s, d, w = deduplicate_edges(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert s.shape[0] == 0


class TestFromEdges:
    def test_symmetry_of_result(self):
        g = from_edges(np.array([0, 2, 3]), np.array([1, 1, 0]))
        assert is_symmetric(g)

    def test_num_vertices_inferred(self):
        g = from_edges(np.array([0]), np.array([7]))
        assert g.num_vertices == 8

    def test_explicit_num_vertices(self):
        g = from_edges(np.array([0]), np.array([1]), num_vertices=10)
        assert g.num_vertices == 10
        assert g.degree(9) == 0

    def test_num_vertices_too_small_rejected(self):
        with pytest.raises(GraphConstructionError):
            from_edges(np.array([0]), np.array([5]), num_vertices=3)

    def test_no_symmetrize(self):
        g = from_edges(np.array([0]), np.array([1]), symmetrize=False)
        assert g.num_edges == 1
        assert not is_symmetric(g)

    def test_empty_graph(self):
        g = from_edges(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert g.num_vertices == 0

    def test_parallel_edges_merged(self):
        g = from_edges(np.array([0, 0, 0]), np.array([1, 1, 1]))
        assert g.num_edges == 2  # one per direction

    def test_targets_sorted_within_rows_after_dedupe(self):
        g = from_edges(np.array([0, 0, 0]), np.array([3, 1, 2]))
        assert g.neighbors(0).tolist() == [1, 2, 3]


class TestCooToCsr:
    def test_roundtrip(self):
        src = np.array([1, 0, 1], dtype=np.int64)
        dst = np.array([0, 1, 2], dtype=np.int64)
        w = np.ones(3, dtype=np.float32)
        g = coo_to_csr(src, dst, w, 3)
        assert g.neighbors(1).tolist() == [0, 2]
        assert g.neighbors(0).tolist() == [1]


class TestInterop:
    def test_from_scipy_sparse(self):
        import scipy.sparse as sp

        mat = sp.coo_matrix(
            (np.ones(2), (np.array([0, 1]), np.array([1, 2]))), shape=(3, 3)
        )
        g = from_scipy_sparse(mat)
        assert g.num_vertices == 3
        assert is_symmetric(g)

    def test_from_scipy_rejects_non_square(self):
        import scipy.sparse as sp

        mat = sp.coo_matrix((np.ones(1), ([0], [1])), shape=(2, 3))
        with pytest.raises(GraphConstructionError):
            from_scipy_sparse(mat)

    def test_from_networkx(self):
        nx = pytest.importorskip("networkx")
        h = nx.path_graph(4)
        g = from_networkx(h)
        assert g.num_vertices == 4
        assert g.num_undirected_edges == 3

    def test_from_networkx_weights(self):
        nx = pytest.importorskip("networkx")
        h = nx.Graph()
        h.add_nodes_from(range(2))
        h.add_edge(0, 1, weight=4.0)
        g = from_networkx(h)
        assert g.neighbor_weights(0)[0] == pytest.approx(4.0)

    def test_from_networkx_rejects_gapped_labels(self):
        nx = pytest.importorskip("networkx")
        h = nx.Graph()
        h.add_edge("a", "b")
        with pytest.raises(GraphConstructionError):
            from_networkx(h)


class TestWeightValidation:
    def test_nan_weights_rejected(self):
        with pytest.raises(GraphConstructionError):
            from_edges(
                np.array([0]), np.array([1]),
                np.array([np.nan], dtype=np.float32),
            )

    def test_inf_weights_rejected(self):
        with pytest.raises(GraphConstructionError):
            from_edges(
                np.array([0]), np.array([1]),
                np.array([np.inf], dtype=np.float32),
            )

    def test_negative_weights_allowed(self):
        # Signed graphs are structurally valid; algorithms define semantics.
        g = from_edges(
            np.array([0]), np.array([1]),
            np.array([-1.0], dtype=np.float32),
        )
        assert g.weights[0] == -1.0
