"""Tests for weight-constrained LPA coarsening."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph.coarsen import coarsen
from repro.graph.properties import is_symmetric


class TestCoarsen:
    def test_shrinks_graph(self, small_road):
        r = coarsen(small_road, max_weight=8)
        assert r.coarsest.num_vertices < small_road.num_vertices
        assert r.reduction > 1.5

    def test_total_weight_preserved_every_level(self, small_web):
        r = coarsen(small_web, max_weight=16, max_levels=3)
        for level in r.levels[1:]:
            assert level.total_weight() == pytest.approx(
                small_web.total_weight(), rel=1e-5
            )

    def test_vertex_weights_account_everyone(self, small_road):
        r = coarsen(small_road, max_weight=8)
        assert int(r.vertex_weights.sum()) == small_road.num_vertices

    def test_weight_constraint_respected(self, small_road):
        r = coarsen(small_road, max_weight=5)
        assert int(r.vertex_weights.max()) <= 5

    def test_mapping_is_consistent(self, small_road):
        r = coarsen(small_road, max_weight=8)
        assert r.mapping.shape[0] == small_road.num_vertices
        assert int(r.mapping.max()) < r.coarsest.num_vertices
        sizes = np.bincount(r.mapping, minlength=r.coarsest.num_vertices)
        assert np.array_equal(sizes, r.vertex_weights)

    def test_levels_stay_symmetric(self, small_web):
        r = coarsen(small_web, max_weight=16, max_levels=2)
        for level in r.levels:
            assert is_symmetric(level)

    def test_target_vertices_stop(self, small_road):
        r = coarsen(small_road, max_weight=50, target_vertices=30)
        # Stops at or soon after crossing the target.
        assert r.coarsest.num_vertices <= max(
            30, r.levels[-2].num_vertices if len(r.levels) > 1 else 30
        )

    def test_max_weight_one_is_noop(self, triangle):
        r = coarsen(triangle, max_weight=1)
        assert r.coarsest.num_vertices == 3

    def test_empty_graph(self):
        from repro.graph.build import from_edges

        g = from_edges(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        r = coarsen(g)
        assert r.coarsest.num_vertices == 0

    def test_invalid_max_weight(self, triangle):
        with pytest.raises(ConfigurationError):
            coarsen(triangle, max_weight=0)

    def test_coarse_communities_lift_back(self, small_web):
        """Detecting on the coarse graph and lifting is still meaningful."""
        from repro import nu_lpa
        from repro.metrics import modularity

        r = coarsen(small_web, max_weight=16, max_levels=2)
        coarse_labels = nu_lpa(r.coarsest).labels
        lifted = coarse_labels[r.mapping]
        assert modularity(small_web, lifted) > 0.3
