"""Tests for the CSR graph container."""

import numpy as np
import pytest

from repro.errors import GraphConstructionError
from repro.graph.csr import CSRGraph
from repro.graph.build import from_edges


class TestConstruction:
    def test_empty_graph(self):
        g = CSRGraph(np.array([0]), np.array([], dtype=np.int64))
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_isolated_vertices(self):
        g = CSRGraph(np.array([0, 0, 0]), np.array([], dtype=np.int64))
        assert g.num_vertices == 2
        assert g.degree(0) == 0 and g.degree(1) == 0

    def test_basic_shape(self, triangle):
        assert triangle.num_vertices == 3
        assert triangle.num_edges == 6  # each edge stored twice
        assert triangle.num_undirected_edges == 3

    def test_default_weights_are_one(self, triangle):
        assert np.all(triangle.weights == 1.0)

    def test_rejects_bad_offsets_start(self):
        with pytest.raises(GraphConstructionError):
            CSRGraph(np.array([1, 2]), np.array([0]))

    def test_rejects_decreasing_offsets(self):
        with pytest.raises(GraphConstructionError):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 1]))

    def test_rejects_offset_target_mismatch(self):
        with pytest.raises(GraphConstructionError):
            CSRGraph(np.array([0, 3]), np.array([0]))

    def test_rejects_out_of_range_targets(self):
        with pytest.raises(GraphConstructionError):
            CSRGraph(np.array([0, 1]), np.array([5]))

    def test_rejects_misaligned_weights(self):
        with pytest.raises(GraphConstructionError):
            CSRGraph(
                np.array([0, 1, 2]),
                np.array([1, 0]),
                np.array([1.0], dtype=np.float32),
            )

    def test_arrays_are_read_only(self, triangle):
        with pytest.raises(ValueError):
            triangle.targets[0] = 2
        with pytest.raises(ValueError):
            triangle.offsets[0] = 1
        with pytest.raises(ValueError):
            triangle.weights[0] = 9.0


class TestAccessors:
    def test_neighbors(self, triangle):
        assert set(triangle.neighbors(0).tolist()) == {1, 2}

    def test_neighbor_weights(self, weighted_triangle):
        # Vertex 0 has edges to 1 (w=1) and 2 (w=3).
        nbrs = weighted_triangle.neighbors(0)
        wts = weighted_triangle.neighbor_weights(0)
        lookup = dict(zip(nbrs.tolist(), wts.tolist()))
        assert lookup[1] == pytest.approx(1.0)
        assert lookup[2] == pytest.approx(3.0)

    def test_degrees_match_offsets(self, star):
        assert star.degree(0) == 8
        assert all(star.degree(i) == 1 for i in range(1, 9))

    def test_source_ids(self, triangle):
        src = triangle.source_ids()
        assert src.shape[0] == triangle.num_edges
        for i in range(triangle.num_vertices):
            lo, hi = triangle.offsets[i], triangle.offsets[i + 1]
            assert np.all(src[lo:hi] == i)

    def test_iter_edges_count(self, triangle):
        assert len(list(triangle.iter_edges())) == triangle.num_edges


class TestWeightedQuantities:
    def test_weighted_degrees_unweighted(self, star):
        wd = star.weighted_degrees()
        assert wd[0] == pytest.approx(8.0)
        assert np.allclose(wd[1:], 1.0)

    def test_total_weight(self, weighted_triangle):
        assert weighted_triangle.total_weight() == pytest.approx(6.0)

    def test_total_weight_matches_sum_of_degrees(self, small_web):
        assert small_web.weighted_degrees().sum() == pytest.approx(
            2 * small_web.total_weight(), rel=1e-6
        )


class TestEqualityAndSort:
    def test_equality(self, triangle):
        other = from_edges(np.array([0, 1, 2]), np.array([1, 2, 0]))
        assert triangle == other

    def test_inequality(self, triangle, path6):
        assert triangle != path6

    def test_sorted_by_degree_preserves_structure(self, small_road):
        g2, perm = small_road.sorted_by_degree()
        assert g2.num_vertices == small_road.num_vertices
        assert g2.num_edges == small_road.num_edges
        # Degrees must be ascending and a permutation of the originals.
        assert np.all(np.diff(g2.degrees) >= 0)
        assert np.array_equal(np.sort(g2.degrees), np.sort(small_road.degrees))
        # Edge (perm[a], perm[b]) in old graph <-> (a, b) in new graph.
        assert g2.degree(0) == small_road.degree(int(perm[0]))

    def test_memory_bytes_accounting(self, triangle):
        # 4 offsets * 8B + 6 arcs * (8B id + 4B weight) — derived from the
        # actual itemsizes, not hardcoded widths.
        assert triangle.memory_bytes() == 4 * 8 + 6 * (8 + 4)

    def test_memory_bytes_tracks_compact_layout(self, triangle):
        compact = triangle.with_compact_layout()
        # 4 offsets * 4B + 6 arcs * (4B id + 4B weight).
        assert compact.memory_bytes() == 4 * 4 + 6 * (4 + 4)
        assert compact.memory_bytes() < triangle.memory_bytes()


class TestSortedByDegreeDifferential:
    """The vectorized scatter must match the per-vertex reference exactly."""

    def _check(self, graph):
        fast_graph, fast_perm = graph.sorted_by_degree()
        ref_graph, ref_perm = graph._sorted_by_degree_reference()
        assert np.array_equal(fast_perm, ref_perm)
        assert np.array_equal(fast_graph.offsets, ref_graph.offsets)
        assert np.array_equal(fast_graph.targets, ref_graph.targets)
        assert np.array_equal(fast_graph.weights, ref_graph.weights)

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_random_graphs(self, seed):
        from repro.graph.generators import rmat_graph

        self._check(rmat_graph(9, 6, seed=seed))

    def test_self_loops(self):
        offsets = np.array([0, 2, 3, 5], dtype=np.int64)
        targets = np.array([0, 1, 1, 2, 0], dtype=np.int64)
        weights = np.array([1.0, 2.0, 3.0, 4.0, 5.0], dtype=np.float32)
        self._check(CSRGraph(offsets, targets, weights, validate=False))

    def test_isolated_vertices(self):
        # Vertices 1 and 3 have no arcs at all.
        offsets = np.array([0, 2, 2, 4, 4, 5], dtype=np.int64)
        targets = np.array([2, 4, 0, 4, 0], dtype=np.int64)
        self._check(CSRGraph(offsets, targets, validate=False))

    def test_empty_graph(self):
        self._check(CSRGraph(np.zeros(1, dtype=np.int64),
                             np.zeros(0, dtype=np.int64), validate=False))

    def test_compact_graph_keeps_compact_dtypes(self):
        offsets = np.array([0, 1, 3, 4], dtype=np.int32)
        targets = np.array([1, 0, 2, 1], dtype=np.int32)
        g = CSRGraph(offsets, targets, validate=False)
        sorted_g, _ = g.sorted_by_degree()
        assert sorted_g.offsets.dtype == np.int32
        assert sorted_g.targets.dtype == np.int32
        self._check(g)


class TestHashAudit:
    """Regression tests for the sampled structural hash."""

    def test_hash_consistent_with_eq_across_layouts(self, small_web):
        compact = small_web.with_compact_layout()
        assert compact == small_web
        assert hash(compact) == hash(small_web)

    def test_hash_samples_offsets(self):
        # Same target stream, different row boundaries: the pre-audit hash
        # (targets-only samples) collided these two graphs.
        targets = np.arange(8, dtype=np.int64) % 4
        a = CSRGraph(np.array([0, 2, 4, 6, 8]), targets, validate=False)
        b = CSRGraph(np.array([0, 1, 2, 6, 8]), targets, validate=False)
        assert a != b
        assert hash(a) != hash(b)

    def test_weights_never_hashed(self, triangle):
        heavier = CSRGraph(
            triangle.offsets, triangle.targets,
            np.full(triangle.num_edges, 2.0, dtype=np.float32),
            validate=False,
        )
        assert heavier != triangle
        assert hash(heavier) == hash(triangle)


class TestCompactLayout:
    def test_round_trip_values(self, small_web):
        compact = small_web.with_compact_layout()
        assert compact.is_compact
        assert not small_web.is_compact
        assert np.array_equal(compact.offsets, small_web.offsets)
        assert np.array_equal(compact.targets, small_web.targets)
        assert np.array_equal(compact.weights, small_web.weights)

    def test_idempotent(self, small_web):
        compact = small_web.with_compact_layout()
        assert compact.with_compact_layout() is compact
