"""Tests for the Table-1 dataset registry."""

import pytest

from repro.errors import DatasetError
from repro.graph.datasets import (
    DATASETS,
    dataset_names,
    generate_standin,
    get_dataset,
    large_dataset_names,
)
from repro.graph.properties import degree_statistics, is_symmetric


class TestRegistry:
    def test_thirteen_datasets(self):
        assert len(DATASETS) == 13

    def test_table1_order(self):
        names = dataset_names()
        assert names[0] == "indochina-2004"
        assert names[-1] == "kmer_V1r"

    def test_families(self):
        fams = {spec.family for spec in DATASETS.values()}
        assert fams == {"web", "social", "road", "kmer"}

    def test_paper_numbers_recorded(self):
        spec = get_dataset("it-2004")
        assert spec.paper_num_edges == 2_190_000_000
        assert spec.paper_num_communities == 901_000

    def test_sk2005_unknown_communities(self):
        assert get_dataset("sk-2005").paper_num_communities is None

    def test_unknown_name_rejected(self):
        with pytest.raises(DatasetError):
            get_dataset("facebook")

    def test_large_names_subset(self):
        assert set(large_dataset_names()) <= set(dataset_names())


class TestStandins:
    @pytest.mark.parametrize("name", dataset_names())
    def test_standin_generates_and_is_symmetric(self, name):
        g = generate_standin(name, scale=0.05, seed=1)
        assert g.num_vertices > 0
        assert is_symmetric(g)

    def test_family_degree_profiles(self):
        road = generate_standin("asia_osm", scale=0.3, seed=1)
        kmer = generate_standin("kmer_A2a", scale=0.3, seed=1)
        web = generate_standin("indochina-2004", scale=0.3, seed=1)
        assert degree_statistics(road).mean < 3
        assert degree_statistics(kmer).mean < 3
        web_stats = degree_statistics(web)
        assert web_stats.mean > 10
        assert web_stats.max > 5 * web_stats.mean

    def test_scale_shrinks(self):
        big = generate_standin("kmer_A2a", scale=0.2, seed=1)
        small = generate_standin("kmer_A2a", scale=0.1, seed=1)
        assert small.num_vertices < big.num_vertices

    def test_deterministic(self):
        a = generate_standin("europe_osm", scale=0.1, seed=5)
        b = generate_standin("europe_osm", scale=0.1, seed=5)
        assert a == b

    def test_invalid_scale(self):
        with pytest.raises(DatasetError):
            generate_standin("asia_osm", scale=0.0)
