"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphConstructionError
from repro.graph.generators import (
    barabasi_albert,
    kmer_graph,
    lfr_like,
    planted_partition,
    rmat_graph,
    road_network,
    watts_strogatz,
    web_graph,
)
from repro.graph.properties import (
    degree_statistics,
    is_symmetric,
    largest_component_fraction,
)
from repro.metrics import modularity


def _check_valid(g):
    assert is_symmetric(g)
    assert g.num_edges > 0


class TestDeterminism:
    @pytest.mark.parametrize(
        "make",
        [
            lambda s: rmat_graph(8, 4, seed=s),
            lambda s: barabasi_albert(200, 3, seed=s),
            lambda s: watts_strogatz(100, 4, 0.2, seed=s),
            lambda s: road_network(8, 8, seed=s),
            lambda s: kmer_graph(500, seed=s),
            lambda s: web_graph(500, seed=s),
            lambda s: planted_partition(100, 5, seed=s)[0],
            lambda s: lfr_like(400, seed=s)[0],
        ],
        ids=["rmat", "ba", "ws", "road", "kmer", "web", "pp", "lfr"],
    )
    def test_same_seed_same_graph(self, make):
        assert make(3) == make(3)

    def test_different_seed_different_graph(self):
        assert rmat_graph(8, 4, seed=1) != rmat_graph(8, 4, seed=2)


class TestRmat:
    def test_shape(self):
        g = rmat_graph(9, 8, seed=0)
        assert g.num_vertices == 512
        _check_valid(g)

    def test_skewed_degrees(self):
        g = rmat_graph(11, 16, seed=0)
        st = degree_statistics(g)
        assert st.max > 8 * st.mean

    def test_invalid_params(self):
        with pytest.raises(GraphConstructionError):
            rmat_graph(4, 4, a=0.9, b=0.9, c=0.9)


class TestBarabasiAlbert:
    def test_shape(self):
        g = barabasi_albert(300, 2, seed=0)
        assert g.num_vertices == 300
        _check_valid(g)

    def test_connected(self):
        g = barabasi_albert(300, 2, seed=0)
        assert largest_component_fraction(g) == 1.0

    def test_invalid(self):
        with pytest.raises(GraphConstructionError):
            barabasi_albert(3, 5)


class TestWattsStrogatz:
    def test_no_rewire_is_ring_lattice(self):
        g = watts_strogatz(50, 4, 0.0, seed=0)
        assert np.all(g.degrees == 4)

    def test_invalid_k(self):
        with pytest.raises(GraphConstructionError):
            watts_strogatz(10, 3, 0.1)

    def test_invalid_p(self):
        with pytest.raises(GraphConstructionError):
            watts_strogatz(10, 4, 1.5)


class TestRoadNetwork:
    def test_degree_profile(self):
        g = road_network(15, 15, chain_length=6, seed=0)
        st = degree_statistics(g)
        assert 1.9 < st.mean < 2.4  # OSM-like
        assert st.max <= 6

    def test_mostly_connected(self):
        g = road_network(10, 10, thin_probability=0.05, seed=0)
        assert largest_component_fraction(g) > 0.8

    def test_chain_length_one(self):
        g = road_network(5, 5, chain_length=1, thin_probability=0.0, seed=0)
        assert g.num_vertices == 25

    def test_invalid_grid(self):
        with pytest.raises(GraphConstructionError):
            road_network(1, 5)


class TestKmer:
    def test_degree_profile(self):
        g = kmer_graph(5000, seed=0)
        st = degree_statistics(g)
        assert 1.8 < st.mean < 2.5
        assert st.max < 10

    def test_exact_vertex_count(self):
        assert kmer_graph(1234, seed=0).num_vertices == 1234

    def test_invalid(self):
        with pytest.raises(GraphConstructionError):
            kmer_graph(1)


class TestWebGraph:
    def test_hubs_exist(self):
        g = web_graph(5000, avg_degree=12, seed=0)
        st = degree_statistics(g)
        assert st.max > 10 * st.mean  # genuine hubs

    def test_community_structure(self):
        from repro import nu_lpa

        g = web_graph(3000, avg_degree=8, seed=0)
        r = nu_lpa(g)
        assert modularity(g, r.labels) > 0.4

    def test_invalid(self):
        with pytest.raises(GraphConstructionError):
            web_graph(2)


class TestPlantedPartition:
    def test_ground_truth_shape(self):
        g, labels = planted_partition(120, 6, seed=0)
        assert labels.shape[0] == 120
        assert np.unique(labels).shape[0] == 6

    def test_ground_truth_has_high_modularity(self):
        g, labels = planted_partition(300, 6, p_in=0.3, p_out=0.01, seed=0)
        assert modularity(g, labels) > 0.5

    def test_invalid_probabilities(self):
        with pytest.raises(GraphConstructionError):
            planted_partition(100, 5, p_in=0.01, p_out=0.5)


class TestLfrLike:
    def test_covers_all_vertices(self):
        g, labels = lfr_like(600, seed=0)
        assert labels.shape[0] == 600
        assert g.num_vertices == 600

    def test_mixing_controls_quality(self):
        g_low, lab_low = lfr_like(800, mixing=0.1, seed=0)
        g_high, lab_high = lfr_like(800, mixing=0.6, seed=0)
        assert modularity(g_low, lab_low) > modularity(g_high, lab_high)

    def test_invalid_mixing(self):
        with pytest.raises(GraphConstructionError):
            lfr_like(100, mixing=1.5)
