"""Tests for graph file IO round trips."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.build import from_edges
from repro.graph.io import (
    load_graph,
    read_edgelist,
    read_matrix_market,
    read_metis,
    write_edgelist,
    write_matrix_market,
    write_metis,
)


@pytest.fixture
def sample_graph():
    return from_edges(
        np.array([0, 1, 2, 3]),
        np.array([1, 2, 3, 0]),
        np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float32),
    )


class TestEdgelist:
    def test_roundtrip(self, sample_graph, tmp_path):
        path = tmp_path / "g.txt"
        write_edgelist(sample_graph, path)
        g = read_edgelist(path)
        assert g == sample_graph

    def test_roundtrip_gzip(self, sample_graph, tmp_path):
        path = tmp_path / "g.txt.gz"
        write_edgelist(sample_graph, path)
        assert read_edgelist(path) == sample_graph

    def test_unweighted(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        g = read_edgelist(path)
        assert g.num_undirected_edges == 2
        assert np.all(g.weights == 1.0)

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# SNAP header\n0 1\n")
        assert read_edgelist(path).num_undirected_edges == 1

    def test_gappy_ids_compacted(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("10 20\n20 30\n")
        g = read_edgelist(path)
        assert g.num_vertices == 3

    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# nothing\n")
        assert read_edgelist(path).num_vertices == 0

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 x\n")
        with pytest.raises(GraphFormatError):
            read_edgelist(path)


class TestMatrixMarket:
    def test_roundtrip(self, sample_graph, tmp_path):
        path = tmp_path / "g.mtx"
        write_matrix_market(sample_graph, path)
        assert read_matrix_market(path) == sample_graph

    def test_pattern_field(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "3 3 2\n2 1\n3 2\n"
        )
        g = read_matrix_market(path)
        assert g.num_undirected_edges == 2
        assert np.all(g.weights == 1.0)

    def test_general_symmetry(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 2\n1 2 1.0\n2 1 1.0\n"
        )
        g = read_matrix_market(path)
        assert g.num_undirected_edges == 1

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text("1 1 0\n")
        with pytest.raises(GraphFormatError):
            read_matrix_market(path)

    def test_non_square_rejected(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text("%%MatrixMarket matrix coordinate real general\n2 3 0\n")
        with pytest.raises(GraphFormatError):
            read_matrix_market(path)

    def test_wrong_nnz_rejected(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n2 2 5\n1 2 1.0\n"
        )
        with pytest.raises(GraphFormatError):
            read_matrix_market(path)

    def test_comment_lines_after_header(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "% SuiteSparse metadata\n"
            "2 2 1\n2 1 1.0\n"
        )
        assert read_matrix_market(path).num_undirected_edges == 1


class TestMetis:
    def test_roundtrip(self, sample_graph, tmp_path):
        path = tmp_path / "g.graph"
        write_metis(sample_graph, path)
        assert read_metis(path) == sample_graph

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("5\n")
        with pytest.raises(GraphFormatError):
            read_metis(path)

    def test_wrong_line_count_rejected(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("3 1 001\n2 1.0\n")
        with pytest.raises(GraphFormatError):
            read_metis(path)


class TestLoadGraph:
    def test_dispatch_by_suffix(self, sample_graph, tmp_path):
        for suffix, writer in [
            (".mtx", write_matrix_market),
            (".graph", write_metis),
            (".txt", write_edgelist),
        ]:
            path = tmp_path / f"g{suffix}"
            writer(sample_graph, path)
            assert load_graph(path) == sample_graph

    def test_unknown_suffix_rejected(self, tmp_path):
        path = tmp_path / "g.bin"
        path.write_text("")
        with pytest.raises(GraphFormatError):
            load_graph(path)


class TestTruncatedGzip:
    """A .gz file cut off mid-transfer must fail as a format error with a
    location, never a bare EOFError from inside the decompressor."""

    @staticmethod
    def _truncate(path, fraction=0.5):
        data = path.read_bytes()
        path.write_bytes(data[: max(1, int(len(data) * fraction))])

    @pytest.fixture
    def big_gz_edgelist(self, tmp_path):
        import gzip

        path = tmp_path / "big.txt.gz"
        with gzip.open(path, "wt") as fh:
            for i in range(20_000):
                fh.write(f"{i} {i + 1}\n")
        return path

    def test_truncated_edgelist_raises_format_error(self, big_gz_edgelist):
        self._truncate(big_gz_edgelist)
        with pytest.raises(GraphFormatError, match="truncated or corrupt"):
            read_edgelist(big_gz_edgelist)

    def test_error_reports_byte_offset(self, big_gz_edgelist):
        self._truncate(big_gz_edgelist)
        with pytest.raises(GraphFormatError, match="compressed byte \\d+"):
            read_edgelist(big_gz_edgelist)

    def test_error_names_the_file(self, big_gz_edgelist):
        self._truncate(big_gz_edgelist)
        with pytest.raises(GraphFormatError, match="big.txt.gz"):
            read_edgelist(big_gz_edgelist)

    def test_corrupt_body_raises_format_error(self, big_gz_edgelist):
        data = bytearray(big_gz_edgelist.read_bytes())
        for i in range(64, min(len(data), 256)):
            data[i] ^= 0xFF  # smash the deflate stream, keep the header
        big_gz_edgelist.write_bytes(bytes(data))
        with pytest.raises(GraphFormatError, match="truncated or corrupt"):
            read_edgelist(big_gz_edgelist)

    def test_truncated_mtx_raises_format_error(self, sample_graph, tmp_path):
        path = tmp_path / "g.mtx.gz"
        write_matrix_market(sample_graph, path)
        self._truncate(path, fraction=0.6)
        with pytest.raises(GraphFormatError, match="truncated or corrupt"):
            read_matrix_market(path)

    def test_truncated_metis_raises_format_error(self, sample_graph, tmp_path):
        path = tmp_path / "g.graph.gz"
        write_metis(sample_graph, path)
        self._truncate(path, fraction=0.6)
        with pytest.raises(GraphFormatError, match="truncated or corrupt"):
            read_metis(path)

    def test_intact_gzip_still_loads(self, big_gz_edgelist):
        g = read_edgelist(big_gz_edgelist)
        assert g.num_vertices == 20_001


class TestWeightHygiene:
    """Parse-time NaN/Inf/negative rejection with line-number context."""

    def write_el(self, tmp_path, body):
        path = tmp_path / "g.txt"
        path.write_text(body)
        return path

    def test_nan_rejected_with_lineno(self, tmp_path):
        path = self.write_el(tmp_path, "# c\n0 1 1.0\n1 2 nan\n")
        with pytest.raises(GraphFormatError, match=r"NaN edge weight.*line 3"):
            read_edgelist(path)

    def test_negative_rejected_with_lineno(self, tmp_path):
        path = self.write_el(tmp_path, "0 1 1.0\n1 2 -2.5\n")
        with pytest.raises(GraphFormatError, match=r"negative edge weight.*line 2"):
            read_edgelist(path)

    def test_inf_rejected(self, tmp_path):
        path = self.write_el(tmp_path, "0 1 inf\n")
        with pytest.raises(GraphFormatError, match="infinite"):
            read_edgelist(path)

    def test_float64_overflow_rejected(self, tmp_path):
        # finite in float64 but beyond fp32: silently casting would make inf
        path = self.write_el(tmp_path, "0 1 1e39\n")
        with pytest.raises(GraphFormatError, match="overflowing"):
            read_edgelist(path)

    def test_repair_policy_loads(self, tmp_path):
        path = self.write_el(tmp_path, "0 1 nan\n1 2 -1.0\n2 0 2.0\n")
        g = read_edgelist(path, validate="repair")
        assert g.num_undirected_edges == 3
        assert np.all(np.isfinite(g.weights))
        assert np.all(g.weights >= 0)

    def test_quarantine_policy_drops(self, tmp_path):
        path = self.write_el(tmp_path, "0 1 nan\n1 2 1.0\n2 0 2.0\n")
        g = read_edgelist(path, validate="quarantine")
        assert g.num_undirected_edges == 2

    def test_unweighted_files_unaffected(self, tmp_path):
        path = self.write_el(tmp_path, "0 1\n1 2\n")
        assert read_edgelist(path).num_undirected_edges == 2

    def test_unknown_policy_rejected(self, tmp_path):
        path = self.write_el(tmp_path, "0 1 1.0\n")
        with pytest.raises(GraphFormatError, match="unknown weight policy"):
            read_edgelist(path, validate="lenient")

    def test_mtx_lineno_accounts_for_comments(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% one comment line\n"
            "3 3 4\n"
            "1 2 1.0\n"
            "2 1 1.0\n"
            "2 3 nan\n"
            "3 2 nan\n"
        )
        with pytest.raises(GraphFormatError, match=r"line 6"):
            read_matrix_market(path)
        g = read_matrix_market(path, validate="repair")
        assert g.num_undirected_edges == 2

    def test_metis_vertex_line_context(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("3 3 001\n2 1.0 3 2.0\n1 1.0 3 nan\n1 2.0 2 nan\n")
        with pytest.raises(GraphFormatError, match=r"line 3"):
            read_metis(path)
        g = read_metis(path, validate="quarantine")
        assert g.num_undirected_edges == 2

    def test_load_graph_threads_policy(self, tmp_path):
        path = self.write_el(tmp_path, "0 1 nan\n1 2 1.0\n")
        with pytest.raises(GraphFormatError):
            load_graph(path)
        g = load_graph(path, validate="repair")
        assert g.num_undirected_edges == 2
