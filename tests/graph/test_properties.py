"""Tests for structural graph properties."""

import numpy as np
import pytest

from repro.graph.build import from_edges
from repro.graph.properties import (
    connected_components,
    degree_histogram,
    degree_statistics,
    has_self_loops,
    is_symmetric,
    largest_component_fraction,
    power_law_exponent_estimate,
)


class TestDegreeStats:
    def test_histogram(self, star):
        hist = degree_histogram(star)
        assert hist[1] == 8 and hist[8] == 1

    def test_statistics(self, star):
        st = degree_statistics(star)
        assert st.min == 1 and st.max == 8
        assert st.mean == pytest.approx(16 / 9)
        assert st.frac_low_degree == 1.0  # all below 32

    def test_empty(self):
        g = from_edges(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        st = degree_statistics(g)
        assert st.mean == 0.0 and st.gini == 0.0

    def test_gini_zero_for_regular_graph(self, triangle):
        assert degree_statistics(triangle).gini == pytest.approx(0.0, abs=1e-9)

    def test_gini_positive_for_star(self, star):
        assert degree_statistics(star).gini > 0.3


class TestComponents:
    def test_single_component(self, triangle):
        comp = connected_components(triangle)
        assert np.unique(comp).shape[0] == 1

    def test_two_components(self):
        g = from_edges(np.array([0, 2]), np.array([1, 3]))
        comp = connected_components(g)
        assert np.unique(comp).shape[0] == 2
        assert comp[0] == comp[1] and comp[2] == comp[3]
        assert comp[0] != comp[2]

    def test_isolated_vertices_are_own_components(self):
        g = from_edges(np.array([0]), np.array([1]), num_vertices=4)
        comp = connected_components(g)
        assert np.unique(comp).shape[0] == 3

    def test_labels_are_compact(self, two_cliques):
        comp = connected_components(two_cliques)
        assert set(np.unique(comp)) == {0}

    def test_largest_component_fraction(self):
        g = from_edges(np.array([0, 1]), np.array([1, 2]), num_vertices=6)
        assert largest_component_fraction(g) == pytest.approx(0.5)

    def test_long_path(self):
        n = 500
        g = from_edges(np.arange(n - 1), np.arange(1, n))
        assert np.unique(connected_components(g)).shape[0] == 1


class TestSymmetry:
    def test_symmetric_after_build(self, small_web):
        assert is_symmetric(small_web)

    def test_asymmetric_detected(self):
        g = from_edges(np.array([0]), np.array([1]), symmetrize=False)
        assert not is_symmetric(g)

    def test_weight_mismatch_detected(self):
        from repro.graph.csr import CSRGraph

        g = CSRGraph(
            np.array([0, 1, 2]),
            np.array([1, 0]),
            np.array([1.0, 2.0], dtype=np.float32),
        )
        assert not is_symmetric(g)

    def test_self_loops(self):
        g = from_edges(np.array([0, 1]), np.array([0, 2]), dedupe=False)
        assert has_self_loops(g)


class TestPowerLaw:
    def test_heavy_tail_has_low_exponent(self, small_web):
        alpha = power_law_exponent_estimate(small_web)
        assert 1.0 < alpha < 3.5

    def test_no_tail_returns_inf(self):
        g = from_edges(np.array([0]), np.array([1]))
        assert power_law_exponent_estimate(g, d_min=5) == float("inf")
