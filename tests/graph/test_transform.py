"""Tests for graph transformations."""

import numpy as np
import pytest

from repro.errors import GraphConstructionError
from repro.graph.build import from_edges
from repro.graph.properties import is_symmetric
from repro.graph.transform import (
    add_edges,
    remove_edges,
    update_weights,
    community_subgraph,
    induced_subgraph,
    largest_component,
    permute_vertices,
    remove_self_loops,
)


class TestInducedSubgraph:
    def test_clique_extraction(self, two_cliques):
        sub, mapping = induced_subgraph(two_cliques, np.arange(5))
        assert sub.num_vertices == 5
        assert sub.num_undirected_edges == 10  # K5
        assert mapping.tolist() == [0, 1, 2, 3, 4]

    def test_preserves_symmetry(self, small_web):
        sub, _ = induced_subgraph(small_web, np.arange(0, 500, 2))
        assert is_symmetric(sub)

    def test_cross_edges_dropped(self, two_cliques):
        sub, _ = induced_subgraph(two_cliques, np.array([4, 5]))
        # Only the bridge edge survives.
        assert sub.num_undirected_edges == 1

    def test_duplicates_rejected(self, triangle):
        with pytest.raises(GraphConstructionError):
            induced_subgraph(triangle, np.array([0, 0]))

    def test_out_of_range_rejected(self, triangle):
        with pytest.raises(GraphConstructionError):
            induced_subgraph(triangle, np.array([5]))

    def test_weights_carried(self, weighted_triangle):
        sub, _ = induced_subgraph(weighted_triangle, np.array([0, 1]))
        assert sub.weights[0] == pytest.approx(1.0)


class TestLargestComponent:
    def test_selects_biggest(self):
        g = from_edges(np.array([0, 1, 5]), np.array([1, 2, 6]), num_vertices=8)
        sub, mapping = largest_component(g)
        assert sub.num_vertices == 3
        assert set(mapping.tolist()) == {0, 1, 2}

    def test_connected_graph_unchanged(self, triangle):
        sub, mapping = largest_component(triangle)
        assert sub == triangle

    def test_empty(self):
        g = from_edges(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        sub, mapping = largest_component(g)
        assert sub.num_vertices == 0


class TestPermute:
    def test_roundtrip(self, small_road):
        perm = np.random.default_rng(0).permutation(small_road.num_vertices)
        permuted = permute_vertices(small_road, perm)
        assert permuted.num_edges == small_road.num_edges
        assert is_symmetric(permuted)
        # Degree multiset preserved; degrees follow the permutation.
        assert np.array_equal(permuted.degrees, small_road.degrees[perm])

    def test_identity(self, triangle):
        assert permute_vertices(triangle, np.arange(3)) == triangle

    def test_non_permutation_rejected(self, triangle):
        with pytest.raises(GraphConstructionError):
            permute_vertices(triangle, np.array([0, 0, 2]))


class TestRemoveSelfLoops:
    def test_removes_only_loops(self):
        g = from_edges(np.array([0, 1]), np.array([0, 2]), dedupe=False)
        clean = remove_self_loops(g)
        assert clean.num_vertices == g.num_vertices
        src = clean.source_ids()
        assert np.all(src != clean.targets)

    def test_noop_without_loops(self, triangle):
        assert remove_self_loops(triangle) == triangle


class TestCommunitySubgraph:
    def test_extracts_community(self, two_cliques):
        labels = np.array([0] * 5 + [1] * 5)
        sub, mapping = community_subgraph(two_cliques, labels, 1)
        assert sub.num_vertices == 5
        assert set(mapping.tolist()) == {5, 6, 7, 8, 9}

    def test_missing_community_rejected(self, triangle):
        with pytest.raises(GraphConstructionError):
            community_subgraph(triangle, np.zeros(3, dtype=int), 7)


class TestAddEdges:
    def test_inserts_both_directions(self, triangle):
        g = add_edges(triangle, [0], [3], num_vertices=4)
        assert g.num_vertices == 4
        assert 3 in g.neighbors(0).tolist()
        assert 0 in g.neighbors(3).tolist()
        assert is_symmetric(g)

    def test_reinsert_existing_is_idempotent(self, weighted_triangle):
        before = weighted_triangle
        after = add_edges(before, [0], [1], [0.5])  # existing weight higher
        assert after.num_edges == before.num_edges
        assert is_symmetric(after)

    def test_duplicate_within_call_coalesces(self, triangle):
        g = add_edges(triangle, [0, 3, 3], [3, 0, 0], [1.0, 2.0, 3.0],
                      num_vertices=4)
        # one undirected edge -> exactly two arcs, combine="max" keeps 3.0
        assert g.num_edges == triangle.num_edges + 2
        idx = g.neighbors(0).tolist().index(3)
        assert g.weights[g.offsets[0] + idx] == 3.0

    def test_growth_without_edges(self, triangle):
        g = add_edges(triangle, [], [], num_vertices=5)
        assert g.num_vertices == 5
        assert g.num_edges == triangle.num_edges
        assert g.neighbors(4).shape[0] == 0

    def test_shrinking_rejected(self, triangle):
        with pytest.raises(GraphConstructionError):
            add_edges(triangle, [0], [1], num_vertices=2)

    def test_out_of_range_rejected(self, triangle):
        with pytest.raises(GraphConstructionError):
            add_edges(triangle, [0], [7])

    def test_nonfinite_weight_rejected(self, triangle):
        with pytest.raises(GraphConstructionError):
            add_edges(triangle, [0], [3], [float("nan")], num_vertices=4)


class TestRemoveEdges:
    def test_removes_both_directions(self, triangle):
        g = remove_edges(triangle, [0], [1])
        assert 1 not in g.neighbors(0).tolist()
        assert 0 not in g.neighbors(1).tolist()
        assert g.num_edges == triangle.num_edges - 2
        assert is_symmetric(g)

    def test_missing_edge_raises_by_default(self, path6):
        with pytest.raises(GraphConstructionError):
            remove_edges(path6, [0], [5])  # path ends are not adjacent

    def test_duplicate_within_call_coalesces(self, triangle):
        # Existence is checked against the input graph, so naming the same
        # edge twice in one call removes it once (sequential double-removal
        # is the stream layer's job to reject).
        g = remove_edges(triangle, [0, 0], [1, 1])
        assert g.num_edges == triangle.num_edges - 2

    def test_missing_ignore_skips(self, triangle):
        g = remove_edges(triangle, [0, 0], [1, 1], missing="ignore")
        assert g.num_edges == triangle.num_edges - 2

    def test_bad_missing_mode_rejected(self, triangle):
        with pytest.raises(GraphConstructionError):
            remove_edges(triangle, [0], [1], missing="maybe")


class TestUpdateWeights:
    def test_updates_both_directions(self, weighted_triangle):
        g = update_weights(weighted_triangle, [0], [1], [9.0])
        i01 = g.neighbors(0).tolist().index(1)
        i10 = g.neighbors(1).tolist().index(0)
        assert g.weights[g.offsets[0] + i01] == 9.0
        assert g.weights[g.offsets[1] + i10] == 9.0
        assert g.num_edges == weighted_triangle.num_edges

    def test_duplicate_update_last_wins(self, weighted_triangle):
        g = update_weights(weighted_triangle, [0, 0], [1, 1], [5.0, 7.0])
        idx = g.neighbors(0).tolist().index(1)
        assert g.weights[g.offsets[0] + idx] == 7.0

    def test_missing_edge_raises_by_default(self, triangle):
        with pytest.raises(GraphConstructionError):
            update_weights(triangle, [0], [7], [1.0])

    def test_structure_untouched(self, weighted_triangle):
        g = update_weights(weighted_triangle, [1], [2], [4.0])
        assert np.array_equal(g.offsets, weighted_triangle.offsets)
        assert np.array_equal(g.targets, weighted_triangle.targets)
