"""Tests for graph transformations."""

import numpy as np
import pytest

from repro.errors import GraphConstructionError
from repro.graph.build import from_edges
from repro.graph.properties import is_symmetric
from repro.graph.transform import (
    community_subgraph,
    induced_subgraph,
    largest_component,
    permute_vertices,
    remove_self_loops,
)


class TestInducedSubgraph:
    def test_clique_extraction(self, two_cliques):
        sub, mapping = induced_subgraph(two_cliques, np.arange(5))
        assert sub.num_vertices == 5
        assert sub.num_undirected_edges == 10  # K5
        assert mapping.tolist() == [0, 1, 2, 3, 4]

    def test_preserves_symmetry(self, small_web):
        sub, _ = induced_subgraph(small_web, np.arange(0, 500, 2))
        assert is_symmetric(sub)

    def test_cross_edges_dropped(self, two_cliques):
        sub, _ = induced_subgraph(two_cliques, np.array([4, 5]))
        # Only the bridge edge survives.
        assert sub.num_undirected_edges == 1

    def test_duplicates_rejected(self, triangle):
        with pytest.raises(GraphConstructionError):
            induced_subgraph(triangle, np.array([0, 0]))

    def test_out_of_range_rejected(self, triangle):
        with pytest.raises(GraphConstructionError):
            induced_subgraph(triangle, np.array([5]))

    def test_weights_carried(self, weighted_triangle):
        sub, _ = induced_subgraph(weighted_triangle, np.array([0, 1]))
        assert sub.weights[0] == pytest.approx(1.0)


class TestLargestComponent:
    def test_selects_biggest(self):
        g = from_edges(np.array([0, 1, 5]), np.array([1, 2, 6]), num_vertices=8)
        sub, mapping = largest_component(g)
        assert sub.num_vertices == 3
        assert set(mapping.tolist()) == {0, 1, 2}

    def test_connected_graph_unchanged(self, triangle):
        sub, mapping = largest_component(triangle)
        assert sub == triangle

    def test_empty(self):
        g = from_edges(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        sub, mapping = largest_component(g)
        assert sub.num_vertices == 0


class TestPermute:
    def test_roundtrip(self, small_road):
        perm = np.random.default_rng(0).permutation(small_road.num_vertices)
        permuted = permute_vertices(small_road, perm)
        assert permuted.num_edges == small_road.num_edges
        assert is_symmetric(permuted)
        # Degree multiset preserved; degrees follow the permutation.
        assert np.array_equal(permuted.degrees, small_road.degrees[perm])

    def test_identity(self, triangle):
        assert permute_vertices(triangle, np.arange(3)) == triangle

    def test_non_permutation_rejected(self, triangle):
        with pytest.raises(GraphConstructionError):
            permute_vertices(triangle, np.array([0, 0, 2]))


class TestRemoveSelfLoops:
    def test_removes_only_loops(self):
        g = from_edges(np.array([0, 1]), np.array([0, 2]), dedupe=False)
        clean = remove_self_loops(g)
        assert clean.num_vertices == g.num_vertices
        src = clean.source_ids()
        assert np.all(src != clean.targets)

    def test_noop_without_loops(self, triangle):
        assert remove_self_loops(triangle) == triangle


class TestCommunitySubgraph:
    def test_extracts_community(self, two_cliques):
        labels = np.array([0] * 5 + [1] * 5)
        sub, mapping = community_subgraph(two_cliques, labels, 1)
        assert sub.num_vertices == 5
        assert set(mapping.tolist()) == {5, 6, 7, 8, 9}

    def test_missing_community_rejected(self, triangle):
        with pytest.raises(GraphConstructionError):
            community_subgraph(triangle, np.zeros(3, dtype=int), 7)
