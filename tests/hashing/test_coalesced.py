"""Tests for the coalesced-chaining hashtable variant."""

import numpy as np
import pytest

from repro.errors import HashtableFullError
from repro.graph.build import from_edges
from repro.hashing.coalesced import CoalescedHashtables


class TestCoalesced:
    def test_insert_and_accumulate(self, star):
        t = CoalescedHashtables(star)
        t.clear(0)
        t.accumulate(0, key=10, value=1.0)
        t.accumulate(0, key=10, value=2.0)
        assert t.max_key(0) == 10

    def test_chains_resolve_collisions(self, star):
        t = CoalescedHashtables(star)
        t.clear(0)
        p1 = int(t._p1[0])
        # All keys hash to the same home slot -> full chain.
        for k in range(5):
            t.accumulate(0, key=p1 * (k + 1), value=float(k + 1))
        assert t.max_key(0) == p1 * 5
        assert t.total_link_steps > 0

    def test_max_key_empty(self, star):
        t = CoalescedHashtables(star)
        t.clear(0)
        assert t.max_key(0) == -1

    def test_region_exhaustion_raises(self):
        g = from_edges(np.array([0]), np.array([1]))
        t = CoalescedHashtables(g)
        t.clear(0)
        with pytest.raises(HashtableFullError):
            for k in range(10):
                t.accumulate(0, key=1 + 3 * k, value=1.0)

    def test_matches_open_addressing_totals(self, small_road):
        from repro.hashing.hashtable import PerVertexHashtables

        rng = np.random.default_rng(5)
        labels = rng.integers(0, 40, size=small_road.num_vertices)
        open_t = PerVertexHashtables(small_road)
        co_t = CoalescedHashtables(small_road)
        for v in range(0, small_road.num_vertices, 13):
            a = open_t.accumulate_neighborhood(v, labels)
            b = co_t.accumulate_neighborhood(v, labels)
            assert open_t.entries(v).keys() == _entries(co_t, v).keys()
            for k, val in open_t.entries(v).items():
                assert _entries(co_t, v)[k] == pytest.approx(val)

    def test_memory_includes_nexts(self, star):
        from repro.hashing.hashtable import PerVertexHashtables

        assert (
            CoalescedHashtables(star).memory_bytes()
            > PerVertexHashtables(star).memory_bytes()
        )


def _entries(tables, i):
    base = int(tables._base[i])
    region = int(tables._region[i])
    keys = tables.keys[base : base + region]
    values = tables.values[base : base + region]
    occ = keys != -1
    return {int(k): float(v) for k, v in zip(keys[occ], values[occ])}
