"""Tests for GVE-LPA's per-thread collision-free hashtable."""

import numpy as np
import pytest

from repro.gpu.device import A100
from repro.hashing.collision_free import (
    CollisionFreeHashtable,
    gpu_thread_count,
    memory_footprint,
)


class TestCollisionFree:
    def test_accumulate_and_max(self):
        t = CollisionFreeHashtable(10)
        t.accumulate(3, 1.0)
        t.accumulate(7, 2.5)
        t.accumulate(3, 2.0)
        assert t.max_key() == 3
        assert sorted(t.keys) == [3, 7]

    def test_clear_touches_only_keys(self):
        t = CollisionFreeHashtable(10)
        t.accumulate(4, 1.0)
        t.clear()
        assert t.keys == []
        assert np.all(t.values == 0.0)

    def test_max_key_first_touch_tie_break(self):
        t = CollisionFreeHashtable(10)
        t.accumulate(9, 1.0)
        t.accumulate(2, 1.0)
        assert t.max_key() == 9  # first touched wins ties

    def test_empty_max(self):
        assert CollisionFreeHashtable(5).max_key() == -1

    def test_matches_per_vertex_hashtable(self, small_road):
        from repro.hashing.hashtable import PerVertexHashtables

        rng = np.random.default_rng(2)
        labels = rng.integers(0, 30, size=small_road.num_vertices)
        per_vertex = PerVertexHashtables(small_road)
        per_thread = CollisionFreeHashtable(small_road.num_vertices)
        for v in range(0, small_road.num_vertices, 11):
            a = per_vertex.accumulate_neighborhood(v, labels)
            b = per_thread.accumulate_neighborhood(small_road, v, labels)
            entries = per_vertex.entries(v)
            if entries:
                assert entries[a] == pytest.approx(max(entries.values()))
                assert entries[b] == pytest.approx(max(entries.values()))
            else:
                assert a == b == labels[v]

    def test_memory_is_O_of_V(self):
        small = CollisionFreeHashtable(100).memory_bytes()
        large = CollisionFreeHashtable(10_000).memory_bytes()
        assert large > 50 * small


class TestMemoryFootprint:
    def test_per_thread_scales_with_threads(self):
        a = memory_footprint(1000, 5000, 64)
        b = memory_footprint(1000, 5000, 1024)
        assert b["per_thread"] == 16 * a["per_thread"]
        assert b["per_vertex"] == a["per_vertex"]

    def test_per_vertex_scales_with_edges(self):
        a = memory_footprint(1000, 5000, 64)
        b = memory_footprint(1000, 50_000, 64)
        assert b["per_vertex"] == 10 * a["per_vertex"]

    def test_gpu_thread_count(self):
        assert gpu_thread_count(A100) == 108 * 2048

    def test_e3_reproduces_sk2005_oom(self):
        from repro.experiments import run_experiment

        r = run_experiment("E3")
        # The paper's OOM cell: sk-2005 fits in neither layout ...
        assert not r.values["sk-2005"]["fits_wide"]
        assert not r.values["sk-2005"]["fits_compact"]
        # ... while it-2004 fits (wide layout, no compact required).
        assert r.values["it-2004"]["fits_wide"]
        # The GPU per-thread design is orders of magnitude over budget.
        assert r.values["kmer_V1r"]["gpu_per_thread_gib"] > 10_000
