"""Tests for the scalar per-vertex hashtable (Algorithm 2 reference)."""

import numpy as np
import pytest

from repro.graph.build import from_edges
from repro.hashing.hashtable import PerVertexHashtables
from repro.hashing.primes import table_capacity
from repro.hashing.probing import ProbeStrategy
from repro.types import EMPTY_KEY


@pytest.fixture
def tables(star):
    return PerVertexHashtables(star)


class TestLayout:
    def test_buffers_are_2E(self, star):
        t = PerVertexHashtables(star)
        assert t.keys.shape[0] == 2 * star.num_edges
        assert t.values.shape[0] == 2 * star.num_edges

    def test_base_is_twice_offset(self, star):
        t = PerVertexHashtables(star)
        for i in range(star.num_vertices):
            assert t.table(i).base == 2 * star.offsets[i]

    def test_capacity_formula(self, star):
        t = PerVertexHashtables(star)
        for i in range(star.num_vertices):
            assert t.table(i).p1 == table_capacity(star.degree(i))

    def test_tables_do_not_overlap(self, small_road):
        t = PerVertexHashtables(small_road)
        for i in range(small_road.num_vertices - 1):
            view = t.table(i)
            assert view.base + view.p1 <= t.table(i + 1).base

    def test_memory_accounting_fp32_vs_fp64(self, star):
        f32 = PerVertexHashtables(star, value_dtype=np.float32)
        f64 = PerVertexHashtables(star, value_dtype=np.float64)
        assert f64.memory_bytes() > f32.memory_bytes()


class TestAccumulate:
    def test_insert_and_lookup(self, tables):
        tables.clear(0)
        tables.accumulate(0, key=42, value=2.0)
        tables.accumulate(0, key=42, value=3.0)
        assert tables.entries(0) == {42: 5.0}

    def test_distinct_keys(self, tables):
        tables.clear(0)
        for k in range(8):
            tables.accumulate(0, key=100 + k, value=1.0)
        assert len(tables.entries(0)) == 8

    def test_max_key_returns_heaviest(self, tables):
        tables.clear(0)
        tables.accumulate(0, key=5, value=1.0)
        tables.accumulate(0, key=9, value=3.0)
        tables.accumulate(0, key=7, value=2.0)
        assert tables.max_key(0) == 9

    def test_max_key_empty_table(self, tables):
        tables.clear(0)
        assert tables.max_key(0) == -1

    def test_clear_resets(self, tables):
        tables.accumulate(0, key=1, value=1.0)
        tables.clear(0)
        assert tables.entries(0) == {}
        view = tables.table(0)
        assert np.all(tables.keys[view.base : view.base + view.p1] == EMPTY_KEY)

    @pytest.mark.parametrize("strategy", list(ProbeStrategy))
    def test_full_capacity_insert_all_strategies(self, star, strategy):
        # Degree-8 hub: capacity 15; insert 15 distinct keys = 100% load.
        t = PerVertexHashtables(star, strategy=strategy)
        t.clear(0)
        view = t.table(0)
        for k in range(view.p1):
            t.accumulate(0, key=1000 + 37 * k, value=1.0)
        assert len(t.entries(0)) == view.p1

    def test_probe_counter_increases(self, tables):
        before = tables.total_probes
        tables.clear(0)
        tables.accumulate(0, key=3, value=1.0)
        assert tables.total_probes > before


class TestNeighborhood:
    def test_matches_dict_accumulation(self, small_road):
        t = PerVertexHashtables(small_road)
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 50, size=small_road.num_vertices)
        for v in range(0, small_road.num_vertices, 17):
            got = t.accumulate_neighborhood(v, labels)
            weights: dict[int, float] = {}
            for j, w in zip(small_road.neighbors(v), small_road.neighbor_weights(v)):
                if j == v:
                    continue
                weights[labels[j]] = weights.get(labels[j], 0.0) + float(w)
            if weights:
                assert weights[got] == pytest.approx(max(weights.values()))
            else:
                assert got == labels[v]

    def test_self_loops_skipped(self):
        g = from_edges(np.array([0, 0]), np.array([0, 1]), dedupe=False)
        t = PerVertexHashtables(g)
        labels = np.array([7, 9])
        assert t.accumulate_neighborhood(0, labels) == 9

    def test_isolated_vertex_keeps_label(self):
        g = from_edges(np.array([0]), np.array([1]), num_vertices=3)
        t = PerVertexHashtables(g)
        labels = np.array([0, 1, 2])
        assert t.accumulate_neighborhood(2, labels) == 2
