"""Tests for the vectorised warp-parallel hashtable."""

import numpy as np
import pytest

from repro.errors import HashtableFullError
from repro.hashing.parallel_hashtable import (
    parallel_accumulate,
    segment_index_arrays,
    segmented_clear,
    segmented_max_key,
)
from repro.hashing.probing import ProbeStrategy
from repro.types import EMPTY_KEY


def _make_tables(capacities):
    caps = np.asarray(capacities, dtype=np.int64)
    base = np.zeros(caps.shape[0], dtype=np.int64)
    np.cumsum(2 * (caps + 1)[:-1], out=base[1:])
    size = int((2 * (caps + 1)).sum())
    keys = np.full(size, EMPTY_KEY, dtype=np.int64)
    values = np.zeros(size, dtype=np.float64)
    p2 = 2 * (caps + 1) - 1
    return keys, values, base, caps, p2


class TestSegmentIndex:
    def test_basic(self):
        _, _, base, p1, _ = _make_tables([3, 7])
        flat, seg, starts = segment_index_arrays(base, p1)
        assert flat.shape[0] == 10
        assert seg.tolist() == [0] * 3 + [1] * 7
        assert starts.tolist() == [0, 3]
        assert flat[:3].tolist() == [base[0], base[0] + 1, base[0] + 2]


class TestClear:
    def test_clears_only_live_region(self):
        keys, values, base, p1, _ = _make_tables([3, 3])
        keys[:] = 9
        values[:] = 5.0
        cleared = segmented_clear(keys, values, base, p1)
        assert cleared == 6
        assert np.all(keys[base[0] : base[0] + 3] == EMPTY_KEY)
        # Slack region beyond p1 is untouched.
        assert keys[base[0] + 3] == 9

    def test_empty_tables(self):
        keys, values, base, p1, _ = _make_tables([])
        assert segmented_clear(keys, values, base, p1) == 0


class TestAccumulate:
    @pytest.mark.parametrize("strategy", list(ProbeStrategy))
    @pytest.mark.parametrize("shared", [True, False])
    def test_totals_match_dict(self, strategy, shared):
        rng = np.random.default_rng(1)
        keys_buf, values_buf, base, p1, p2 = _make_tables([7, 15, 31])
        n = 40
        entry_table = rng.integers(0, 3, size=n)
        entry_key = rng.integers(0, 8, size=n) * 101
        entry_value = rng.random(n).astype(np.float64)
        segmented_clear(keys_buf, values_buf, base, p1)
        parallel_accumulate(
            keys_buf, values_buf, base, p1, p2,
            entry_table, entry_key, entry_value, strategy, shared=shared,
        )
        for t in range(3):
            expected: dict[int, float] = {}
            for e in range(n):
                if entry_table[e] == t:
                    expected[int(entry_key[e])] = (
                        expected.get(int(entry_key[e]), 0.0) + entry_value[e]
                    )
            got = {}
            for s in range(p1[t]):
                k = keys_buf[base[t] + s]
                if k != EMPTY_KEY:
                    got[int(k)] = got.get(int(k), 0.0) + float(values_buf[base[t] + s])
            assert got.keys() == expected.keys()
            for k in expected:
                assert got[k] == pytest.approx(expected[k])

    def test_full_load_all_strategies(self):
        # 100% load: p1 distinct keys into a p1-slot table must all land.
        for strategy in ProbeStrategy:
            keys_buf, values_buf, base, p1, p2 = _make_tables([31])
            entry_key = 17 * np.arange(31, dtype=np.int64) + 5
            segmented_clear(keys_buf, values_buf, base, p1)
            res = parallel_accumulate(
                keys_buf, values_buf, base, p1, p2,
                np.zeros(31, dtype=np.int64), entry_key,
                np.ones(31, dtype=np.float64), strategy,
            )
            live = keys_buf[base[0] : base[0] + 31]
            assert np.count_nonzero(live != EMPTY_KEY) == 31
            assert res.total_probes >= 31

    def test_overfull_table_raises(self):
        keys_buf, values_buf, base, p1, p2 = _make_tables([3])
        with pytest.raises(HashtableFullError):
            parallel_accumulate(
                keys_buf, values_buf, base, p1, p2,
                np.zeros(5, dtype=np.int64),
                np.arange(5, dtype=np.int64) * 7 + 1,
                np.ones(5, dtype=np.float64),
                ProbeStrategy.LINEAR,
            )

    def test_empty_input(self):
        keys_buf, values_buf, base, p1, p2 = _make_tables([7])
        res = parallel_accumulate(
            keys_buf, values_buf, base, p1, p2,
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64), ProbeStrategy.LINEAR,
        )
        assert res.total_probes == 0

    def test_atomics_counted_only_when_shared(self):
        for shared, expect in ((True, True), (False, False)):
            keys_buf, values_buf, base, p1, p2 = _make_tables([7])
            res = parallel_accumulate(
                keys_buf, values_buf, base, p1, p2,
                np.zeros(4, dtype=np.int64),
                np.array([1, 2, 3, 1]), np.ones(4, dtype=np.float64),
                ProbeStrategy.QUADRATIC_DOUBLE, shared=shared,
            )
            assert (res.atomic_adds > 0) is expect
            assert (res.cas_attempts > 0) is expect

    def test_entry_probes_returned(self):
        keys_buf, values_buf, base, p1, p2 = _make_tables([7])
        res = parallel_accumulate(
            keys_buf, values_buf, base, p1, p2,
            np.zeros(3, dtype=np.int64), np.array([1, 2, 3]),
            np.ones(3, dtype=np.float64), ProbeStrategy.LINEAR,
        )
        assert res.entry_probes.shape[0] == 3
        assert res.entry_probes.sum() == res.total_probes

    def test_matches_scalar_reference(self, star):
        """Parallel and scalar implementations agree on every vertex."""
        from repro.hashing.hashtable import PerVertexHashtables

        rng = np.random.default_rng(3)
        labels = rng.integers(0, 5, size=star.num_vertices)
        scalar = PerVertexHashtables(star, strategy=ProbeStrategy.QUADRATIC_DOUBLE)
        expected = {
            v: scalar.accumulate_neighborhood(v, labels)
            for v in range(star.num_vertices)
        }

        par = PerVertexHashtables(star, strategy=ProbeStrategy.QUADRATIC_DOUBLE)
        vertices = np.arange(star.num_vertices, dtype=np.int64)
        from repro.core._gather import gather_edges

        gather = gather_edges(star, vertices)
        targets = star.targets[gather.edge_index]
        non_loop = targets != vertices[gather.table_id]
        base = par.bases[vertices]
        p1 = par.capacities[vertices]
        p2 = par.secondary_primes[vertices]
        segmented_clear(par.keys, par.values, base, p1)
        parallel_accumulate(
            par.keys, par.values, base, p1, p2,
            gather.table_id[non_loop], labels[targets[non_loop]],
            star.weights[gather.edge_index][non_loop].astype(par.values.dtype),
            ProbeStrategy.QUADRATIC_DOUBLE,
        )
        got = segmented_max_key(par.keys, par.values, base, p1, labels[vertices])
        for v in range(star.num_vertices):
            # Both pick a maximal label; weights must match (ties may differ).
            assert scalar.entries(v) == {
                int(k): pytest.approx(float(val))
                for k, val in par_entries(par, v).items()
            }
            assert got[v] in scalar.entries(v) or got[v] == expected[v]


def par_entries(tables, i):
    view = tables.table(i)
    keys = tables.keys[view.base : view.base + view.p1]
    values = tables.values[view.base : view.base + view.p1]
    occ = keys != EMPTY_KEY
    return {int(k): float(v) for k, v in zip(keys[occ], values[occ])}


class TestMaxKey:
    def test_first_max_in_slot_order(self):
        keys_buf, values_buf, base, p1, p2 = _make_tables([7])
        segmented_clear(keys_buf, values_buf, base, p1)
        keys_buf[base[0] + 2] = 50
        values_buf[base[0] + 2] = 3.0
        keys_buf[base[0] + 5] = 60
        values_buf[base[0] + 5] = 3.0
        out = segmented_max_key(keys_buf, values_buf, base, p1, np.array([-1]))
        assert out[0] == 50  # lowest slot wins the tie

    def test_fallback_for_empty(self):
        keys_buf, values_buf, base, p1, p2 = _make_tables([7, 7])
        segmented_clear(keys_buf, values_buf, base, p1)
        keys_buf[base[1]] = 9
        values_buf[base[1]] = 1.0
        out = segmented_max_key(
            keys_buf, values_buf, base, p1, np.array([111, 222])
        )
        assert out.tolist() == [111, 9]


class TestScalarTail:
    """The scalar tail must be indistinguishable from the vectorized rounds.

    Small pending sets (``<= _SCALAR_TAIL_MAX``) finish in a pure-Python
    loop; these tests pin it bit-for-bit against the vectorized path by
    monkeypatching the threshold to zero (tail disabled).
    """

    def _accumulate(self, capacities, entry_table, entry_key, strategy,
                    shared=True):
        keys_buf, values_buf, base, p1, p2 = _make_tables(capacities)
        segmented_clear(keys_buf, values_buf, base, p1)
        res = parallel_accumulate(
            keys_buf, values_buf, base, p1, p2,
            entry_table, entry_key,
            np.ones(entry_key.shape[0], dtype=np.float64),
            strategy, shared=shared,
        )
        return keys_buf, values_buf, res

    def _assert_same(self, capacities, entry_table, entry_key, strategy,
                     monkeypatch, shared=True):
        from repro.hashing import parallel_hashtable as ph

        k_tail, v_tail, r_tail = self._accumulate(
            capacities, entry_table, entry_key, strategy, shared
        )
        monkeypatch.setattr(ph, "_SCALAR_TAIL_MAX", 0)
        k_vec, v_vec, r_vec = self._accumulate(
            capacities, entry_table, entry_key, strategy, shared
        )
        assert np.array_equal(k_tail, k_vec)
        assert np.array_equal(v_tail, v_vec)
        assert r_tail.total_probes == r_vec.total_probes
        assert r_tail.rounds == r_vec.rounds
        assert r_tail.cas_attempts == r_vec.cas_attempts
        assert r_tail.atomic_adds == r_vec.atomic_adds
        assert r_tail.atomic_conflicts == r_vec.atomic_conflicts
        assert np.array_equal(r_tail.entry_probes, r_vec.entry_probes)

    @pytest.mark.parametrize("strategy", list(ProbeStrategy))
    @pytest.mark.parametrize("shared", [True, False])
    def test_small_wave_matches_vectorized(self, strategy, shared, monkeypatch):
        rng = np.random.default_rng(11)
        entry_table = np.sort(rng.integers(0, 3, 20)).astype(np.int64)
        entry_key = rng.integers(0, 50, 20).astype(np.int64)
        self._assert_same([7, 15, 31], entry_table, entry_key, strategy,
                          monkeypatch, shared)

    @pytest.mark.parametrize("strategy", list(ProbeStrategy))
    def test_probe_wraparound_past_int64(self, strategy, monkeypatch):
        # 127 keys sharing one probe sequence into a 127-slot table: one
        # entry lands per round, so quadratic-double's doubling increment
        # overflows int64 around round 63.  The tail must reproduce the
        # vectorized path's wraparound semantics exactly.
        p1 = 127
        entry_key = 5 + np.arange(p1, dtype=np.int64) * p1 * (2 * (p1 + 1) - 1)
        entry_table = np.zeros(p1, dtype=np.int64)
        self._assert_same([p1], entry_table, entry_key, strategy, monkeypatch)

    def test_overfull_raises_inside_tail(self):
        # 5 entries go straight to the scalar tail; only 3 slots exist.
        keys_buf, values_buf, base, p1, p2 = _make_tables([3])
        segmented_clear(keys_buf, values_buf, base, p1)
        with pytest.raises(HashtableFullError):
            parallel_accumulate(
                keys_buf, values_buf, base, p1, p2,
                np.zeros(5, dtype=np.int64),
                np.arange(5, dtype=np.int64) * 7 + 1,
                np.ones(5, dtype=np.float64),
                ProbeStrategy.QUADRATIC_DOUBLE,
            )
