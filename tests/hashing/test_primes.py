"""Tests for capacity/prime utilities."""

import numpy as np
import pytest

from repro.hashing.primes import is_prime, next_pow2, secondary_prime, table_capacity


class TestNextPow2:
    @pytest.mark.parametrize(
        "x,expected",
        [(0, 1), (1, 2), (2, 4), (3, 4), (4, 8), (7, 8), (8, 16), (1023, 1024), (1024, 2048)],
    )
    def test_scalar(self, x, expected):
        assert next_pow2(x) == expected

    def test_strictly_greater(self):
        for x in range(1, 200):
            np2 = next_pow2(x)
            assert np2 > x
            assert np2 & (np2 - 1) == 0  # power of two

    def test_array_matches_scalar(self):
        xs = np.arange(0, 5000)
        arr = next_pow2(xs)
        assert all(arr[i] == next_pow2(int(i)) for i in range(0, 5000, 97))

    def test_large_values(self):
        assert next_pow2(2**40) == 2**41


class TestCapacity:
    def test_capacity_fits_degree(self):
        # Every distinct neighbour label must fit: capacity >= degree.
        degrees = np.arange(1, 2000)
        caps = table_capacity(degrees)
        assert np.all(caps >= degrees)

    def test_capacity_fits_reserved_region(self):
        # The table must fit in the 2*degree reserved slots (Figure 2).
        degrees = np.arange(1, 2000)
        caps = table_capacity(degrees)
        assert np.all(caps <= 2 * degrees)

    def test_degree_zero_gets_one_slot(self):
        assert table_capacity(0) == 1

    def test_mersenne_shape(self):
        # Capacities are 2^k - 1, so mod can serve as the hash.
        caps = table_capacity(np.arange(1, 300))
        assert np.all(((caps + 1) & caps) == 0)


class TestSecondaryPrime:
    def test_strictly_greater_than_p1(self):
        p1 = table_capacity(np.arange(1, 1000))
        p2 = secondary_prime(p1)
        assert np.all(p2 > p1)

    def test_coprime_with_p1(self):
        # Consecutive Mersenne numbers share no factor.
        import math

        for d in range(1, 500, 7):
            p1 = int(table_capacity(d))
            p2 = int(secondary_prime(p1))
            assert math.gcd(p1, p2) == 1


class TestIsPrime:
    @pytest.mark.parametrize("n", [2, 3, 5, 7, 31, 127, 8191])
    def test_primes(self, n):
        assert is_prime(n)

    @pytest.mark.parametrize("n", [0, 1, 4, 15, 255, 511])
    def test_non_primes(self, n):
        assert not is_prime(n)
