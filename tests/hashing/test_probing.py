"""Tests for probe-sequence strategies."""

import numpy as np
import pytest

from repro.hashing.probing import (
    ProbeStrategy,
    probe_advance,
    probe_slot,
    probe_start,
)


def _sequence(strategy, key=12345, p1=127, p2=255, steps=10):
    keys = np.asarray([key])
    p2a = np.asarray([p2])
    i, di = probe_start(keys, p2a, strategy)
    slots = [int(probe_slot(i, np.asarray([p1]))[0])]
    for _ in range(steps):
        i, di = probe_advance(i, di, keys, p2a, strategy)
        slots.append(int(probe_slot(i, np.asarray([p1]))[0]))
    return slots


class TestStart:
    def test_first_slot_is_key_mod_p1(self):
        for strategy in ProbeStrategy:
            assert _sequence(strategy, key=1000, p1=127)[0] == 1000 % 127

    def test_double_step_is_key_dependent(self):
        keys = np.asarray([10, 20])
        p2 = np.asarray([31, 31])
        _, di = probe_start(keys, p2, ProbeStrategy.DOUBLE)
        assert di[0] == 11 and di[1] == 21

    def test_double_step_never_zero(self):
        keys = np.asarray([0, 31, 62])
        p2 = np.asarray([31, 31, 31])
        _, di = probe_start(keys, p2, ProbeStrategy.DOUBLE)
        assert np.all(di >= 1)


class TestAdvance:
    def test_linear_steps_by_one(self):
        slots = _sequence(ProbeStrategy.LINEAR, key=5, p1=127)
        assert slots[:4] == [5, 6, 7, 8]

    def test_quadratic_doubles(self):
        slots = _sequence(ProbeStrategy.QUADRATIC, key=0, p1=1023)
        # offsets: 0, +1, +2, +4, +8 -> 0,1,3,7,15
        assert slots[:5] == [0, 1, 3, 7, 15]

    def test_double_constant_stride(self):
        key, p1, p2 = 40, 127, 255
        slots = _sequence(ProbeStrategy.DOUBLE, key=key, p1=p1, p2=p2)
        stride = 1 + key % p2
        diffs = {(slots[k + 1] - slots[k]) % p1 for k in range(5)}
        assert diffs == {stride % p1}

    def test_quadratic_double_matches_paper_recurrence(self):
        # Algorithm 2: i += di; di = 2*di + (k mod p2).
        key, p1, p2 = 77, 127, 255
        i, di = key, 1
        expected = [key % p1]
        for _ in range(5):
            i += di
            di = 2 * di + (key % p2)
            expected.append(i % p1)
        assert _sequence(ProbeStrategy.QUADRATIC_DOUBLE, key=key, p1=p1, p2=p2)[:6] == expected

    def test_advance_does_not_mutate_inputs(self):
        keys = np.asarray([3])
        p2 = np.asarray([31])
        i, di = probe_start(keys, p2, ProbeStrategy.QUADRATIC)
        i0, di0 = i.copy(), di.copy()
        probe_advance(i, di, keys, p2, ProbeStrategy.QUADRATIC)
        assert np.array_equal(i, i0) and np.array_equal(di, di0)


class TestMeta:
    def test_cache_friendliness(self):
        assert ProbeStrategy.LINEAR.cache_friendly
        assert not ProbeStrategy.DOUBLE.cache_friendly

    def test_enum_values_are_figure_labels(self):
        assert ProbeStrategy.QUADRATIC_DOUBLE.value == "quadratic-double"
