"""Tests for the CUDA-register-faithful (uint32-wrap) probing mode."""

import numpy as np
import pytest

from repro.hashing.probing import (
    UINT32_MASK,
    ProbeStrategy,
    probe_advance,
    probe_slot,
    probe_start,
)


def _run(strategy, key, p1, p2, steps, wrap32):
    keys = np.asarray([key], dtype=np.int64)
    p2a = np.asarray([p2], dtype=np.int64)
    i, di = probe_start(keys, p2a, strategy, wrap32=wrap32)
    slots = [int(probe_slot(i, np.asarray([p1]))[0])]
    for _ in range(steps):
        i, di = probe_advance(i, di, keys, p2a, strategy, wrap32=wrap32)
        slots.append(int(probe_slot(i, np.asarray([p1]))[0]))
    return slots, int(i[0]), int(di[0])


class TestAgreementBeforeOverflow:
    @pytest.mark.parametrize("strategy", list(ProbeStrategy))
    def test_sequences_match_for_small_steps(self, strategy):
        """Below 2^32 (first ~18 doublings), wrapping is invisible."""
        a, _, _ = _run(strategy, key=123457, p1=8191, p2=16383, steps=15,
                       wrap32=False)
        b, _, _ = _run(strategy, key=123457, p1=8191, p2=16383, steps=15,
                       wrap32=True)
        assert a == b

    def test_state_stays_in_32_bits(self):
        _, i, di = _run(ProbeStrategy.QUADRATIC_DOUBLE, key=99, p1=127,
                        p2=255, steps=100, wrap32=True)
        assert 0 <= i <= int(UINT32_MASK)
        assert 0 <= di <= int(UINT32_MASK)


class TestDivergenceAfterOverflow:
    def test_doubling_overflows_and_diverges(self):
        """After ~32 doublings the wrapped sequence departs from int64."""
        a, _, _ = _run(ProbeStrategy.QUADRATIC, key=7, p1=8191, p2=16383,
                       steps=50, wrap32=False)
        b, _, _ = _run(ProbeStrategy.QUADRATIC, key=7, p1=8191, p2=16383,
                       steps=50, wrap32=True)
        assert a[:25] == b[:25]
        assert a != b

    def test_wrap_freezes_pure_quadratic(self):
        """In 32-bit registers a power-of-two step doubles to exactly 0 at
        the 32nd collision: pure quadratic probing freezes on one slot —
        the register-level failure mode of the paper's worst strategy."""
        slots, _, di = _run(ProbeStrategy.QUADRATIC, key=5, p1=8191,
                            p2=16383, steps=100, wrap32=True)
        assert di == 0
        tail = slots[-40:]
        assert len(set(tail)) == 1  # stuck

    def test_quadratic_double_survives_wrap(self):
        """The + (k mod p2) term keeps the hybrid's step alive past 2^32."""
        slots, _, di = _run(ProbeStrategy.QUADRATIC_DOUBLE, key=5, p1=8191,
                            p2=16383, steps=100, wrap32=True)
        assert di != 0
        assert len(set(slots[-40:])) > 10  # still exploring


class TestLinearUnaffected:
    def test_linear_never_wraps_in_practice(self):
        a, _, _ = _run(ProbeStrategy.LINEAR, key=3, p1=127, p2=255,
                       steps=500, wrap32=False)
        b, _, _ = _run(ProbeStrategy.LINEAR, key=3, p1=127, p2=255,
                       steps=500, wrap32=True)
        assert a == b
