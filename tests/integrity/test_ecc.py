"""Tests for the SEC-DED ECC device model."""

from dataclasses import replace

import numpy as np
import pytest

from repro.errors import EccError, KernelLaunchError
from repro.gpu.device import A100, DeviceSpec
from repro.gpu.memory import MemoryModel
from repro.integrity.ecc import SecDedModel


class TestDeviceSpec:
    def test_ecc_on_by_default(self):
        assert A100.ecc_enabled
        assert A100.ecc_word_bytes == 8

    def test_scaled_preserves_ecc_fields(self):
        small = A100.scaled(0.25)
        assert small.ecc_enabled == A100.ecc_enabled
        assert small.ecc_word_bytes == A100.ecc_word_bytes

    def test_bad_word_size_rejected(self):
        with pytest.raises(KernelLaunchError):
            replace(A100, ecc_word_bytes=0)


class TestMemoryModelEcc:
    def test_ecc_words_rounds_up(self):
        mem = MemoryModel(A100)
        assert mem.ecc_words(0) == 0
        assert mem.ecc_words(1) == 1
        assert mem.ecc_words(8) == 1
        assert mem.ecc_words(9) == 2

    def test_secded_classification(self):
        mem = MemoryModel(A100)
        assert mem.secded_classify(0) == "clean"
        assert mem.secded_classify(1) == "corrected"
        assert mem.secded_classify(2) == "detected"
        assert mem.secded_classify(3) == "silent"

    def test_ecc_disabled_means_silent(self):
        mem = MemoryModel(replace(A100, ecc_enabled=False))
        assert mem.secded_classify(1) == "silent"
        assert mem.secded_classify(2) == "silent"


class TestSecDedModel:
    def test_zero_ber_is_always_clean(self):
        ecc = SecDedModel(A100, ber=0.0)
        for _ in range(10):
            corrected, detected, silent = ecc.scrub(1 << 20)
            assert (corrected, detected, silent) == (0, 0, 0)
        assert ecc.passes == 10
        assert ecc.corrected == 0

    def test_single_bit_upsets_are_corrected_and_counted(self):
        # Low BER over a modest array: upsets land in distinct words with
        # overwhelming probability, so every one is corrected.
        ecc = SecDedModel(A100, ber=1e-7, seed=3)
        total = 0
        for _ in range(50):
            corrected, detected, silent = ecc.scrub(1 << 16)
            assert detected == 0 and silent == 0
            total += corrected
        assert total > 0
        assert ecc.corrected == total

    def test_double_bit_upset_raises_ecc_error(self):
        # One ECC word, expected two upset bits per pass: the Poisson draw
        # lands exactly 2 bits in the word often; scan seeds until it does.
        for seed in range(50):
            ecc = SecDedModel(A100, ber=2 / 64, seed=seed)
            try:
                ecc.scrub(8)
            except EccError:
                assert ecc.detected >= 1
                return
        pytest.fail("no double-bit detection in 50 seeds")

    def test_raise_on_detect_false_counts_instead(self):
        hits = 0
        for seed in range(50):
            ecc = SecDedModel(A100, ber=2 / 64, seed=seed)
            _, detected, _ = ecc.scrub(8, raise_on_detect=False)
            hits += detected
        assert hits > 0

    def test_deterministic_per_pass(self):
        a = SecDedModel(A100, ber=1e-6, seed=9)
        b = SecDedModel(A100, ber=1e-6, seed=9)
        for _ in range(5):
            assert a.scrub(1 << 18, raise_on_detect=False) == \
                b.scrub(1 << 18, raise_on_detect=False)

    def test_retry_redraws_the_upset_pattern(self):
        # The pass counter advances the RNG stream, so a detected upset
        # does not recur deterministically on the retried scrub — the
        # transient-fault contract EccError relies on.
        ecc = SecDedModel(A100, ber=2 / 64, seed=0)
        outcomes = {ecc.scrub(8, raise_on_detect=False) for _ in range(20)}
        assert len(outcomes) > 1

    def test_as_dict_shape(self):
        ecc = SecDedModel(A100, ber=0.0)
        ecc.scrub(64)
        doc = ecc.as_dict()
        assert doc["passes"] == 1
        for key in ("corrected", "detected", "silent"):
            assert doc[key] == 0
