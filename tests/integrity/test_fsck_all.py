"""Tests for the unified at-rest audit (``fsck_all`` / ``repro fsck --all``)."""

import json
import zlib

import numpy as np
import pytest

from repro.core.config import LPAConfig, ResilienceConfig
from repro.core.lpa import nu_lpa
from repro.graph.generators import web_graph
from repro.integrity import fsck_all
from repro.integrity.soak import flip_bit
from repro.service.read import SnapshotCatalog
from repro.stream.delta import DeltaBatch
from repro.stream.epoch import EpochJournal, EpochState
from repro.stream.log import DeltaLog

ALL_KINDS = {
    "checkpoint", "wal", "epoch-journal", "snapshot-catalog", "service-journal"
}


def build_tree(root):
    """One directory tree containing every durable store kind."""
    graph = web_graph(60, seed=2)
    nu_lpa(
        graph, LPAConfig(max_iterations=4), warn_on_no_convergence=False,
        resilience=ResilienceConfig(
            checkpoint_dir=root / "ckpt", checkpoint_every=1,
        ),
    )

    log = DeltaLog(root / "stream" / "wal")
    log.append(DeltaBatch(ops=(), num_vertices=60))
    log.append(DeltaBatch(ops=(), num_vertices=61))

    journal = EpochJournal(root / "stream" / "epochs")
    journal.save(EpochState(epoch=0, labels=np.arange(60, dtype=np.int64)))

    catalog = SnapshotCatalog(root / "snap")
    catalog.publish("job-a", np.arange(60, dtype=np.int64))

    service = root / "service"
    (service / "jobs").mkdir(parents=True)
    (service / "labels").mkdir()
    labels = np.arange(60, dtype=np.int64)
    with open(service / "labels" / "job-a.npz", "wb") as fh:
        np.savez(fh, labels=labels)
    crc = zlib.crc32(np.ascontiguousarray(labels).tobytes())
    (service / "jobs" / "job-a.json").write_text(
        json.dumps({"version": 1, "job_id": "job-a", "labels_crc32": crc})
    )
    return root


@pytest.fixture()
def tree(tmp_path):
    return build_tree(tmp_path / "tree")


class TestCleanTree:
    def test_all_store_kinds_discovered_and_clean(self, tree):
        report = fsck_all(tree)
        assert {s.kind for s in report.stores} == ALL_KINDS
        assert report.ok
        assert report.damaged == 0
        assert report.exit_code == 0

    def test_as_dict_schema(self, tree):
        doc = fsck_all(tree).as_dict()
        assert doc["schema"] == "repro.integrity/fsck"
        assert doc["version"] == 1
        assert doc["ok"] is True
        assert doc["error"] == ""
        assert doc["summary"]["stores"] == len(doc["stores"])
        assert doc["summary"]["damaged"] == 0
        assert doc["summary"]["entries"] > 0
        for store in doc["stores"]:
            assert store["kind"] in ALL_KINDS
            for finding in store["findings"]:
                assert finding["status"] == "ok"


def _damaged_store(report, kind):
    stores = [s for s in report.stores if s.kind == kind]
    assert stores, f"store kind {kind} not discovered"
    return [s for s in stores if not s.ok]


class TestDamage:
    def test_checkpoint_bit_rot(self, tree):
        victim = sorted((tree / "ckpt").glob("ckpt-*.npz"))[0]
        flip_bit(victim, victim.stat().st_size // 2, 3)
        report = fsck_all(tree)
        assert _damaged_store(report, "checkpoint")
        assert report.exit_code == 1

    def test_wal_mid_log_corruption(self, tree):
        # Damage the *first* frame (an acknowledged batch before the
        # committed head): that is real corruption, not a torn tail.
        victim = sorted((tree / "stream" / "wal").glob("segment-*.wal"))[0]
        flip_bit(victim, 22, 1)
        report = fsck_all(tree)
        assert _damaged_store(report, "wal")
        assert report.exit_code == 1

    def test_epoch_journal_bit_rot(self, tree):
        victim = sorted((tree / "stream" / "epochs").glob("epoch-*.npz"))[0]
        flip_bit(victim, victim.stat().st_size // 2, 0)
        report = fsck_all(tree)
        assert _damaged_store(report, "epoch-journal")
        assert report.exit_code == 1

    def test_snapshot_bit_rot(self, tree):
        # Published snapshots live in a per-job subdirectory of the catalog.
        victim = sorted((tree / "snap").rglob("v*.snap"))[0]
        flip_bit(victim, 16, 5)  # inside the JSON header
        report = fsck_all(tree)
        assert _damaged_store(report, "snapshot-catalog")
        assert report.exit_code == 1

    def test_service_labels_crc_mismatch(self, tree):
        labels_path = tree / "service" / "labels" / "job-a.npz"
        with open(labels_path, "wb") as fh:
            np.savez(fh, labels=np.zeros(60, dtype=np.int64))
        report = fsck_all(tree)
        damaged = _damaged_store(report, "service-journal")
        assert damaged
        assert "CRC" in damaged[0].findings[0].detail

    def test_service_job_record_unparseable(self, tree):
        (tree / "service" / "jobs" / "job-a.json").write_text("{not json")
        report = fsck_all(tree)
        assert _damaged_store(report, "service-journal")
        assert report.exit_code == 1

    def test_damage_in_one_store_does_not_hide_others(self, tree):
        victim = sorted((tree / "snap").rglob("v*.snap"))[0]
        flip_bit(victim, 16, 5)
        report = fsck_all(tree)
        clean = [s for s in report.stores if s.kind != "snapshot-catalog"]
        assert all(s.ok for s in clean)
        assert {s.kind for s in report.stores} == ALL_KINDS


class TestRecoverableFindings:
    def test_stale_tmp_files_do_not_count_as_damage(self, tree):
        snap_store = sorted((tree / "snap").rglob("v*.snap"))[0].parent
        (snap_store / ".tmp-999-v3.snap").write_bytes(b"partial")
        (tree / "stream" / "epochs" / ".tmp-999-e1.npz").write_bytes(b"junk")
        report = fsck_all(tree)
        assert report.exit_code == 0
        stale = [
            f for s in report.stores for f in s.findings
            if f.status == "stale-tmp"
        ]
        assert len(stale) == 2


class TestUnreadableRoot:
    def test_missing_root_is_exit_2(self, tmp_path):
        report = fsck_all(tmp_path / "does-not-exist")
        assert report.error
        assert not report.ok
        assert report.exit_code == 2
        assert report.as_dict()["stores"] == []

    def test_root_that_is_a_file_is_exit_2(self, tmp_path):
        target = tmp_path / "plain-file"
        target.write_text("not a directory")
        assert fsck_all(target).exit_code == 2


class TestEmptyTree:
    def test_no_stores_is_clean(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        report = fsck_all(empty)
        assert report.exit_code == 0
        assert report.stores == []
