"""Unit tests for the ABFT integrity guard."""

import numpy as np
import pytest

from repro.core.config import LPAConfig
from repro.core.engine_hashtable import HashtableEngine
from repro.core.pruning import Frontier
from repro.errors import ConfigurationError, CorruptionDetectedError, IntegrityError
from repro.graph.generators import web_graph
from repro.integrity import IntegrityConfig, IntegrityGuard
from repro.integrity.guard import array_crc32
from repro.observe.trace import Tracer


@pytest.fixture(scope="module")
def graph():
    return web_graph(150, seed=5)


def _guard(graph, **overrides) -> IntegrityGuard:
    return IntegrityGuard(
        graph, LPAConfig(), IntegrityConfig(**overrides), tracer=None
    )


class TestConfig:
    def test_defaults_valid(self):
        cfg = IntegrityConfig()
        assert cfg.enabled and cfg.scrub_interval == 4

    def test_bad_intervals_rejected(self):
        with pytest.raises(ConfigurationError):
            IntegrityConfig(scrub_interval=0)
        with pytest.raises(ConfigurationError):
            IntegrityConfig(verify_interval=0)
        with pytest.raises(ConfigurationError):
            IntegrityConfig(max_rewinds=-1)
        with pytest.raises(ConfigurationError):
            IntegrityConfig(ecc_ber=-1e-9)

    def test_with_override(self):
        assert IntegrityConfig().with_(scrub_interval=1).scrub_interval == 1


class TestCsrScrub:
    def test_clean_scrub_charges_cost(self, graph):
        guard = _guard(graph, scrub_interval=1)
        guard._scrub(iteration=0)
        assert guard.scrubs == 1
        counters = guard.drain()
        assert counters.launches >= 1
        assert counters.sectors_read > 0
        # Drained: the next drain is empty.
        assert guard.drain().launches == 0

    def test_corrupted_csr_detected_and_repaired(self, graph):
        guard = _guard(graph)
        targets = graph.targets
        original = targets[0]
        targets.setflags(write=True)
        try:
            targets[0] = (original + 1) % graph.num_vertices
        finally:
            targets.setflags(write=False)
        with pytest.raises(IntegrityError, match="checksum"):
            guard._scrub(iteration=0)
        # Repair happened in place from the golden copy.
        assert graph.targets[0] == original
        assert guard.scrub_repairs == 1
        # The next scrub is clean again.
        guard._scrub(iteration=4)
        assert guard.scrubs == 2

    def test_stats_shape(self, graph):
        guard = _guard(graph)
        stats = guard.stats()
        for key in ("scrubs", "scrub_repairs", "shadow_replays",
                    "spot_audits", "violations", "rewinds", "ecc"):
            assert key in stats


class TestLabelConservation:
    def test_subset_passes(self, graph):
        guard = _guard(graph)
        before = np.arange(graph.num_vertices, dtype=np.int64)
        after = before.copy()
        after[1] = 0  # adopted an existing label
        guard._audit_label_conservation(after, before, iteration=0)

    def test_novel_label_detected(self, graph):
        guard = _guard(graph)
        n = graph.num_vertices
        before = np.zeros(n, dtype=np.int64)  # only label 0 is live
        after = before.copy()
        after[3] = 7  # label 7 was never present: corruption
        with pytest.raises(IntegrityError, match="conservation"):
            guard._audit_label_conservation(after, before, iteration=0)
        assert guard.violations == 1


class TestSpotAudit:
    def test_clean_tables_pass(self, graph):
        guard = _guard(graph, spot_audit_slots=32)
        engine = HashtableEngine(graph, LPAConfig())
        labels = np.arange(graph.num_vertices, dtype=np.int64)
        frontier = Frontier(graph)
        engine.move(labels, frontier, pick_less=False, iteration=0)
        guard._spot_audit(engine, graph.num_vertices, iteration=0)
        assert guard.spot_audits == 1

    def test_fused_sweep_leaves_tables_clean(self, graph):
        # The fused sweep (default) re-empties every claimed slot at the
        # end of the wave, so there is no inter-wave residue to audit —
        # the spot audit sees clean tables by construction.
        engine = HashtableEngine(graph, LPAConfig(fused_sweep=True))
        labels = np.arange(graph.num_vertices, dtype=np.int64)
        engine.move(labels, Frontier(graph), pick_less=False, iteration=0)
        assert not np.any(engine.tables.keys >= 0)

    def test_out_of_range_key_detected(self, graph):
        guard = _guard(graph, spot_audit_slots=10_000)
        # The unfused path clears tables lazily (at the start of the next
        # wave), leaving occupied residue for the audit to sample.
        engine = HashtableEngine(graph, LPAConfig(fused_sweep=False))
        labels = np.arange(graph.num_vertices, dtype=np.int64)
        engine.move(labels, Frontier(graph), pick_less=False, iteration=0)
        # The audit samples slots with replacement; corrupt every occupied
        # slot so any draw that lands on one trips it.
        keys = engine.tables.keys
        assert np.any(keys >= 0)
        keys[keys >= 0] = graph.num_vertices + 99
        with pytest.raises(IntegrityError, match="spot"):
            guard._spot_audit(engine, graph.num_vertices, iteration=0)

    def test_non_finite_value_detected(self, graph):
        guard = _guard(graph, spot_audit_slots=10_000)
        engine = HashtableEngine(graph, LPAConfig(fused_sweep=False))
        labels = np.arange(graph.num_vertices, dtype=np.int64)
        engine.move(labels, Frontier(graph), pick_less=False, iteration=0)
        occupied = np.flatnonzero(engine.tables.keys >= 0)
        assert occupied.size
        engine.tables.values[occupied] = np.nan
        with pytest.raises(IntegrityError, match="spot"):
            guard._spot_audit(engine, graph.num_vertices, iteration=0)


class TestBoundaryAudit:
    def test_crc_continuity_violation_detected(self, graph):
        guard = _guard(graph)
        labels = np.arange(graph.num_vertices, dtype=np.int64)
        guard.note_move(labels)
        labels[0] = 5  # mutated after the move was committed
        with pytest.raises(CorruptionDetectedError, match="CRC"):
            guard.at_boundary(labels, iteration=0)

    def test_resurrected_label_detected(self, graph):
        guard = _guard(graph)
        n = graph.num_vertices
        labels = np.zeros(n, dtype=np.int64)
        guard.note_move(labels)
        guard.at_boundary(labels, iteration=0)  # baseline: {0}
        labels[2] = 9  # a dead label reappears at the next boundary
        guard.note_move(labels)
        with pytest.raises(CorruptionDetectedError, match="trajectory"):
            guard.at_boundary(labels, iteration=1)

    def test_shrinking_label_set_passes(self, graph):
        guard = _guard(graph)
        n = graph.num_vertices
        labels = np.arange(n, dtype=np.int64)
        guard.note_move(labels)
        guard.at_boundary(labels, iteration=0)
        labels[labels > 0] = 0
        guard.note_move(labels)
        guard.at_boundary(labels, iteration=1)

    def test_note_rewind_rebaselines(self, graph):
        guard = _guard(graph)
        n = graph.num_vertices
        labels = np.zeros(n, dtype=np.int64)
        guard.note_move(labels)
        guard.at_boundary(labels, iteration=0)
        restored = np.arange(n, dtype=np.int64)
        guard.note_rewind(restored)
        assert guard.rewinds == 1
        # The restored (wider) label set is the new baseline, and the CRC
        # matches the restored labels.
        guard.at_boundary(restored, iteration=0)


class TestShadowReplay:
    def test_matching_replay_verifies(self, graph):
        config = LPAConfig()
        guard = _guard(graph, verify_interval=1)
        engine = HashtableEngine(graph, config)
        labels = np.arange(graph.num_vertices, dtype=np.int64)
        frontier = Frontier(graph)
        snapshot_labels = labels.copy()
        snapshot_flags = frontier.flags.copy()
        engine.move(labels, frontier, pick_less=False, iteration=0)
        guard._shadow_replay(
            labels, engine,
            snapshot_labels=snapshot_labels,
            snapshot_flags=snapshot_flags,
            pick_less=False, iteration=0,
        )
        assert guard.shadow_replays == 1

    def test_divergent_labels_detected(self, graph):
        config = LPAConfig()
        guard = _guard(graph, verify_interval=1)
        engine = HashtableEngine(graph, config)
        labels = np.arange(graph.num_vertices, dtype=np.int64)
        frontier = Frontier(graph)
        snapshot_labels = labels.copy()
        snapshot_flags = frontier.flags.copy()
        engine.move(labels, frontier, pick_less=False, iteration=0)
        victim = int(np.flatnonzero(labels != snapshot_labels)[0])
        labels[victim] = snapshot_labels[victim]  # silently wrong output
        with pytest.raises(IntegrityError, match="replay"):
            guard._shadow_replay(
                labels, engine,
                snapshot_labels=snapshot_labels,
                snapshot_flags=snapshot_flags,
                pick_less=False, iteration=0,
            )


class TestTraceEvents:
    def test_scrub_event_emitted_when_traced(self, graph):
        tracer = Tracer(enabled=True)
        guard = IntegrityGuard(
            graph, LPAConfig(), IntegrityConfig(scrub_interval=1),
            tracer=tracer,
        )
        guard._scrub(iteration=0)
        scrubs = [e for e in tracer.events if e.kind == "scrub"]
        assert len(scrubs) == 1
        assert scrubs[0].scrubbed_bytes > 0
        assert scrubs[0].modeled_seconds > 0
        assert scrubs[0].mismatched == ()


class TestArrayCrc:
    def test_crc_sees_content_not_identity(self):
        a = np.arange(10, dtype=np.int64)
        assert array_crc32(a) == array_crc32(a.copy())
        b = a.copy()
        b[0] = 99
        assert array_crc32(a) != array_crc32(b)

    def test_non_contiguous_views_hash_consistently(self):
        a = np.arange(20, dtype=np.int64)
        assert array_crc32(a[::2]) == array_crc32(a[::2].copy())
