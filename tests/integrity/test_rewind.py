"""End-to-end boundary rewind: corruption after the move is accepted.

The supervisor ladder can only replay a *move*; corruption that lands
after the move was committed (modelled here by tampering with the
cross-check revert, the last writer before the boundary) is caught by the
guard's boundary audit and repaired by rewinding to the newest verified
checkpoint.  ``max_rewinds`` bounds the loop; an exhausted budget
surfaces the :class:`~repro.errors.CorruptionDetectedError`.
"""

import numpy as np
import pytest

import repro.core.lpa as lpa_mod
from repro.core.config import LPAConfig, ResilienceConfig
from repro.core.lpa import nu_lpa
from repro.core.swap_prevention import cross_check_revert
from repro.errors import CorruptionDetectedError
from repro.graph.generators import web_graph
from repro.integrity import IntegrityConfig
from repro.observe.trace import Tracer


@pytest.fixture(scope="module")
def graph():
    return web_graph(180, seed=3)


# cc_period and pl_period are mutually exclusive; CC1 runs the cross-check
# (and therefore the tamper hook) after every iteration.
CONFIG = LPAConfig(pl_period=None, cc_period=1)


@pytest.fixture(scope="module")
def reference(graph):
    return nu_lpa(graph, CONFIG, engine="hashtable",
                  warn_on_no_convergence=False).labels


def _tampering_revert(corrupt_at: set[int]):
    """A cross_check_revert twin that injects a dead label post-commit.

    The wrapper delegates to the real revert, then — on the configured
    invocation numbers — overwrites one vertex with a label that is no
    longer live.  ``note_move`` runs *after* the revert, so the label CRC
    matches the corrupted state and only the community-trajectory audit
    can catch it.
    """
    calls = {"n": 0}

    def wrapper(labels, previous, changed_vertices):
        reverted = cross_check_revert(labels, previous, changed_vertices)
        call = calls["n"]
        calls["n"] += 1
        if call in corrupt_at:
            live = np.unique(labels)
            dead = np.setdiff1d(
                np.arange(labels.shape[0], dtype=labels.dtype), live
            )
            assert dead.shape[0], "no dead label to resurrect yet"
            labels[0] = dead[0]
        return reverted

    return wrapper


def test_boundary_corruption_rewinds_and_recovers(
    graph, reference, monkeypatch, tmp_path
):
    # Corrupt once, on the second cross-check (iteration 1): a checkpoint
    # for iteration 1 already exists, and iteration 0's boundary has
    # baselined the community trajectory.
    monkeypatch.setattr(lpa_mod, "cross_check_revert", _tampering_revert({1}))
    tracer = Tracer(enabled=True)
    result = nu_lpa(
        graph, CONFIG, engine="hashtable", warn_on_no_convergence=False,
        tracer=tracer,
        resilience=ResilienceConfig(
            checkpoint_dir=tmp_path / "ckpt", checkpoint_every=1,
            integrity=IntegrityConfig(),
        ),
    )
    assert result.integrity["rewinds"] == 1
    assert result.integrity["violations"] >= 1
    assert np.array_equal(result.labels, reference)
    rewinds = [
        e for e in tracer.events
        if e.kind == "integrity" and e.action == "rewind"
    ]
    assert len(rewinds) == 1
    assert rewinds[0].check == "boundary"


def test_rewind_budget_exhaustion_raises(graph, monkeypatch, tmp_path):
    # Persistent corruption from iteration 1 on: every redo of the
    # iteration is corrupted again, so the rewind budget drains and the
    # error surfaces.  (Call 0 stays clean — the trajectory audit needs
    # one uncorrupted boundary to baseline against; corruption that is
    # self-consistent from the very first boundary is out of its reach.)
    monkeypatch.setattr(
        lpa_mod, "cross_check_revert", _tampering_revert(set(range(1, 100)))
    )
    with pytest.raises(CorruptionDetectedError, match="trajectory"):
        nu_lpa(
            graph, CONFIG, engine="hashtable", warn_on_no_convergence=False,
            resilience=ResilienceConfig(
                checkpoint_dir=tmp_path / "ckpt", checkpoint_every=1,
                integrity=IntegrityConfig(max_rewinds=2),
            ),
        )


def test_no_checkpoint_means_no_rewind(graph, monkeypatch):
    # Without a checkpoint ring there is nothing to rewind to: the
    # detection must surface instead of being silently swallowed.
    monkeypatch.setattr(lpa_mod, "cross_check_revert", _tampering_revert({1}))
    with pytest.raises(CorruptionDetectedError):
        nu_lpa(
            graph, CONFIG, engine="hashtable", warn_on_no_convergence=False,
            resilience=ResilienceConfig(integrity=IntegrityConfig()),
        )


def test_rewind_redo_pays_for_lost_iterations(graph, monkeypatch, tmp_path):
    # The redone iteration appears exactly once in the stats (the rewind
    # truncated the corrupted tail), and the checkpointed stats list stays
    # consistent with the final result.
    monkeypatch.setattr(lpa_mod, "cross_check_revert", _tampering_revert({1}))
    result = nu_lpa(
        graph, CONFIG, engine="hashtable", warn_on_no_convergence=False,
        resilience=ResilienceConfig(
            checkpoint_dir=tmp_path / "ckpt", checkpoint_every=1,
            integrity=IntegrityConfig(),
        ),
    )
    seen = [stat.iteration for stat in result.iterations]
    assert seen == sorted(set(seen)), f"duplicated iteration stats: {seen}"
