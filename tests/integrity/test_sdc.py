"""End-to-end SDC tests: valid-but-wrong corruption is caught and cured.

The ``"sdc"`` fault kind exists precisely because the supervisor's cheap
invariants (label range, finite values) cannot see it — the corrupted
value is in range and finite, just *wrong*.  These tests assert the ABFT
guard stack closes that gap: with the guard on, every run that suffered
SDC still ends bit-identical to the fault-free reference.
"""

import numpy as np
import pytest

from repro.core.config import LPAConfig, ResilienceConfig
from repro.core.lpa import nu_lpa
from repro.errors import ConfigurationError
from repro.graph.generators import web_graph
from repro.integrity import IntegrityConfig
from repro.resilience.faults import FAULT_KINDS, FaultInjector, FaultSpec

GUARD = IntegrityConfig(scrub_interval=1, verify_interval=1)


@pytest.fixture(scope="module")
def graph():
    return web_graph(200, seed=11)


@pytest.fixture(scope="module")
def reference(graph):
    return nu_lpa(graph, LPAConfig(), engine="hashtable",
                  warn_on_no_convergence=False).labels


class TestSdcFaultKind:
    def test_sdc_is_a_known_kind(self):
        assert "sdc" in FAULT_KINDS

    def test_labels_target_writes_valid_but_wrong_label(self, graph):
        spec = FaultSpec(kinds=("sdc",), rate=1.0, targets=("labels",),
                         max_fires=1)
        result = nu_lpa(
            graph, LPAConfig(), engine="hashtable",
            warn_on_no_convergence=False,
            resilience=ResilienceConfig(faults=spec),
        )
        # Without the guard the run completes: the corruption is in-range
        # so the supervisor's invariants cannot object.
        assert result.labels.min() >= 0
        assert result.labels.max() < graph.num_vertices

    def test_unknown_target_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kinds=("sdc",), targets=("registers",))


@pytest.mark.parametrize("targets", [("labels",), ("keys",), ("values",),
                                     ("labels", "keys", "values")])
class TestGuardRecovers:
    def test_hashtable_run_matches_reference(self, graph, reference, targets):
        spec = FaultSpec(kinds=("sdc",), rate=1.0, seed=7, max_fires=3,
                         targets=targets)
        # max_retries must exceed the injection budget: only a clean retry
        # reproduces the reference move bit-exactly (regrow/fallback
        # recover validly but perturb max-reduce tie-breaking).
        result = nu_lpa(
            graph, LPAConfig(), engine="hashtable",
            warn_on_no_convergence=False,
            resilience=ResilienceConfig(faults=spec, max_retries=6,
                                        integrity=GUARD),
        )
        assert np.array_equal(result.labels, reference)
        assert result.integrity is not None
        assert result.integrity["scrubs"] > 0
        assert result.integrity["shadow_replays"] > 0


class TestVectorizedEngine:
    def test_labels_sdc_detected_and_recovered(self, graph):
        reference = nu_lpa(graph, LPAConfig(), warn_on_no_convergence=False)
        spec = FaultSpec(kinds=("sdc",), rate=1.0, seed=3, max_fires=2,
                         targets=("labels",))
        result = nu_lpa(
            graph, LPAConfig(), engine="vectorized",
            warn_on_no_convergence=False,
            resilience=ResilienceConfig(faults=spec, integrity=GUARD),
        )
        assert np.array_equal(result.labels, reference.labels)


class TestDetectionIsReal:
    def test_labels_sdc_trips_the_ladder(self, graph, reference):
        # A forced label flip must surface as an integrity detection in
        # the fault report (shadow replay sees the divergence), and the
        # retried move must converge to the reference anyway.
        spec = FaultSpec(kinds=("sdc",), rate=1.0, seed=0, max_fires=1,
                         targets=("labels",))
        result = nu_lpa(
            graph, LPAConfig(), engine="hashtable",
            warn_on_no_convergence=False,
            resilience=ResilienceConfig(faults=spec, integrity=GUARD),
        )
        integrity_events = [
            ev for ev in result.fault_events
            if ev.fault in ("IntegrityError", "EccError",
                            "CorruptionDetectedError")
        ]
        assert integrity_events, "SDC fired but nothing detected it"
        assert np.array_equal(result.labels, reference)

    def test_guard_off_lets_label_sdc_through(self, graph, reference):
        # The control experiment: the same forced corruption without the
        # guard raises no detection at all — proving the guard is what
        # catches it, not an existing invariant check.
        spec = FaultSpec(kinds=("sdc",), rate=1.0, seed=0, max_fires=1,
                         targets=("labels",))
        result = nu_lpa(
            graph, LPAConfig(), engine="hashtable",
            warn_on_no_convergence=False,
            resilience=ResilienceConfig(faults=spec),
        )
        detections = [
            ev for ev in result.fault_events
            if ev.fault in ("IntegrityError", "EccError",
                            "CorruptionDetectedError")
        ]
        assert not detections


class TestInjectorDeterminism:
    def test_same_seed_same_fires(self, graph):
        spec = FaultSpec(kinds=("sdc",), rate=0.5, seed=13, targets=("labels",))
        runs = []
        for _ in range(2):
            result = nu_lpa(
                graph, LPAConfig(), engine="hashtable",
                warn_on_no_convergence=False,
                resilience=ResilienceConfig(faults=spec, integrity=GUARD),
            )
            runs.append((
                tuple((ev.iteration, ev.fault, ev.action)
                      for ev in result.fault_events),
                result.labels.copy(),
            ))
        assert runs[0][0] == runs[1][0]
        assert np.array_equal(runs[0][1], runs[1][1])


class TestEccInRuns:
    def test_low_ber_run_is_identical_and_counts_corrections(self, graph,
                                                             reference):
        result = nu_lpa(
            graph, LPAConfig(), engine="hashtable",
            warn_on_no_convergence=False,
            resilience=ResilienceConfig(
                integrity=IntegrityConfig(
                    scrub_interval=1, verify_interval=None, ecc_ber=1e-7,
                ),
            ),
        )
        assert np.array_equal(result.labels, reference)
        assert result.integrity["ecc"]["passes"] > 0
