"""Smoke tests for the integrity soak (the full run is a benchmark job)."""

import numpy as np
import pytest

from repro.graph.generators import web_graph
from repro.integrity import run_integrity_soak
from repro.integrity.soak import IntegritySoakRecord, flip_bit
from repro.observe.schema import validate_integrity_soak


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    graph = web_graph(120, seed=9)
    return run_integrity_soak(
        graph, tmp_path_factory.mktemp("soak"), seeds=3, seed=0
    )


class TestSoak:
    def test_no_silent_wrong_answers(self, report):
        assert report.ok
        assert report.silent == 0
        assert len(report.records) == 3

    def test_every_leg_recovered(self, report):
        for record in report.records:
            assert record.live_identical
            assert record.ckpt_identical
            assert record.snap_identical

    def test_corruption_was_actually_exercised(self, report):
        # Across 3 schedules at least one leg must have fired a detection;
        # an all-harmless soak would prove nothing.
        total = sum(
            r.live_detections + r.ckpt_detected + r.snap_detected
            for r in report.records
        )
        assert total > 0

    def test_report_validates_against_schema(self, report):
        validate_integrity_soak(report.as_dict())

    def test_summary_mentions_counts(self, report):
        assert "3 schedule(s)" in report.summary()
        assert "0 silent" in report.summary()


class TestFlipBit:
    def test_flip_is_involutive(self, tmp_path):
        target = tmp_path / "blob"
        target.write_bytes(bytes(range(32)))
        flip_bit(target, 5, 1)
        assert target.read_bytes() != bytes(range(32))
        flip_bit(target, 5, 1)
        assert target.read_bytes() == bytes(range(32))

    def test_offsets_wrap(self, tmp_path):
        target = tmp_path / "blob"
        target.write_bytes(b"\x00" * 4)
        flip_bit(target, 6, 9)  # byte 6 % 4 = 2, bit 9 % 8 = 1
        assert target.read_bytes() == b"\x00\x00\x02\x00"


class TestRecordAccounting:
    def test_silent_counts_undetected_wrong_legs(self):
        record = IntegritySoakRecord(
            seed=0,
            live_detections=0, live_identical=False,
            ckpt_flip="x", ckpt_detected=True, ckpt_identical=False,
            snap_flip="y", snap_detected=False, snap_identical=True,
        )
        # live: wrong + undetected = silent; ckpt: wrong but detected (not
        # silent, still not ok); snap: harmless.
        assert record.silent == 1
        assert not record.ok

    def test_clean_record_is_ok(self):
        record = IntegritySoakRecord(
            seed=1,
            live_detections=2, live_identical=True,
            ckpt_flip="x", ckpt_detected=True, ckpt_identical=True,
            snap_flip="y", snap_detected=False, snap_identical=True,
        )
        assert record.silent == 0
        assert record.ok
