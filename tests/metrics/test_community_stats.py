"""Tests for community statistics."""

import numpy as np
import pytest

from repro.metrics.community_stats import (
    community_sizes,
    compact_labels,
    intra_edge_fraction,
    num_communities,
    summarize_communities,
)


class TestCompact:
    def test_preserves_first_appearance_order(self):
        labels = np.array([50, 10, 50, 99])
        out = compact_labels(labels)
        assert out.max() == 2
        assert out[0] == out[2]

    def test_already_compact(self):
        labels = np.array([0, 1, 2])
        assert np.array_equal(np.sort(np.unique(compact_labels(labels))),
                              np.array([0, 1, 2]))


class TestSizes:
    def test_sizes(self):
        labels = np.array([3, 3, 3, 8, 8])
        assert sorted(community_sizes(labels).tolist()) == [2, 3]

    def test_num_communities(self):
        assert num_communities(np.array([4, 4, 9])) == 2


class TestSummary:
    def test_summary_fields(self):
        labels = np.array([0, 0, 0, 1, 2])
        s = summarize_communities(labels)
        assert s.num_communities == 3
        assert s.largest == 3
        assert s.smallest == 1
        assert s.singletons == 2
        assert s.largest_fraction == pytest.approx(0.6)

    def test_empty(self):
        s = summarize_communities(np.array([], dtype=int))
        assert s.num_communities == 0


class TestIntraFraction:
    def test_all_intra(self, triangle):
        assert intra_edge_fraction(triangle, np.zeros(3, dtype=int)) == 1.0

    def test_all_inter(self, triangle):
        assert intra_edge_fraction(triangle, np.arange(3)) == 0.0

    def test_two_cliques(self, two_cliques):
        labels = np.array([0] * 5 + [1] * 5)
        assert intra_edge_fraction(two_cliques, labels) == pytest.approx(40 / 42)
