"""Tests for modularity and delta-modularity (paper Equations 1-2)."""

import numpy as np
import pytest

from repro.graph.build import from_edges
from repro.metrics.modularity import community_weights, delta_modularity, modularity


class TestModularity:
    def test_single_community_is_zero(self, triangle):
        # sigma_c/2m = 1 and (Sigma_c/2m)^2 = 1.
        assert modularity(triangle, np.zeros(3, dtype=int)) == pytest.approx(0.0)

    def test_all_singletons_negative_or_zero(self, triangle):
        q = modularity(triangle, np.arange(3))
        assert q <= 0.0

    def test_two_cliques_partition(self, two_cliques):
        labels = np.array([0] * 5 + [1] * 5)
        q = modularity(two_cliques, labels)
        # Each K5: sigma_c = 20 arcs, Sigma_c = 21 (bridge endpoint degree).
        assert q == pytest.approx(2 * (20 / 42 - (21 / 42) ** 2), rel=1e-6)

    def test_bounds(self, small_web):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 50, size=small_web.num_vertices)
        q = modularity(small_web, labels)
        assert -0.5 <= q <= 1.0

    def test_empty_graph(self):
        g = from_edges(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert modularity(g, np.empty(0, dtype=int)) == 0.0

    def test_weighted(self, weighted_triangle):
        labels = np.array([0, 0, 1])
        # m=6; intra arcs: (0,1) twice = 2*1; Sigma_0 = K0+K1 = 4+3, Sigma_1 = 5.
        expected = 2 / 12 - (7 / 12) ** 2 + 0 - (5 / 12) ** 2
        assert modularity(weighted_triangle, labels) == pytest.approx(expected, rel=1e-6)

    def test_label_length_mismatch_rejected(self, triangle):
        with pytest.raises(ValueError):
            modularity(triangle, np.array([0, 1]))

    def test_non_compact_labels_ok(self, triangle):
        q1 = modularity(triangle, np.array([0, 0, 0]))
        q2 = modularity(triangle, np.array([7, 7, 7]))
        assert q1 == pytest.approx(q2)


class TestCommunityWeights:
    def test_sigma_counts_intra_arcs(self, two_cliques):
        labels = np.array([0] * 5 + [1] * 5)
        intra, total, m = community_weights(two_cliques, labels)
        assert m == pytest.approx(21.0)
        assert intra[0] == pytest.approx(20.0)  # arcs, both directions
        assert total[0] == pytest.approx(21.0)


class TestDeltaModularity:
    def test_same_community_is_zero(self, two_cliques):
        labels = np.array([0] * 5 + [1] * 5)
        assert delta_modularity(two_cliques, labels, 0, 0) == 0.0

    def test_matches_recompute(self, two_cliques):
        """Equation 2 must equal the brute-force Q difference."""
        labels = np.array([0] * 5 + [1] * 5)
        for vertex, target in [(4, 1), (0, 1), (5, 0)]:
            dq = delta_modularity(two_cliques, labels, vertex, target)
            moved = labels.copy()
            moved[vertex] = target
            brute = modularity(two_cliques, moved) - modularity(two_cliques, labels)
            assert dq == pytest.approx(brute, abs=1e-9)

    def test_matches_recompute_random(self, small_web):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 20, size=small_web.num_vertices)
        for _ in range(10):
            v = int(rng.integers(0, small_web.num_vertices))
            c = int(rng.integers(0, 20))
            dq = delta_modularity(small_web, labels, v, c)
            moved = labels.copy()
            moved[v] = c
            brute = modularity(small_web, moved) - modularity(small_web, labels)
            assert dq == pytest.approx(brute, abs=1e-8)

    def test_moving_bridge_vertex_is_negative(self, two_cliques):
        labels = np.array([0] * 5 + [1] * 5)
        # Moving a clique member to the other community must hurt.
        assert delta_modularity(two_cliques, labels, 0, 1) < 0

    def test_precomputed_totals_match(self, two_cliques):
        labels = np.array([0] * 5 + [1] * 5)
        k = two_cliques.weighted_degrees()
        totals = np.zeros(2)
        np.add.at(totals, labels, k)
        a = delta_modularity(two_cliques, labels, 4, 1)
        b = delta_modularity(
            two_cliques, labels, 4, 1,
            weighted_degrees=k, community_totals=totals,
        )
        assert a == pytest.approx(b)


class TestBincountBitIdentity:
    """The np.add.at → np.bincount rewrite must be *bit*-identical.

    Both accumulate float64 in input order through one serial C loop, so
    every intermediate rounding step matches — not just the final values
    to within tolerance.  These tests pin that across edge dtypes.
    """

    def _add_at_community_weights(self, graph, labels):
        labels = np.asarray(labels)
        src = graph.source_ids()
        dst = graph.targets
        w = graph.weights.astype(np.float64)
        n_comms = int(labels.max()) + 1 if labels.shape[0] else 0
        intra = np.zeros(n_comms)
        total = np.zeros(n_comms)
        same = labels[src] == labels[dst]
        np.add.at(intra, labels[src[same]], w[same])
        np.add.at(total, labels[src], w)
        return intra, total, float(w.sum() / 2.0)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_community_weights_bit_identical(self, dtype, seed):
        rng = np.random.default_rng(seed)
        n, m = 200, 900
        src = rng.integers(0, n, size=m)
        dst = rng.integers(0, n, size=m)
        # Awkward magnitudes so float64 rounding actually has teeth.
        w = (rng.random(m) * 1e6 + rng.random(m)).astype(dtype)
        graph = from_edges(src, dst, w, num_vertices=n, symmetrize=True)
        labels = rng.integers(0, 17, size=n)

        intra, total, mw = community_weights(graph, labels)
        ref_intra, ref_total, ref_mw = self._add_at_community_weights(
            graph, labels
        )
        assert np.array_equal(intra, ref_intra)  # exact, not approx
        assert np.array_equal(total, ref_total)
        assert mw == ref_mw

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_weighted_degrees_bit_identical(self, dtype):
        rng = np.random.default_rng(5)
        n, m = 150, 700
        src = rng.integers(0, n, size=m)
        dst = rng.integers(0, n, size=m)
        w = (rng.random(m) * 1e5).astype(dtype)
        graph = from_edges(src, dst, w, num_vertices=n, symmetrize=True)

        ref = np.zeros(n)
        np.add.at(ref, graph.source_ids(), graph.weights.astype(np.float64))
        assert np.array_equal(graph.weighted_degrees(), ref)

    def test_delta_modularity_totals_bit_identical(self):
        rng = np.random.default_rng(9)
        n, m = 120, 500
        src = rng.integers(0, n, size=m)
        dst = rng.integers(0, n, size=m)
        w = rng.random(m).astype(np.float32) * 1e4
        graph = from_edges(src, dst, w, num_vertices=n, symmetrize=True)
        labels = rng.integers(0, 9, size=n)
        k = graph.weighted_degrees()

        ref_totals = np.zeros(int(labels.max()) + 1)
        np.add.at(ref_totals, labels, k)
        for vertex in (0, 7, 63):
            target = int((labels[vertex] + 1) % 9)
            with_internal = delta_modularity(graph, labels, vertex, target)
            with_reference = delta_modularity(
                graph, labels, vertex, target,
                weighted_degrees=k, community_totals=ref_totals,
            )
            assert with_internal == with_reference  # exact equality

    def test_empty_labels_edge_case(self):
        graph = from_edges(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            num_vertices=0,
        )
        intra, total, m = community_weights(graph, np.empty(0, dtype=np.int64))
        assert intra.shape == (0,) and total.shape == (0,) and m == 0.0
