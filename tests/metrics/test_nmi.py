"""Tests for NMI and ARI."""

import numpy as np
import pytest

from repro.metrics.nmi import adjusted_rand_index, normalized_mutual_information


class TestNmi:
    def test_identical_partitions(self):
        labels = np.array([0, 0, 1, 1, 2])
        assert normalized_mutual_information(labels, labels) == pytest.approx(1.0)

    def test_permuted_labels_still_perfect(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([9, 9, 4, 4])
        assert normalized_mutual_information(a, b) == pytest.approx(1.0)

    def test_independent_partitions_low(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 5, size=2000)
        b = rng.integers(0, 5, size=2000)
        assert normalized_mutual_information(a, b) < 0.05

    def test_trivial_single_cluster_convention(self):
        a = np.zeros(10, dtype=int)
        assert normalized_mutual_information(a, a) == 1.0

    def test_range(self):
        rng = np.random.default_rng(1)
        for _ in range(5):
            a = rng.integers(0, 8, size=300)
            b = rng.integers(0, 4, size=300)
            nmi = normalized_mutual_information(a, b)
            assert 0.0 <= nmi <= 1.0

    def test_symmetry(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 6, size=500)
        b = rng.integers(0, 3, size=500)
        assert normalized_mutual_information(a, b) == pytest.approx(
            normalized_mutual_information(b, a)
        )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            normalized_mutual_information(np.array([0]), np.array([0, 1]))


class TestAri:
    def test_identical(self):
        labels = np.array([0, 0, 1, 2, 2])
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 5, size=3000)
        b = rng.integers(0, 5, size=3000)
        assert abs(adjusted_rand_index(a, b)) < 0.02

    def test_symmetry(self):
        rng = np.random.default_rng(4)
        a = rng.integers(0, 4, size=400)
        b = rng.integers(0, 7, size=400)
        assert adjusted_rand_index(a, b) == pytest.approx(
            adjusted_rand_index(b, a)
        )

    def test_refinement_scores_between(self):
        coarse = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        fine = np.array([0, 0, 1, 1, 2, 2, 3, 3])
        ari = adjusted_rand_index(coarse, fine)
        assert 0.0 < ari < 1.0
