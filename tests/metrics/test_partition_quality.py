"""Tests for conductance / coverage / performance metrics."""

import numpy as np
import pytest

from repro.metrics.partition_quality import (
    community_conductance,
    coverage,
    mean_conductance,
    performance,
)


class TestCoverage:
    def test_single_community(self, triangle):
        assert coverage(triangle, np.zeros(3, dtype=int)) == 1.0

    def test_singletons(self, triangle):
        assert coverage(triangle, np.arange(3)) == 0.0

    def test_two_cliques(self, two_cliques):
        labels = np.array([0] * 5 + [1] * 5)
        assert coverage(two_cliques, labels) == pytest.approx(40 / 42)


class TestPerformance:
    def test_perfect_partition(self, two_cliques):
        labels = np.array([0] * 5 + [1] * 5)
        # Only the bridge pair is misclassified.
        assert performance(two_cliques, labels) == pytest.approx(44 / 45)

    def test_single_community_counts_non_edges_wrong(self, path6):
        # P6 in one community: 5 edges right, 10 non-adjacent pairs wrong.
        assert performance(path6, np.zeros(6, dtype=int)) == pytest.approx(5 / 15)

    def test_tiny_graph(self):
        from repro.graph.build import from_edges

        g = from_edges(np.array([0]), np.array([0]), num_vertices=1, dedupe=False)
        assert performance(g, np.array([0])) == 1.0


class TestConductance:
    def test_isolated_communities_are_tight(self):
        from repro.graph.build import from_edges

        # Two disjoint triangles.
        g = from_edges(np.array([0, 1, 2, 3, 4, 5]), np.array([1, 2, 0, 4, 5, 3]))
        labels = np.array([0, 0, 0, 1, 1, 1])
        cond = community_conductance(g, labels)
        assert np.allclose(cond, 0.0)

    def test_bridged_cliques(self, two_cliques):
        labels = np.array([0] * 5 + [1] * 5)
        cond = community_conductance(g := two_cliques, labels)
        # One cut edge over volume 21 each.
        assert np.allclose(cond, 1 / 21)

    def test_bad_partition_higher_conductance(self, two_cliques):
        good = np.array([0] * 5 + [1] * 5)
        bad = np.array([0, 1] * 5)
        assert mean_conductance(two_cliques, bad) > mean_conductance(
            two_cliques, good
        )

    def test_whole_graph_zero(self, triangle):
        assert mean_conductance(triangle, np.zeros(3, dtype=int)) == 0.0

    def test_lpa_partitions_beat_random(self, small_web):
        from repro import nu_lpa

        rng = np.random.default_rng(0)
        detected = nu_lpa(small_web).labels
        random = rng.integers(0, np.unique(detected).shape[0],
                              size=small_web.num_vertices)
        assert mean_conductance(small_web, detected) < mean_conductance(
            small_web, random
        )
