"""ConvergenceWarning diagnostics and their trace round-trip."""

import json
import warnings

import pytest

from repro import LPAConfig, Tracer, nu_lpa
from repro.errors import ConvergenceWarning
from repro.graph.datasets import generate_standin


@pytest.fixture(scope="module")
def slow_graph():
    # Road networks propagate labels slowly: 2 iterations never meet τ.
    return generate_standin("asia_osm", scale=0.1, seed=42)


def _run_unconverged(graph, tracer=None, warn=True):
    config = LPAConfig(max_iterations=2, tolerance=0.001)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = nu_lpa(graph, config, tracer=tracer,
                        warn_on_no_convergence=warn)
    conv = [w for w in caught if issubclass(w.category, ConvergenceWarning)]
    return result, conv


class TestWarningFields:
    def test_warning_carries_iterations_and_final_fraction(self, slow_graph):
        result, conv = _run_unconverged(slow_graph)
        assert len(conv) == 1
        warning = conv[0].message
        assert warning.iterations == result.num_iterations == 2
        expected = result.iterations[-1].changed / slow_graph.num_vertices
        assert warning.final_fraction == pytest.approx(expected)
        assert warning.final_fraction > 0.001  # genuinely unconverged

    def test_warning_message_names_the_numbers(self, slow_graph):
        _, conv = _run_unconverged(slow_graph)
        text = str(conv[0].message)
        assert "max_iterations=2" in text
        assert "fraction" in text

    def test_converged_run_warns_nothing(self):
        graph = generate_standin("asia_osm", scale=0.05, seed=42)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            nu_lpa(graph, LPAConfig(max_iterations=50, tolerance=0.5))
        assert not [
            w for w in caught if issubclass(w.category, ConvergenceWarning)
        ]


class TestTraceRoundTrip:
    def test_fields_round_trip_through_the_trace(self, slow_graph, tmp_path):
        """Regression: the warning's diagnostics must survive
        trace → JSON → reload exactly."""
        tracer = Tracer()
        result, conv = _run_unconverged(slow_graph, tracer=tracer)
        events = tracer.of_kind("no_convergence")
        assert len(events) == 1
        event = events[0]
        warning = conv[0].message
        assert event.iterations == warning.iterations
        assert event.final_fraction == warning.final_fraction
        assert event.tolerance == 0.001

        # Through JSON and back, bit-exact.
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(tracer.as_dicts()))
        reloaded = [
            e for e in json.loads(path.read_text())
            if e["kind"] == "no_convergence"
        ]
        assert len(reloaded) == 1
        assert reloaded[0]["iterations"] == warning.iterations
        assert reloaded[0]["final_fraction"] == warning.final_fraction

    def test_event_emitted_even_when_warning_suppressed(self, slow_graph):
        """Batch runs pass warn_on_no_convergence=False but still deserve
        the trace record."""
        tracer = Tracer()
        _, conv = _run_unconverged(slow_graph, tracer=tracer, warn=False)
        assert conv == []
        assert len(tracer.of_kind("no_convergence")) == 1
