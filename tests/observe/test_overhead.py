"""Acceptance guard: a disabled tracer must add no measurable overhead.

The hook sites are written so the untraced path pays one attribute test
and one boolean check per wave — no counter snapshots, no event objects.
Timing comparisons on shared CI hardware are noisy, so the threshold is
deliberately generous (2x over the best of several repeats); a regression
that starts snapshotting counters unconditionally costs far more than
that.
"""

import time

from repro.core.config import LPAConfig
from repro.core.lpa import nu_lpa
from repro.observe.trace import Tracer


def _best_of(runs, fn):
    best = float("inf")
    for _ in range(runs):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_disabled_tracer_adds_no_measurable_overhead(small_web):
    config = LPAConfig()

    def plain():
        nu_lpa(small_web, config, engine="hashtable")

    def disabled():
        nu_lpa(small_web, config, engine="hashtable", tracer=Tracer(enabled=False))

    # Warm-up both paths (imports, allocator) before timing.
    plain()
    disabled()
    base = _best_of(5, plain)
    traced_off = _best_of(5, disabled)
    assert traced_off < 2.0 * base + 1e-3, (
        f"disabled tracer run took {traced_off:.4f}s vs {base:.4f}s untraced"
    )


def test_disabled_tracer_produces_identical_labels(small_web):
    import numpy as np

    plain = nu_lpa(small_web, LPAConfig(), engine="hashtable")
    off = nu_lpa(
        small_web, LPAConfig(), engine="hashtable", tracer=Tracer(enabled=False)
    )
    on = nu_lpa(small_web, LPAConfig(), engine="hashtable", profile=True)
    assert np.array_equal(plain.labels, off.labels)
    assert np.array_equal(plain.labels, on.labels)
