"""Tests for RunProfile aggregation and the versioned JSON schemas."""

import json

import numpy as np
import pytest

from repro.core.config import LPAConfig, ResilienceConfig
from repro.core.lpa import nu_lpa
from repro.errors import SchemaValidationError
from repro.gpu.device import A100, DeviceSpec
from repro.observe.profile import build_profile
from repro.observe.schema import validate_bench, validate_profile
from repro.observe.trace import Tracer
from repro.perf.model import estimate_gpu_seconds
from repro.perf.platforms import A100_PLATFORM
from repro.resilience.faults import FaultSpec

ENGINES = ["hashtable", "vectorized"]

WIDE_SECTOR = DeviceSpec(
    name="wide-sector",
    num_sms=64,
    cuda_cores_per_sm=64,
    warp_size=32,
    max_threads_per_sm=1536,
    max_blocks_per_sm=16,
    shared_memory_per_sm_bytes=100 * 1024,
    global_memory_bytes=8 * 1024**3,
    global_bandwidth=400e9,
    sector_bytes=128,
)


class TestRunProfile:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_iteration_seconds_sum_matches_total(self, small_web, engine):
        """Acceptance criterion: per-iteration pricing sums to the run total."""
        result = nu_lpa(small_web, LPAConfig(), engine=engine, profile=True)
        p = result.profile
        assert p is not None
        assert abs(p.iteration_seconds_sum - p.modeled_seconds) < 1e-9
        assert p.modeled_seconds == pytest.approx(
            estimate_gpu_seconds(result.total_counters, A100_PLATFORM)
        )

    def test_kernel_breakdown_reconciles(self, small_web):
        """Per-kernel pricing partitions the run total (priced counters are
        all incremented inside waves; launch/wave bookkeeping is restored
        from the launch events)."""
        result = nu_lpa(small_web, LPAConfig(), engine="hashtable", profile=True)
        p = result.profile
        assert {k.kernel for k in p.kernels} <= {
            "thread-per-vertex", "block-per-vertex"
        }
        assert p.kernels
        kernel_sum = sum(k.modeled_seconds for k in p.kernels)
        assert abs(kernel_sum - p.modeled_seconds) < 1e-9
        assert sum(k.launches for k in p.kernels) == p.counters["launches"]
        assert sum(k.waves for k in p.kernels) == p.counters["waves"]

    def test_profile_without_trace_degrades_gracefully(self, small_web):
        result = nu_lpa(small_web, LPAConfig(), engine="hashtable")
        p = build_profile(result)
        assert p.kernels == ()
        assert abs(p.iteration_seconds_sum - p.modeled_seconds) < 1e-9
        validate_profile(p.as_dict())

    def test_bytes_moved_tracks_device_sector(self, small_web):
        """No hardcoded 32-byte sectors: a 128-byte-sector device must
        report 4x the traffic for identical counters."""
        result = nu_lpa(small_web, LPAConfig(), engine="hashtable", profile=True)
        narrow = result.profile
        wide = build_profile(result, device=WIDE_SECTOR, tracer=result.trace)
        assert narrow.sector_bytes == A100.sector_bytes == 32
        assert wide.sector_bytes == 128
        assert wide.bytes_moved == 4 * narrow.bytes_moved
        validate_profile(wide.as_dict())

    def test_fault_rungs_recorded_under_resilience(self, small_web):
        rc = ResilienceConfig(
            faults=FaultSpec(kinds=("overflow",), rate=1.0, seed=3, max_fires=2)
        )
        result = nu_lpa(
            small_web, LPAConfig(), engine="hashtable",
            profile=True, resilience=rc,
        )
        p = result.profile
        assert p.fault_rungs.get("retry", 0) >= 1
        rung_events = result.trace.of_kind("fault_rung")
        assert len(rung_events) == sum(p.fault_rungs.values())
        validate_profile(p.as_dict())

    def test_profile_json_roundtrip(self, small_web, tmp_path):
        result = nu_lpa(small_web, LPAConfig(), engine="hashtable", profile=True)
        out = tmp_path / "profile.json"
        result.profile.to_json(out)
        doc = json.loads(out.read_text())
        validate_profile(doc)
        assert doc["modeled_seconds"] == result.profile.modeled_seconds

    def test_summary_mentions_kernels_and_iterations(self, small_web):
        result = nu_lpa(small_web, LPAConfig(), engine="hashtable", profile=True)
        text = result.profile.summary()
        assert "thread-per-vertex" in text
        assert "iter " in text
        assert "modelled" in text


class TestSchemaValidation:
    def _profile_doc(self, small_web):
        result = nu_lpa(small_web, LPAConfig(), engine="hashtable", profile=True)
        return result.profile.as_dict()

    def test_wrong_schema_name_rejected(self, small_web):
        doc = self._profile_doc(small_web)
        doc["schema"] = "something/else"
        with pytest.raises(SchemaValidationError, match="schema"):
            validate_profile(doc)

    def test_unsupported_version_rejected(self, small_web):
        doc = self._profile_doc(small_web)
        doc["version"] = 99
        with pytest.raises(SchemaValidationError, match="version"):
            validate_profile(doc)

    def test_missing_counter_key_rejected(self, small_web):
        doc = self._profile_doc(small_web)
        del doc["counters"]["probes"]
        with pytest.raises(SchemaValidationError, match="probes"):
            validate_profile(doc)

    def test_negative_counter_rejected(self, small_web):
        doc = self._profile_doc(small_web)
        doc["iterations"][0]["counters"]["waves"] = -1
        with pytest.raises(SchemaValidationError, match="negative"):
            validate_profile(doc)

    def test_bool_masquerading_as_number_rejected(self, small_web):
        doc = self._profile_doc(small_web)
        doc["modeled_seconds"] = True
        with pytest.raises(SchemaValidationError, match="bool"):
            validate_profile(doc)

    def test_bench_document_validates(self):
        doc = {
            "schema": "repro.observe/bench",
            "version": 3,
            "scale": 0.1,
            "seed": 42,
            "engine": "hashtable",
            "calibration_seconds": 2e-3,
            "device": {"name": "NVIDIA A100", "sector_bytes": 32},
            "graphs": [{
                "name": "asia_osm",
                "num_vertices": 100,
                "num_edges": 200,
                "iterations": 5,
                "num_communities": 7,
                "converged": True,
                "modeled_seconds": 1e-4,
                "paper_modeled_seconds": 2.0,
                "modularity": 0.7,
                "wall_seconds": 5e-4,
                "wall_seconds_hashtable": 4e-4,
                "counters": {
                    k: 0 for k in self._counter_keys()
                },
            }],
        }
        validate_bench(doc)

    def test_bench_duplicate_graph_rejected(self):
        row = {
            "name": "asia_osm",
            "num_vertices": 100,
            "num_edges": 200,
            "iterations": 5,
            "num_communities": 7,
            "converged": True,
            "modeled_seconds": 1e-4,
            "paper_modeled_seconds": None,
            "modularity": 0.7,
            "wall_seconds": 5e-4,
            "wall_seconds_hashtable": 4e-4,
            "counters": {k: 0 for k in self._counter_keys()},
        }
        doc = {
            "schema": "repro.observe/bench",
            "version": 3,
            "scale": 0.1,
            "seed": 42,
            "engine": "hashtable",
            "calibration_seconds": 2e-3,
            "device": {"name": "NVIDIA A100", "sector_bytes": 32},
            "graphs": [row, dict(row)],
        }
        with pytest.raises(SchemaValidationError, match="duplicate"):
            validate_bench(doc)

    @staticmethod
    def _counter_keys():
        from repro.gpu.metrics import KernelCounters

        return KernelCounters().as_dict().keys()
