"""The query-bench document schema and its baseline regression gate."""

import pytest

from repro.errors import SchemaValidationError
from repro.observe.schema import (
    QUERY_BENCH_SCHEMA,
    QUERY_BENCH_SCHEMA_VERSION,
    validate_query_bench,
)
from repro.perf.baseline import compare_query_to_baseline


def _ops(membership, roster, diff):
    return {
        "membership": {"count": membership, "p50_us": 1.0, "p99_us": 3.0,
                       "mean_us": 1.2},
        "roster": {"count": roster, "p50_us": 4.0, "p99_us": 20.0,
                   "mean_us": 5.0},
        "diff": {"count": diff, "p50_us": 900.0, "p99_us": 2000.0,
                 "mean_us": 1000.0},
    }


def _doc(**overrides):
    doc = {
        "schema": QUERY_BENCH_SCHEMA,
        "version": QUERY_BENCH_SCHEMA_VERSION,
        "seed": 42,
        "lookups": 1000,
        "readers": 4,
        "zipf_s": 1.1,
        "op_mix": {"membership": 0.9, "roster": 0.09, "diff": 0.01},
        "graphs": [
            {
                "name": "small", "num_vertices": 1000,
                "num_communities": 20, "snapshot_bytes": 50_000,
                "versions": 2, "ops": _ops(450, 45, 5),
            },
            {
                "name": "large", "num_vertices": 10_000,
                "num_communities": 200, "snapshot_bytes": 500_000,
                "versions": 2, "ops": _ops(450, 45, 5),
            },
        ],
        "slo": {
            "membership_p99_us": 250.0,
            "worst_membership_p99_us": 3.0,
            "met": True,
        },
        "flatness": {
            "small_graph": "small", "large_graph": "large",
            "vertex_ratio": 10.0, "membership_p50_ratio": 1.0,
            "bound": 3.0, "met": True,
        },
    }
    doc.update(overrides)
    return doc


class TestQueryBenchSchema:
    def test_valid_document_passes(self):
        assert validate_query_bench(_doc()) is not None

    def test_wrong_schema_name_rejected(self):
        with pytest.raises(SchemaValidationError):
            validate_query_bench(_doc(schema="repro.observe/other"))

    def test_op_counts_must_sum_to_lookups(self):
        with pytest.raises(SchemaValidationError):
            validate_query_bench(_doc(lookups=1001))

    def test_op_mix_must_sum_to_one(self):
        with pytest.raises(SchemaValidationError):
            validate_query_bench(_doc(op_mix={
                "membership": 0.9, "roster": 0.2, "diff": 0.01,
            }))

    def test_single_graph_rejected(self):
        doc = _doc()
        doc["graphs"] = doc["graphs"][:1]
        doc["lookups"] = 500
        with pytest.raises(SchemaValidationError):
            validate_query_bench(doc)

    def test_duplicate_graph_name_rejected(self):
        doc = _doc()
        doc["graphs"][1]["name"] = "small"
        with pytest.raises(SchemaValidationError):
            validate_query_bench(doc)

    def test_p99_below_p50_rejected(self):
        doc = _doc()
        doc["graphs"][0]["ops"]["membership"]["p99_us"] = 0.5
        with pytest.raises(SchemaValidationError):
            validate_query_bench(doc)

    def test_inconsistent_slo_met_rejected(self):
        doc = _doc()
        doc["slo"]["worst_membership_p99_us"] = 999.0  # over budget
        with pytest.raises(SchemaValidationError):
            validate_query_bench(doc)

    def test_flatness_ratio_below_ten_rejected(self):
        doc = _doc()
        doc["flatness"]["vertex_ratio"] = 5.0
        with pytest.raises(SchemaValidationError):
            validate_query_bench(doc)

    def test_zipf_s_must_exceed_one(self):
        with pytest.raises(SchemaValidationError):
            validate_query_bench(_doc(zipf_s=1.0))


class TestCompareQueryToBaseline:
    def test_identical_documents_pass(self):
        assert compare_query_to_baseline(_doc(), _doc()) == []

    def test_seed_mismatch_refuses_to_gate(self):
        problems = compare_query_to_baseline(_doc(seed=7), _doc())
        assert len(problems) == 1
        assert "baseline mismatch" in problems[0]

    def test_missed_slo_is_a_hard_gate(self):
        current = _doc()
        current["slo"]["worst_membership_p99_us"] = 400.0
        current["slo"]["met"] = False
        problems = compare_query_to_baseline(current, _doc())
        assert any("SLO missed" in p for p in problems)

    def test_missed_flatness_is_a_hard_gate(self):
        current = _doc()
        current["flatness"]["membership_p50_ratio"] = 5.0
        current["flatness"]["met"] = False
        problems = compare_query_to_baseline(current, _doc())
        assert any("flatness missed" in p for p in problems)

    def test_p99_within_headroom_passes(self):
        # Under the absolute SLO budget: machine variance, not a problem.
        current = _doc()
        current["graphs"][0]["ops"]["membership"]["p99_us"] = 11.0
        assert compare_query_to_baseline(current, _doc()) == []

    def test_p99_beyond_slo_and_headroom_fails(self):
        current = _doc()
        current["graphs"][0]["ops"]["roster"]["p99_us"] = 9000.0
        problems = compare_query_to_baseline(current, _doc())
        assert any("small/roster" in p and "regressed" in p
                   for p in problems)

    def test_diff_latency_is_not_gated(self):
        # Diffs CRC two whole snapshots; their latency is size-bound and
        # intentionally outside the serving gate.
        current = _doc()
        current["graphs"][0]["ops"]["diff"]["p99_us"] = 1e9
        assert compare_query_to_baseline(current, _doc()) == []

    def test_missing_graph_reported_both_ways(self):
        current = _doc()
        current["graphs"][1]["name"] = "renamed"
        problems = compare_query_to_baseline(current, _doc())
        assert any("renamed: missing from baseline" in p for p in problems)
        assert any("large: present in baseline" in p for p in problems)
