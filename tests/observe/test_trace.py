"""Tests for the structured trace layer (events, tracer, engine hooks)."""

import numpy as np
import pytest

from repro.core.config import LPAConfig
from repro.core.lpa import nu_lpa
from repro.gpu.metrics import KernelCounters
from repro.observe.trace import (
    FaultRungEvent,
    IterationEvent,
    KernelLaunchEvent,
    Tracer,
    WaveEvent,
    counter_delta,
)

ENGINES = ["hashtable", "vectorized"]


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        t = Tracer(enabled=False)
        t.emit(IterationEvent(iteration=0, changed=1, processed=1,
                              pick_less=False, cross_check=False, reverted=0))
        assert len(t) == 0
        assert list(t) == []

    def test_enabled_tracer_records_in_order(self):
        t = Tracer()
        for i in range(3):
            t.emit(IterationEvent(iteration=i, changed=i, processed=i,
                                  pick_less=False, cross_check=False, reverted=0))
        assert len(t) == 3
        assert [e.iteration for e in t] == [0, 1, 2]

    def test_of_kind_filters(self):
        t = Tracer()
        t.emit(KernelLaunchEvent(iteration=0, kernel="thread-per-vertex",
                                 num_items=10, num_waves=1))
        t.emit(WaveEvent(iteration=0, kernel="thread-per-vertex",
                         wave_index=0, lo=0, hi=10, counters={}))
        t.emit(FaultRungEvent(iteration=0, attempt=0,
                              fault="HashtableFullError", action="retry"))
        assert [e.kind for e in t.of_kind("wave")] == ["wave"]
        assert len(t.of_kind("kernel_launch")) == 1
        assert len(t.of_kind("iteration")) == 0

    def test_as_dicts_tags_kind(self):
        t = Tracer()
        t.emit(KernelLaunchEvent(iteration=2, kernel="block-per-vertex",
                                 num_items=5, num_waves=2))
        (d,) = t.as_dicts()
        assert d["kind"] == "kernel_launch"
        assert d["iteration"] == 2
        assert d["num_waves"] == 2

    def test_clear(self):
        t = Tracer()
        t.emit(IterationEvent(iteration=0, changed=0, processed=0,
                              pick_less=False, cross_check=False, reverted=0))
        t.clear()
        assert len(t) == 0


class TestCounterDelta:
    def test_only_changed_fields(self):
        a = KernelCounters(edges_scanned=10, probes=4).as_dict()
        b = KernelCounters(edges_scanned=25, probes=4, atomic_cas=3).as_dict()
        assert counter_delta(a, b) == {"edges_scanned": 15, "atomic_cas": 3}

    def test_identical_snapshots_empty(self):
        c = KernelCounters(waves=2).as_dict()
        assert counter_delta(c, dict(c)) == {}


class TestEngineEmission:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_wave_deltas_reconcile_with_iteration_counters(self, small_web, engine):
        """Per-wave deltas + per-launch bookkeeping must sum to the run total."""
        tracer = Tracer()
        result = nu_lpa(small_web, LPAConfig(), engine=engine, tracer=tracer)

        rebuilt = KernelCounters()
        for ev in tracer.of_kind("wave"):
            rebuilt += KernelCounters(**ev.counters)
        for ev in tracer.of_kind("kernel_launch"):
            rebuilt.launches += 1
            rebuilt.waves += ev.num_waves

        total = result.total_counters
        # vertices_processed is committed at move end, outside the wave loop.
        rebuilt.vertices_processed = total.vertices_processed
        assert rebuilt == total

    @pytest.mark.parametrize("engine", ENGINES)
    def test_iteration_events_mirror_stats(self, small_web, engine):
        tracer = Tracer()
        result = nu_lpa(small_web, LPAConfig(), engine=engine, tracer=tracer)
        events = tracer.of_kind("iteration")
        assert len(events) == result.num_iterations
        for ev, it in zip(events, result.iterations):
            assert (ev.iteration, ev.changed, ev.processed, ev.reverted) == (
                it.iteration, it.changed, it.processed, it.reverted
            )
            assert ev.pick_less == it.pick_less
            assert ev.cross_check == it.cross_check

    def test_untraced_run_attaches_no_trace(self, small_web):
        result = nu_lpa(small_web, LPAConfig())
        assert result.trace is None
        assert result.profile is None

    def test_disabled_tracer_through_run_stays_empty(self, small_web):
        tracer = Tracer(enabled=False)
        result = nu_lpa(small_web, LPAConfig(), tracer=tracer)
        assert result.trace is tracer
        assert len(tracer) == 0

    def test_wave_bounds_cover_launch_items(self, small_web):
        """Each launch's waves must tile [0, num_items) without gaps."""
        tracer = Tracer()
        nu_lpa(small_web, LPAConfig(), engine="hashtable", tracer=tracer)
        launches = tracer.of_kind("kernel_launch")
        waves = tracer.of_kind("wave")
        assert launches and waves
        wi = 0
        for launch in launches:
            covered = 0
            for _ in range(launch.num_waves):
                ev = waves[wi]
                assert ev.kernel == launch.kernel
                assert ev.lo == covered
                covered = ev.hi
                wi += 1
            assert covered == launch.num_items
        assert wi == len(waves)
