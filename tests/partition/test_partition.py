"""Tests for size-constrained LPA partitioning."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.partition import (
    edge_cut_fraction,
    imbalance,
    partition_summary,
    size_constrained_lpa,
)
from repro.partition.metrics import edge_cut_weight


class TestMetrics:
    def test_cut_weight_counts_crossings_once(self, two_cliques):
        parts = np.array([0] * 5 + [1] * 5)
        assert edge_cut_weight(two_cliques, parts) == pytest.approx(1.0)

    def test_cut_fraction(self, two_cliques):
        parts = np.array([0] * 5 + [1] * 5)
        assert edge_cut_fraction(two_cliques, parts) == pytest.approx(1 / 21)

    def test_no_cut_single_part(self, two_cliques):
        assert edge_cut_fraction(two_cliques, np.zeros(10, dtype=int)) == 0.0

    def test_imbalance_perfect(self):
        assert imbalance(np.array([0, 0, 1, 1]), 2) == pytest.approx(0.0)

    def test_imbalance_skewed(self):
        assert imbalance(np.array([0, 0, 0, 1]), 2) == pytest.approx(0.5)

    def test_summary(self, two_cliques):
        s = partition_summary(two_cliques, np.array([0] * 5 + [1] * 5), 2)
        assert s.k == 2
        assert s.smallest_part == 5 and s.largest_part == 5


class TestPartitioner:
    def test_respects_balance(self, small_web):
        r = size_constrained_lpa(small_web, 8, epsilon=0.05)
        assert r.imbalance <= 0.06  # epsilon plus integer rounding

    def test_all_parts_used(self, small_web):
        r = size_constrained_lpa(small_web, 4)
        assert np.unique(r.parts).shape[0] == 4

    def test_beats_random_cut(self, small_road):
        r = size_constrained_lpa(small_road, 4)
        rng = np.random.default_rng(0)
        random_cut = edge_cut_fraction(
            small_road, rng.integers(0, 4, size=small_road.num_vertices)
        )
        assert r.edge_cut_fraction < random_cut * 0.6

    def test_cut_history_improves(self, small_road):
        r = size_constrained_lpa(small_road, 4)
        assert r.cut_history[-1] <= r.cut_history[0]

    def test_k_equals_one(self, triangle):
        r = size_constrained_lpa(triangle, 1)
        assert r.edge_cut_fraction == 0.0
        assert np.all(r.parts == 0)

    def test_deterministic(self, small_road):
        a = size_constrained_lpa(small_road, 4)
        b = size_constrained_lpa(small_road, 4)
        assert np.array_equal(a.parts, b.parts)

    def test_invalid_k(self, triangle):
        with pytest.raises(ConfigurationError):
            size_constrained_lpa(triangle, 0)
        with pytest.raises(ConfigurationError):
            size_constrained_lpa(triangle, 10)

    def test_invalid_epsilon(self, triangle):
        with pytest.raises(ConfigurationError):
            size_constrained_lpa(triangle, 2, epsilon=-0.1)

    def test_weighted_vertices_balance_by_weight(self, small_road):
        rng = np.random.default_rng(1)
        weights = rng.integers(1, 5, size=small_road.num_vertices)
        r = size_constrained_lpa(
            small_road, 4, epsilon=0.05, vertex_weights=weights
        )
        part_weight = np.zeros(4)
        np.add.at(part_weight, r.parts, weights)
        ideal = weights.sum() / 4
        assert part_weight.max() / ideal - 1.0 <= 0.06

    def test_invalid_weights_rejected(self, triangle):
        with pytest.raises(ConfigurationError):
            size_constrained_lpa(
                triangle, 2, vertex_weights=np.array([1, 0, 1])
            )
        with pytest.raises(ConfigurationError):
            size_constrained_lpa(triangle, 2, vertex_weights=np.array([1, 1]))

    def test_multilevel_pipeline_beats_direct(self, small_road):
        """Coarsen + partition + lift should cut fewer edges than direct."""
        from repro.graph.coarsen import coarsen
        from repro.partition.metrics import edge_cut_fraction as cut

        k = 4
        direct = size_constrained_lpa(small_road, k)
        hier = coarsen(small_road, max_weight=small_road.num_vertices // (4 * k))
        coarse_part = size_constrained_lpa(
            hier.coarsest, k, vertex_weights=hier.vertex_weights
        )
        lifted = coarse_part.parts[hier.mapping]
        assert cut(small_road, lifted) <= direct.edge_cut_fraction * 1.1

    def test_e2_runner(self):
        from repro.experiments import run_experiment

        r = run_experiment("E2", scale=0.08, datasets=["europe_osm"])
        v = r.values["europe_osm"]
        assert v["cut"] < v["random_cut"]
        assert v["imbalance"] <= 0.08
