"""Tests for the measurement harness."""

import pytest

from repro.perf.harness import ALGORITHMS, repeat_measure, run_measurement


class TestRunMeasurement:
    def test_all_algorithms_registered(self):
        assert set(ALGORITHMS) == {
            "nu-lpa", "flpa", "networkit-lpa", "gve-lpa",
            "gunrock-lpa", "cugraph-louvain",
        }

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_runs_on_custom_graph(self, two_cliques, algorithm):
        m = run_measurement(algorithm, two_cliques)
        assert m.dataset == "custom"
        assert -0.5 <= m.modularity <= 1.0
        assert m.num_communities >= 1
        assert m.modeled_seconds > 0

    def test_paper_scale_extrapolation(self, small_road):
        local = run_measurement("nu-lpa", small_road)
        scaled = run_measurement("nu-lpa", small_road, dataset="asia_osm")
        assert scaled.modeled_seconds > local.modeled_seconds

    def test_details_populated_for_nu_lpa(self, two_cliques):
        m = run_measurement("nu-lpa", two_cliques)
        assert m.details["edges_scanned"] > 0


class TestRepeat:
    def test_averaging(self, two_cliques):
        m = repeat_measure("flpa", two_cliques, repeats=2)
        assert m.algorithm == "flpa"
        assert m.modeled_seconds > 0
