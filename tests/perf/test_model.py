"""Tests for the cost models and extrapolation."""

import numpy as np
import pytest

from repro.baselines.common import BaselineResult
from repro.gpu.metrics import KernelCounters
from repro.perf.model import (
    Ratios,
    estimate_flpa_seconds,
    estimate_gpu_seconds,
    estimate_gunrock_seconds,
    estimate_networkit_seconds,
    extrapolation_ratios,
    scale_counters,
)
from repro.perf.platforms import A100_PLATFORM


def _result(edges=1000, vertices=100, iterations=3):
    return BaselineResult(
        labels=np.zeros(vertices, dtype=np.int64),
        algorithm="x",
        iterations=iterations,
        converged=True,
        edges_scanned=edges,
        vertices_processed=vertices,
    )


class TestRatios:
    def test_identity_without_paper_target(self, triangle):
        r = extrapolation_ratios(triangle, None, None)
        assert r.edges == 1.0 and r.vertices == 1.0

    def test_ratios_computed(self, triangle):
        r = extrapolation_ratios(triangle, 30, 600)
        assert r.vertices == pytest.approx(10.0)
        assert r.edges == pytest.approx(100.0)


class TestScaleCounters:
    def test_edge_counters_scale_with_edges(self):
        c = KernelCounters(probes=10, sectors_read=20, edges_scanned=30)
        s = scale_counters(c, Ratios(edges=10.0, vertices=2.0))
        assert s.probes == 100
        assert s.sectors_read == 200

    def test_vertex_counters_scale_with_vertices(self):
        c = KernelCounters(vertices_processed=10, waves=4)
        s = scale_counters(c, Ratios(edges=10.0, vertices=3.0))
        assert s.vertices_processed == 30
        assert s.waves == 12

    def test_launches_do_not_scale(self):
        c = KernelCounters(launches=7)
        s = scale_counters(c, Ratios(edges=100.0, vertices=100.0))
        assert s.launches == 7


class TestGpuModel:
    def test_monotone_in_traffic(self):
        small = estimate_gpu_seconds(KernelCounters(sectors_read=10**6))
        large = estimate_gpu_seconds(KernelCounters(sectors_read=10**8))
        assert large > small

    def test_all_terms_contribute(self):
        base = estimate_gpu_seconds(KernelCounters())
        for field in ("launches", "waves", "sectors_read",
                      "warp_serial_probes", "atomic_conflicts"):
            c = KernelCounters(**{field: 10**6})
            assert estimate_gpu_seconds(c) > base

    def test_it2004_anchor(self):
        """The calibration target: ~1.6s for a paper-scale it-2004 run."""
        from repro.core import nu_lpa
        from repro.graph.datasets import generate_standin, get_dataset
        from repro.perf.model import estimate_lpa_result_seconds

        g = generate_standin("it-2004", scale=0.15, seed=42)
        spec = get_dataset("it-2004")
        ratios = extrapolation_ratios(
            g, spec.paper_num_vertices, spec.paper_num_edges
        )
        result = nu_lpa(g, engine="hashtable")
        secs = estimate_lpa_result_seconds(result, ratios)
        assert 0.5 < secs < 5.0  # within ~3x of the paper's 1.6 s


class TestBaselineModels:
    def test_flpa_slowest_per_edge(self):
        r = _result(edges=10**6)
        ratios = Ratios(1.0, 1.0)
        assert estimate_flpa_seconds(r, ratios) > estimate_networkit_seconds(r, ratios)

    def test_networkit_uses_cores(self):
        from repro.perf.platforms import CpuPlatform

        r = _result(edges=10**6)
        one = CpuPlatform(name="x", cores=1, edge_cost=1e-7, vertex_cost=0.0)
        many = CpuPlatform(name="y", cores=32, edge_cost=1e-7, vertex_cost=0.0)
        assert estimate_networkit_seconds(r, Ratios(1, 1), one) > \
            estimate_networkit_seconds(r, Ratios(1, 1), many)

    def test_gunrock_faster_than_flpa(self):
        r = _result(edges=10**7)
        assert estimate_gunrock_seconds(r, Ratios(1, 1)) < \
            estimate_flpa_seconds(r, Ratios(1, 1))

    def test_extrapolation_scales_linearly(self):
        r = _result(edges=1000)
        t1 = estimate_flpa_seconds(r, Ratios(1.0, 1.0))
        t100 = estimate_flpa_seconds(r, Ratios(100.0, 100.0))
        assert t100 == pytest.approx(100 * t1, rel=1e-9)
