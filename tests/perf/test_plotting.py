"""Tests for ASCII chart rendering."""

import pytest

from repro.perf.plotting import bar_chart, log_bar_chart, series_chart


class TestBarChart:
    def test_max_value_fills_width(self):
        out = bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = out.splitlines()
        assert lines[1].count("█") == 10
        assert lines[0].count("█") == 5

    def test_labels_aligned(self):
        out = bar_chart({"short": 1.0, "longer-name": 1.0})
        lines = out.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_title(self):
        out = bar_chart({"a": 1.0}, title="T")
        assert out.startswith("T\n")

    def test_empty(self):
        assert bar_chart({}, title="nothing") == "nothing"

    def test_values_printed(self):
        out = bar_chart({"a": 0.125}, fmt=".3f")
        assert "0.125" in out


class TestLogBarChart:
    def test_log_scaling_compresses_ratios(self):
        out = log_bar_chart({"fast": 1.0, "slow": 1000.0}, width=30)
        lines = out.splitlines()
        fast_len = lines[0].count("█")
        slow_len = lines[1].count("█")
        assert slow_len == 30
        assert fast_len >= 1  # floored to stay visible

    def test_non_positive_flagged(self):
        out = log_bar_chart({"ok": 1.0, "zero": 0.0})
        assert "non-positive" in out

    def test_single_value(self):
        out = log_bar_chart({"only": 5.0})
        assert "only" in out


class TestSeriesChart:
    def test_groups_rendered(self):
        out = series_chart({"g1": {"a": 1.0}, "g2": {"b": 2.0}})
        assert "g1:" in out and "g2:" in out
        assert "  a" in out


class TestCliPlot:
    def test_experiments_plot_flag(self, capsys):
        from repro.experiments.__main__ import main

        main(["F5", "--scale", "0.05", "--datasets", "asia_osm", "--plot"])
        out = capsys.readouterr().out
        assert "█" in out
