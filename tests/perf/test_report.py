"""Tests for report formatting."""

import pytest

from repro.perf.report import (
    RelativeSeries,
    format_series,
    format_table,
    geometric_mean,
)


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_ignores_non_positive(self):
        assert geometric_mean([0.0, 2.0, 8.0]) == pytest.approx(4.0)


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "long"], [["x", "1"], ["yy", "22"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title(self):
        out = format_table(["h"], [["v"]], title="T")
        assert out.startswith("T\n")


class TestRelativeSeries:
    def test_relative_to(self):
        ref = RelativeSeries("ref", {"a": 2.0, "b": 4.0})
        s = RelativeSeries("x", {"a": 4.0, "b": 4.0})
        rel = s.relative_to(ref)
        assert rel == {"a": 2.0, "b": 1.0}

    def test_mean_relative(self):
        ref = RelativeSeries("ref", {"a": 1.0, "b": 1.0})
        s = RelativeSeries("x", {"a": 2.0, "b": 8.0})
        assert s.mean_relative(ref) == pytest.approx(4.0)

    def test_missing_datasets_skipped(self):
        ref = RelativeSeries("ref", {"a": 1.0})
        s = RelativeSeries("x", {"a": 3.0, "b": 9.0})
        assert s.relative_to(ref) == {"a": 3.0}

    def test_format_series_reference_row_is_one(self):
        series = [
            RelativeSeries("ref", {"a": 2.0}),
            RelativeSeries("x", {"a": 6.0}),
        ]
        out = format_series(series, "ref")
        ref_line = [l for l in out.splitlines() if l.startswith("ref")][0]
        assert "1.000" in ref_line
