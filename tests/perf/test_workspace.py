"""Unit tests for the WorkspaceArena and the bench-baseline perf gate."""

import numpy as np
import pytest

from repro.perf.baseline import compare_to_baseline, measure_calibration
from repro.perf.workspace import WorkspaceArena, iota, take


class TestWorkspaceArena:
    def test_take_size_and_dtype(self):
        arena = WorkspaceArena()
        buf = arena.take("x", 10, np.float32)
        assert buf.shape == (10,) and buf.dtype == np.float32

    def test_steady_state_reuses_backing_buffer(self):
        arena = WorkspaceArena()
        first = arena.take("x", 100, np.int64)
        first[:] = 7
        again = arena.take("x", 60, np.int64)
        # Same backing memory, zero-copy slice.
        assert again.base is first.base or again.base is first
        assert arena.stats()["grows"] == 1

    def test_grow_only_geometric(self):
        arena = WorkspaceArena()
        arena.take("x", 100, np.int64)
        arena.take("x", 101, np.int64)  # grows to >= 200
        grows = arena.stats()["grows"]
        arena.take("x", 180, np.int64)  # inside the doubled capacity
        assert arena.stats()["grows"] == grows

    def test_dtype_tags_are_separate_slots(self):
        arena = WorkspaceArena()
        a = arena.take("x", 16, np.int64)
        b = arena.take("x", 16, np.float64)
        a[:] = 1
        b[:] = 2.0
        assert (arena.take("x", 16, np.int64) == 1).all()
        assert arena.stats()["slots"] == 2

    def test_different_names_never_alias(self):
        arena = WorkspaceArena()
        a = arena.take("a", 8, np.int64)
        b = arena.take("b", 8, np.int64)
        a[:] = 1
        b[:] = 2
        assert (a == 1).all() and (b == 2).all()

    def test_iota_contents_and_reuse(self):
        arena = WorkspaceArena()
        r = arena.iota(5)
        assert np.array_equal(r, np.arange(5))
        r2 = arena.iota(3)
        assert np.array_equal(r2, np.arange(3))
        assert np.shares_memory(r, r2)

    def test_module_take_without_arena_allocates_fresh(self):
        a = take(None, "x", 12, np.float32)
        b = take(None, "x", 12, np.float32)
        assert a.shape == (12,) and not np.shares_memory(a, b)
        assert np.array_equal(iota(None, 4), np.arange(4))

    def test_module_take_with_arena_delegates(self):
        arena = WorkspaceArena()
        a = take(arena, "x", 12, np.float32)
        b = take(arena, "x", 12, np.float32)
        assert np.shares_memory(a, b)

    def test_stats_counts_takes(self):
        arena = WorkspaceArena()
        arena.take("x", 4, np.int64)
        arena.take("x", 4, np.int64)
        stats = arena.stats()
        assert stats["takes"] == 2 and stats["grown_bytes"] > 0


def _bench_doc(**overrides):
    doc = {
        "scale": 0.1,
        "seed": 42,
        "engine": "hashtable",
        "calibration_seconds": 2e-3,
        "graphs": [
            {"name": "asia_osm", "modeled_seconds": 1e-3, "wall_seconds": 5e-3},
            {"name": "sk-2005", "modeled_seconds": 4e-3, "wall_seconds": 9e-2},
        ],
    }
    doc.update(overrides)
    return doc


class TestCompareToBaseline:
    def test_identical_docs_pass(self):
        assert compare_to_baseline(_bench_doc(), _bench_doc()) == []

    def test_modeled_regression_detected_per_graph(self):
        current = _bench_doc()
        current["graphs"][1] = dict(current["graphs"][1], modeled_seconds=5e-3)
        problems = compare_to_baseline(current, _bench_doc())
        assert len(problems) == 1 and "sk-2005" in problems[0]
        assert "modelled seconds" in problems[0]

    def test_modeled_improvement_passes(self):
        current = _bench_doc()
        current["graphs"][1] = dict(current["graphs"][1], modeled_seconds=1e-3)
        assert compare_to_baseline(current, _bench_doc()) == []

    def test_wall_regression_is_calibration_normalised(self):
        # 2x slower walls on a 2x slower machine is NOT a regression...
        current = _bench_doc(calibration_seconds=4e-3)
        current["graphs"] = [
            dict(g, wall_seconds=g["wall_seconds"] * 2)
            for g in current["graphs"]
        ]
        assert compare_to_baseline(current, _bench_doc()) == []
        # ...but 2x slower walls at equal calibration is.
        current = _bench_doc()
        current["graphs"] = [
            dict(g, wall_seconds=g["wall_seconds"] * 2)
            for g in current["graphs"]
        ]
        problems = compare_to_baseline(current, _bench_doc())
        assert len(problems) == 1 and "wall clock" in problems[0]

    def test_small_wall_noise_tolerated(self):
        current = _bench_doc()
        current["graphs"] = [
            dict(g, wall_seconds=g["wall_seconds"] * 1.05)
            for g in current["graphs"]
        ]
        assert compare_to_baseline(current, _bench_doc()) == []

    def test_scale_mismatch_refuses_to_gate(self):
        problems = compare_to_baseline(_bench_doc(scale=0.25), _bench_doc())
        assert len(problems) == 1 and "refresh the baseline" in problems[0]

    def test_missing_and_extra_graphs_reported(self):
        current = _bench_doc()
        current["graphs"][1] = dict(current["graphs"][1], name="kmer_A2a")
        problems = compare_to_baseline(current, _bench_doc())
        assert any("kmer_A2a" in p and "missing from baseline" in p
                   for p in problems)
        assert any("sk-2005" in p and "not in current" in p for p in problems)


class TestCalibration:
    def test_calibration_positive_and_fast(self):
        secs = measure_calibration(repeats=2)
        assert 0 < secs < 5.0
