"""Property-based tests on algorithm-level invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.louvain import aggregate_graph
from repro.graph.build import from_edges
from repro.hashing.parallel_hashtable import parallel_accumulate, segmented_clear
from repro.hashing.primes import secondary_prime, table_capacity
from repro.hashing.probing import ProbeStrategy
from repro.metrics.modularity import delta_modularity, modularity
from repro.partition import imbalance, size_constrained_lpa
from repro.types import EMPTY_KEY


@st.composite
def graphs_with_labels(draw):
    n = draw(st.integers(3, 20))
    m = draw(st.integers(2, 50))
    src = np.asarray(draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m)))
    dst = np.asarray(draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m)))
    g = from_edges(src, dst, num_vertices=n)
    labels = np.asarray(
        draw(st.lists(st.integers(0, 4), min_size=n, max_size=n))
    )
    return g, labels


class TestModularityProperties:
    @given(graphs_with_labels())
    @settings(max_examples=50, deadline=None)
    def test_aggregation_preserves_modularity(self, data):
        """Louvain phase 2 must not change Q for any labeling."""
        g, labels = data
        agg = aggregate_graph(g, labels)
        _, compact = np.unique(labels, return_inverse=True)
        q_orig = modularity(g, labels)
        q_agg = modularity(agg, np.arange(agg.num_vertices))
        assert q_agg == pytest.approx(q_orig, abs=1e-9)

    @given(graphs_with_labels(), st.integers(0, 19), st.integers(0, 4))
    @settings(max_examples=50, deadline=None)
    def test_delta_modularity_equals_brute_force(self, data, v_raw, c):
        """Equation 2 must agree with recomputing Q for every move."""
        g, labels = data
        v = v_raw % g.num_vertices
        dq = delta_modularity(g, labels, v, c)
        moved = labels.copy()
        moved[v] = c
        brute = modularity(g, moved) - modularity(g, labels)
        assert dq == pytest.approx(brute, abs=1e-9)


class TestProbeCoverage:
    @given(
        st.integers(2, 8),           # capacity bits
        st.integers(1, 997),         # key multiplier (spread pattern)
        st.sampled_from(list(ProbeStrategy)),
    )
    @settings(max_examples=60, deadline=None)
    def test_full_table_always_fits(self, bits, mult, strategy):
        """With the linear fallback, p1 distinct keys always place."""
        p1 = (1 << bits) - 1
        keys_buf = np.full(2 * (p1 + 1), EMPTY_KEY, dtype=np.int64)
        values_buf = np.zeros(2 * (p1 + 1), dtype=np.float64)
        base = np.asarray([0])
        p1a = np.asarray([p1])
        p2a = np.asarray([secondary_prime(p1)])
        keys = (np.arange(p1, dtype=np.int64) * mult) % (10 * p1)
        keys = np.unique(keys)  # distinct
        segmented_clear(keys_buf, values_buf, base, p1a)
        parallel_accumulate(
            keys_buf, values_buf, base, p1a, p2a,
            np.zeros(keys.shape[0], dtype=np.int64), keys,
            np.ones(keys.shape[0]), strategy,
        )
        live = keys_buf[: p1]
        assert np.count_nonzero(live != EMPTY_KEY) == keys.shape[0]

    @given(st.integers(1, 4000))
    @settings(max_examples=100, deadline=None)
    def test_capacity_invariants(self, degree):
        p1 = int(table_capacity(degree))
        p2 = int(secondary_prime(p1))
        assert degree <= p1 <= 2 * degree
        assert p2 > p1
        import math

        assert math.gcd(p1, p2) == 1


class TestPartitionProperties:
    @given(graphs_with_labels(), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_partition_respects_balance(self, data, k):
        g, _ = data
        k = min(k, g.num_vertices)
        r = size_constrained_lpa(g, k, epsilon=0.1, max_sweeps=5)
        # Capacity bound: strictly below (1 + eps) * n/k per part, so the
        # imbalance never exceeds epsilon plus one vertex of rounding.
        assert imbalance(r.parts, k) <= 0.1 + k / g.num_vertices + 1e-9
        assert r.parts.min() >= 0 and r.parts.max() < k
