"""Property-based tests for the graph substrate (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.build import deduplicate_edges, from_edges, symmetrize_edges
from repro.graph.properties import connected_components, is_symmetric


@st.composite
def edge_lists(draw, max_vertices=30, max_edges=80):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m).map(np.asarray)
    )
    dst = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m).map(np.asarray)
    )
    return n, np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64)


class TestBuildInvariants:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_from_edges_always_symmetric(self, data):
        n, src, dst = data
        g = from_edges(src, dst, num_vertices=n)
        assert is_symmetric(g)

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_offsets_consistent(self, data):
        n, src, dst = data
        g = from_edges(src, dst, num_vertices=n)
        assert g.offsets[0] == 0
        assert g.offsets[-1] == g.num_edges
        assert np.all(np.diff(g.offsets) == g.degrees)

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_no_parallel_arcs_after_dedupe(self, data):
        n, src, dst = data
        g = from_edges(src, dst, num_vertices=n)
        keys = g.source_ids() * np.int64(max(n, 1)) + g.targets
        assert np.unique(keys).shape[0] == keys.shape[0]

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_symmetrize_then_dedupe_idempotent(self, data):
        n, src, dst = data
        s1, d1, w1 = symmetrize_edges(src, dst)
        s1, d1, w1 = deduplicate_edges(s1, d1, w1, num_vertices=n)
        s2, d2, w2 = symmetrize_edges(s1, d1, w1)
        s2, d2, w2 = deduplicate_edges(s2, d2, w2, num_vertices=n)
        assert np.array_equal(s1, s2) and np.array_equal(d1, d2)
        assert np.allclose(w1, w2)


class TestComponentInvariants:
    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_endpoints_share_component(self, data):
        n, src, dst = data
        g = from_edges(src, dst, num_vertices=n)
        comp = connected_components(g)
        s = g.source_ids()
        assert np.all(comp[s] == comp[g.targets])

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_component_ids_compact(self, data):
        n, src, dst = data
        g = from_edges(src, dst, num_vertices=n)
        comp = connected_components(g)
        uniq = np.unique(comp)
        assert np.array_equal(uniq, np.arange(uniq.shape[0]))
