"""Property-based tests: hashtables must behave exactly like dicts."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hashing.parallel_hashtable import (
    parallel_accumulate,
    segmented_clear,
    segmented_max_key,
)
from repro.hashing.probing import ProbeStrategy
from repro.types import EMPTY_KEY


@st.composite
def workloads(draw):
    """A few tables plus a stream of (table, key, value) accumulations."""
    n_tables = draw(st.integers(1, 4))
    cap_bits = [draw(st.integers(2, 6)) for _ in range(n_tables)]
    capacities = [(1 << b) - 1 for b in cap_bits]
    n_entries = draw(st.integers(0, 60))
    entries = []
    for _ in range(n_entries):
        t = draw(st.integers(0, n_tables - 1))
        # Bound distinct keys per table by its capacity so inserts fit.
        key = draw(st.integers(0, capacities[t] - 1)) * 997 + 1
        value = draw(st.floats(0.1, 10.0, allow_nan=False))
        entries.append((t, key, value))
    strategy = draw(st.sampled_from(list(ProbeStrategy)))
    return capacities, entries, strategy


def _tables(capacities):
    caps = np.asarray(capacities, dtype=np.int64)
    base = np.zeros(caps.shape[0], dtype=np.int64)
    np.cumsum(2 * (caps + 1)[:-1], out=base[1:])
    size = int((2 * (caps + 1)).sum())
    keys = np.full(size, EMPTY_KEY, dtype=np.int64)
    values = np.zeros(size, dtype=np.float64)
    p2 = 2 * (caps + 1) - 1
    return keys, values, base, caps, p2


class TestDictEquivalence:
    @given(workloads())
    @settings(max_examples=80, deadline=None)
    def test_accumulate_matches_dict(self, workload):
        capacities, entries, strategy = workload
        keys_buf, values_buf, base, p1, p2 = _tables(capacities)
        segmented_clear(keys_buf, values_buf, base, p1)

        expected: list[dict[int, float]] = [dict() for _ in capacities]
        for t, k, v in entries:
            expected[t][k] = expected[t].get(k, 0.0) + v

        if entries:
            et = np.asarray([e[0] for e in entries], dtype=np.int64)
            ek = np.asarray([e[1] for e in entries], dtype=np.int64)
            ev = np.asarray([e[2] for e in entries], dtype=np.float64)
            parallel_accumulate(
                keys_buf, values_buf, base, p1, p2, et, ek, ev, strategy
            )

        for t in range(len(capacities)):
            got: dict[int, float] = {}
            for s in range(p1[t]):
                k = keys_buf[base[t] + s]
                if k != EMPTY_KEY:
                    got[int(k)] = float(values_buf[base[t] + s])
            assert got.keys() == expected[t].keys()
            for k in expected[t]:
                assert got[k] == pytest.approx(expected[t][k], rel=1e-9)

    @given(workloads())
    @settings(max_examples=60, deadline=None)
    def test_max_key_is_argmax(self, workload):
        capacities, entries, strategy = workload
        keys_buf, values_buf, base, p1, p2 = _tables(capacities)
        segmented_clear(keys_buf, values_buf, base, p1)
        expected: list[dict[int, float]] = [dict() for _ in capacities]
        for t, k, v in entries:
            expected[t][k] = expected[t].get(k, 0.0) + v
        if entries:
            et = np.asarray([e[0] for e in entries], dtype=np.int64)
            ek = np.asarray([e[1] for e in entries], dtype=np.int64)
            ev = np.asarray([e[2] for e in entries], dtype=np.float64)
            parallel_accumulate(
                keys_buf, values_buf, base, p1, p2, et, ek, ev, strategy
            )
        fallback = np.full(len(capacities), -7, dtype=np.int64)
        best = segmented_max_key(keys_buf, values_buf, base, p1, fallback)
        for t, exp in enumerate(expected):
            if not exp:
                assert best[t] == -7
            else:
                # The returned key must attain the maximum total.
                assert exp[int(best[t])] == pytest.approx(
                    max(exp.values()), rel=1e-9
                )

    @given(workloads())
    @settings(max_examples=30, deadline=None)
    def test_clear_is_idempotent_reset(self, workload):
        capacities, entries, strategy = workload
        keys_buf, values_buf, base, p1, p2 = _tables(capacities)
        if entries:
            et = np.asarray([e[0] for e in entries], dtype=np.int64)
            ek = np.asarray([e[1] for e in entries], dtype=np.int64)
            ev = np.asarray([e[2] for e in entries], dtype=np.float64)
            segmented_clear(keys_buf, values_buf, base, p1)
            parallel_accumulate(
                keys_buf, values_buf, base, p1, p2, et, ek, ev, strategy
            )
        segmented_clear(keys_buf, values_buf, base, p1)
        for t in range(len(capacities)):
            live = keys_buf[base[t] : base[t] + p1[t]]
            assert np.all(live == EMPTY_KEY)
