"""Property-based at-rest integrity: any single-bit flip is detected or harmless.

The soak samples random flips; these properties let hypothesis drive the
flip position over the whole file and assert the dichotomy directly —
every single-bit flip in a published RPSNAP01 snapshot (or a committed
checkpoint generation) is either *detected* by the existing read/fsck
path or *provably harmless* (the decoded payload is bit-identical, the
flip landed in alignment padding or unused container bytes).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import LPAConfig, ResilienceConfig
from repro.core.lpa import nu_lpa
from repro.errors import SnapshotError
from repro.graph.generators import web_graph
from repro.resilience.checkpoint import fsck as ckpt_fsck
from repro.service.read import Snapshot, SnapshotCatalog

_DAMAGED = ("corrupt", "unreadable")


@pytest.fixture(scope="module")
def snapshot_blob(tmp_path_factory):
    """(original bytes, reference labels, scratch path) for one snapshot."""
    root = tmp_path_factory.mktemp("snap-prop")
    labels = np.arange(97, dtype=np.int64) % 13
    catalog = SnapshotCatalog(root / "catalog")
    path = catalog.publish("prop", labels)
    scratch = root / "scratch.snap"
    return path.read_bytes(), labels, scratch


@pytest.fixture(scope="module")
def checkpoint_blob(tmp_path_factory):
    """(original bytes, reference labels, scratch dir, victim name)."""
    root = tmp_path_factory.mktemp("ckpt-prop")
    graph = web_graph(80, seed=4)
    result = nu_lpa(
        graph, LPAConfig(max_iterations=4), warn_on_no_convergence=False,
        resilience=ResilienceConfig(
            checkpoint_dir=root / "ring", checkpoint_every=1,
        ),
    )
    victims = sorted((root / "ring").glob("ckpt-*.npz"))
    victim = victims[-1]
    scratch = root / "scratch"
    scratch.mkdir()
    # The scratch ring holds only the newest generation, so a harmless
    # flip must decode to exactly the final state (no older fallback).
    original = victim.read_bytes()
    return original, result.labels.copy(), scratch, victim.name


@given(data=st.data())
@settings(max_examples=80, deadline=None)
def test_snapshot_single_bit_flip_detected_or_harmless(snapshot_blob, data):
    original, labels, scratch = snapshot_blob
    position = data.draw(st.integers(0, len(original) * 8 - 1), label="bit")
    blob = bytearray(original)
    blob[position // 8] ^= 1 << (position % 8)
    scratch.write_bytes(bytes(blob))
    try:
        snap = Snapshot.open(scratch, verify=True)
    except SnapshotError:
        return  # detected
    try:
        # Harmless: the flip must have landed in alignment padding — the
        # decoded labels are bit-identical to what was published.
        assert np.array_equal(np.asarray(snap.labels), labels)
    finally:
        snap.close()


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_checkpoint_single_bit_flip_detected_or_harmless(checkpoint_blob, data):
    from repro.resilience.checkpoint import CheckpointManager

    original, labels, scratch, victim_name = checkpoint_blob
    position = data.draw(st.integers(0, len(original) * 8 - 1), label="bit")
    blob = bytearray(original)
    blob[position // 8] ^= 1 << (position % 8)
    (scratch / victim_name).write_bytes(bytes(blob))
    entries = ckpt_fsck(scratch)
    if any(e.status in _DAMAGED for e in entries):
        return  # detected
    # fsck says clean: loading must reproduce the committed state exactly.
    state = CheckpointManager(scratch).latest()
    assert state is not None
    assert np.array_equal(state.labels, labels)
