"""Property-based tests on LPA and metric invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import LPAConfig, nu_lpa
from repro.core.engine_vectorized import best_labels_groupby
from repro.graph.build import from_edges
from repro.metrics import modularity, normalized_mutual_information
from repro.metrics.community_stats import compact_labels


@st.composite
def small_graphs(draw):
    n = draw(st.integers(2, 25))
    m = draw(st.integers(1, 60))
    src = np.asarray(draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m)))
    dst = np.asarray(draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m)))
    return from_edges(src, dst, num_vertices=n)


@st.composite
def groupby_inputs(draw):
    n_tables = draw(st.integers(1, 5))
    n = draw(st.integers(0, 40))
    table_id = np.sort(
        np.asarray(draw(st.lists(st.integers(0, n_tables - 1), min_size=n, max_size=n)),
                   dtype=np.int64)
    )
    keys = np.asarray(
        draw(st.lists(st.integers(0, 8), min_size=n, max_size=n)), dtype=np.int64
    )
    values = np.asarray(
        draw(st.lists(st.floats(0.1, 5.0), min_size=n, max_size=n)), dtype=np.float64
    )
    fallback = np.arange(n_tables, dtype=np.int64) + 100
    return table_id, keys, values, n_tables, fallback


class TestGroupbyProperties:
    @given(groupby_inputs())
    @settings(max_examples=80, deadline=None)
    def test_matches_bruteforce(self, data):
        table_id, keys, values, n_tables, fallback = data
        got = best_labels_groupby(table_id, keys, values, fallback)
        for t in range(n_tables):
            sums: dict[int, float] = {}
            for i in range(keys.shape[0]):
                if table_id[i] == t:
                    sums[int(keys[i])] = sums.get(int(keys[i]), 0.0) + values[i]
            if not sums:
                assert got[t] == fallback[t]
            else:
                # The brute force sums each group in input order — the same
                # order ``np.add.reduceat`` uses — so group sums match the
                # implementation bit for bit and ties are *exact* float
                # ties: no epsilon, which would mislabel near-ties (two
                # drawn floats within 1e-12) as ties and flake.
                best = max(sums.values())
                winners = {k for k, v in sums.items() if v == best}
                assert int(got[t]) == min(winners)  # smallest-label tie-break

    @given(groupby_inputs())
    @settings(max_examples=40, deadline=None)
    def test_hash_tie_break_still_maximal(self, data):
        table_id, keys, values, n_tables, fallback = data
        got = best_labels_groupby(
            table_id, keys, values, fallback, tie_break="hash"
        )
        for t in range(n_tables):
            sums: dict[int, float] = {}
            for i in range(keys.shape[0]):
                if table_id[i] == t:
                    sums[int(keys[i])] = sums.get(int(keys[i]), 0.0) + values[i]
            if sums:
                assert sums[int(got[t])] == pytest.approx(max(sums.values()))


class TestLpaInvariants:
    @given(small_graphs())
    @settings(max_examples=40, deadline=None)
    def test_labels_always_valid(self, g):
        r = nu_lpa(g, LPAConfig(max_iterations=5))
        assert r.labels.shape[0] == g.num_vertices
        assert np.all((r.labels >= 0) & (r.labels < g.num_vertices))

    @given(small_graphs())
    @settings(max_examples=30, deadline=None)
    def test_engines_produce_valid_partitions(self, g):
        for engine in ("vectorized", "hashtable"):
            r = nu_lpa(g, LPAConfig(max_iterations=4), engine=engine)
            assert np.unique(r.labels).shape[0] >= 1

    @given(small_graphs())
    @settings(max_examples=30, deadline=None)
    def test_modularity_bounds(self, g):
        r = nu_lpa(g, LPAConfig(max_iterations=5))
        q = modularity(g, r.labels)
        assert -0.5 - 1e-9 <= q <= 1.0 + 1e-9


class TestMetricInvariants:
    @given(st.lists(st.integers(0, 6), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_nmi_self_is_one(self, labels):
        arr = np.asarray(labels)
        assert normalized_mutual_information(arr, arr) == pytest.approx(1.0)

    @given(
        st.lists(st.integers(0, 6), min_size=1, max_size=60),
        st.integers(1, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_nmi_invariant_under_relabeling(self, labels, offset):
        a = np.asarray(labels)
        b = (a + offset) * 13  # injective relabel
        other = np.roll(a, 1)
        assert normalized_mutual_information(a, other) == pytest.approx(
            normalized_mutual_information(b, other), abs=1e-9
        )

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_compact_labels_preserves_partition(self, labels):
        arr = np.asarray(labels)
        out = compact_labels(arr)
        assert out.max() + 1 == np.unique(arr).shape[0]
        # Same-group relation preserved.
        for i in range(0, arr.shape[0], 7):
            same = arr == arr[i]
            assert np.all((out == out[i]) == same)
