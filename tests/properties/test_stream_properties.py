"""Property-based tests for the streaming pipeline (hypothesis).

The replay contract behind crash recovery: applying a delta log is a
*pure function* of (base graph, batch prefix).  Re-applying the same log,
or resuming from any intermediate epoch and replaying the tail, must
yield bit-identical CSR arrays — that is what lets snapshots store labels
only and lets a killed processor resume anywhere.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph.build import from_edges
from repro.stream.delta import DeltaBatch, DeltaOp
from repro.stream.epoch import apply_batch


def _base_graph(n):
    # Ring over n vertices: every vertex has degree 2, ids stay small.
    src = np.arange(n, dtype=np.int64)
    dst = (src + 1) % n
    return from_edges(src, dst, num_vertices=n, symmetrize=True)


@st.composite
def delta_logs(draw, max_vertices=12, max_batches=5, max_ops=6):
    """A base graph plus a batch sequence that is valid when replayed.

    Ops are generated against a tracked edge set so removes/updates always
    name a live edge — the property under test is replay determinism, not
    quarantine (covered by the unit tests).
    """
    n = draw(st.integers(min_value=4, max_value=max_vertices))
    edges = {(min(i, (i + 1) % n), max(i, (i + 1) % n)) for i in range(n)}
    num_batches = draw(st.integers(min_value=1, max_value=max_batches))
    batches = []
    for _ in range(num_batches):
        ops = []
        for _ in range(draw(st.integers(min_value=1, max_value=max_ops))):
            kind = draw(st.sampled_from(["add", "remove", "update"]))
            if kind == "add":
                a = draw(st.integers(0, n - 1))
                b = draw(st.integers(0, n - 1))
                key = (min(a, b), max(a, b))
                if a == b or key in edges:
                    continue
                edges.add(key)
                w = draw(st.floats(0.1, 10.0, allow_nan=False))
                ops.append(DeltaOp("add", a, b, weight=w))
            elif edges:
                key = draw(st.sampled_from(sorted(edges)))
                if kind == "remove":
                    edges.discard(key)
                    ops.append(DeltaOp("remove", key[0], key[1]))
                else:
                    w = draw(st.floats(0.1, 10.0, allow_nan=False))
                    ops.append(DeltaOp("update", key[0], key[1], weight=w))
        batches.append(DeltaBatch(ops=tuple(ops)))
    return n, batches


def _replay(graph, batches):
    for batch in batches:
        graph = apply_batch(graph, batch).graph
    return graph


def _arrays(graph):
    return (graph.offsets, graph.targets, graph.weights)


def _identical(a, b):
    return all(np.array_equal(x, y) for x, y in zip(_arrays(a), _arrays(b)))


class TestReplayDeterminism:
    @given(delta_logs())
    @settings(max_examples=50, deadline=None)
    def test_double_replay_is_idempotent(self, data):
        n, batches = data
        base = _base_graph(n)
        assert _identical(_replay(base, batches), _replay(base, batches))

    @given(delta_logs(), st.data())
    @settings(max_examples=50, deadline=None)
    def test_prefix_resume_matches_straight_replay(self, data, rnd):
        """Snapshot-at-epoch-k + tail replay == replay of the whole log."""
        n, batches = data
        base = _base_graph(n)
        k = rnd.draw(st.integers(0, len(batches)))
        straight = _replay(base, batches)
        resumed = _replay(_replay(base, batches[:k]), batches[k:])
        assert _identical(straight, resumed)

    @given(delta_logs())
    @settings(max_examples=30, deadline=None)
    def test_symmetry_survives_every_epoch(self, data):
        from repro.graph.properties import is_symmetric

        n, batches = data
        graph = _base_graph(n)
        for batch in batches:
            graph = apply_batch(graph, batch).graph
            assert is_symmetric(graph)
