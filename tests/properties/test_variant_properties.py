"""Property-based tests for the sparse-belief machinery (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.variants.common import SparseBeliefs


@st.composite
def beliefs(draw):
    n = draw(st.integers(0, 50))
    vertex = np.asarray(
        draw(st.lists(st.integers(0, 9), min_size=n, max_size=n)), dtype=np.int64
    )
    label = np.asarray(
        draw(st.lists(st.integers(0, 12), min_size=n, max_size=n)), dtype=np.int64
    )
    weight = np.asarray(
        draw(st.lists(st.floats(0.01, 5.0), min_size=n, max_size=n))
    )
    return SparseBeliefs(vertex, label, weight)


class TestSparseBeliefProperties:
    @given(beliefs())
    @settings(max_examples=80, deadline=None)
    def test_combined_is_idempotent(self, b):
        once = b.combined()
        twice = once.combined()
        assert np.array_equal(once.vertex, twice.vertex)
        assert np.array_equal(once.label, twice.label)
        assert np.allclose(once.weight, twice.weight)

    @given(beliefs())
    @settings(max_examples=80, deadline=None)
    def test_combined_preserves_totals(self, b):
        c = b.combined()
        assert c.weight.sum() == pytest.approx(b.weight.sum(), rel=1e-9)
        # Per-vertex totals preserved too.
        for v in np.unique(b.vertex):
            assert c.weight[c.vertex == v].sum() == pytest.approx(
                b.weight[b.vertex == v].sum(), rel=1e-9
            )

    @given(beliefs())
    @settings(max_examples=80, deadline=None)
    def test_normalized_sums_to_one(self, b):
        n = b.normalized()
        for v in np.unique(n.vertex):
            total = n.weight[n.vertex == v].sum()
            if total > 0:
                assert total == pytest.approx(1.0, rel=1e-9)

    @given(beliefs(), st.integers(1, 5))
    @settings(max_examples=60, deadline=None)
    def test_top_k_bounds_memberships(self, b, k):
        t = b.top_k(k)
        if t.num_pairs:
            counts = np.bincount(t.vertex)
            assert counts.max() <= k

    @given(beliefs(), st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_pruned_never_orphans_a_vertex(self, b, threshold):
        before = set(np.unique(b.combined().vertex).tolist())
        after = set(np.unique(b.pruned(threshold).vertex).tolist())
        assert after == before  # COPRA retention: everyone keeps >= 1 label

    @given(beliefs())
    @settings(max_examples=60, deadline=None)
    def test_argmax_attains_max(self, b):
        c = b.combined()
        out = b.argmax_labels(10)
        for v in np.unique(c.vertex):
            weights = {
                int(l): float(w)
                for l, w in zip(c.label[c.vertex == v], c.weight[c.vertex == v])
            }
            assert weights[int(out[v])] == pytest.approx(max(weights.values()))
