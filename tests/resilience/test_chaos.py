"""Tests for the chaos soak harness: crash injection and differential resume."""

import numpy as np
import pytest

from repro.core.config import LPAConfig, ResilienceConfig
from repro.core.lpa import nu_lpa
from repro.errors import ReproError
from repro.graph.generators import web_graph
from repro.resilience.chaos import (
    CRASH_MODES,
    ChaosSchedule,
    CrashingCheckpointManager,
    CrashPoint,
    InjectedCrash,
    corrupt_checkpoint,
    make_schedule,
    run_chaos_soak,
)
from repro.resilience.checkpoint import CheckpointManager


@pytest.fixture
def graph():
    return web_graph(250, seed=9)


class TestCrashInjection:
    def test_injected_crash_is_not_a_repro_error(self):
        # nothing in the library may catch it, like a real SIGKILL
        assert not issubclass(InjectedCrash, ReproError)

    @pytest.mark.parametrize("mode", CRASH_MODES)
    def test_crash_modes(self, tmp_path, graph, mode):
        crash = CrashPoint(iteration=2, mode=mode)
        with pytest.raises(InjectedCrash):
            nu_lpa(
                graph, LPAConfig(max_iterations=10),
                warn_on_no_convergence=False,
                resilience=ResilienceConfig(
                    checkpoint_dir=tmp_path,
                    checkpoint_factory=CrashingCheckpointManager.factory(crash),
                ),
            )
        durable = sorted(p.name for p in tmp_path.glob("ckpt-*.npz"))
        torn = list(tmp_path.glob(".tmp-*"))
        if mode == "after-write":
            assert "ckpt-000002.npz" in durable
        else:
            assert "ckpt-000002.npz" not in durable
        if mode == "mid-write":
            assert torn  # the torn partial temp file is left behind
        # whatever survived must be loadable and resumable
        resumed = nu_lpa(
            graph, warn_on_no_convergence=False,
            resilience=ResilienceConfig(checkpoint_dir=tmp_path, resume=True),
        )
        baseline = nu_lpa(graph, warn_on_no_convergence=False)
        assert np.array_equal(resumed.labels, baseline.labels)

    def test_no_crash_without_matching_iteration(self, tmp_path, graph):
        crash = CrashPoint(iteration=999)
        result = nu_lpa(
            graph, warn_on_no_convergence=False,
            resilience=ResilienceConfig(
                checkpoint_dir=tmp_path,
                checkpoint_factory=CrashingCheckpointManager.factory(crash),
            ),
        )
        assert result.converged

    def test_corrupt_checkpoint_breaks_load(self, tmp_path, graph):
        nu_lpa(
            graph, LPAConfig(max_iterations=2), warn_on_no_convergence=False,
            resilience=ResilienceConfig(checkpoint_dir=tmp_path),
        )
        newest = sorted(tmp_path.glob("ckpt-*.npz"))[-1]
        how = corrupt_checkpoint(newest, np.random.default_rng(0))
        assert how in ("truncated", "bit-flipped")
        from repro.errors import CheckpointError

        with pytest.raises(CheckpointError):
            CheckpointManager.load(newest)


class TestSchedules:
    def test_deterministic_derivation(self):
        assert make_schedule(7) == make_schedule(7)
        assert make_schedule(7) != make_schedule(8)

    def test_schedule_fields_in_range(self):
        for seed in range(30):
            s = make_schedule(seed, max_crash_iteration=4)
            assert 1 <= s.crash.iteration <= 4
            assert s.crash.mode in CRASH_MODES
            assert 0.2 <= s.fault_rate <= 1.0
            assert s.fault_kinds
            s.fault_spec()  # must be a valid FaultSpec

    def test_as_dict_json_ready(self):
        import json

        json.dumps(make_schedule(3).as_dict())


class TestSoak:
    def test_soak_resumes_bit_identical(self, tmp_path, graph):
        report = run_chaos_soak(
            graph, tmp_path, schedules=4, seed=0,
            config=LPAConfig(max_iterations=12),
        )
        assert len(report.records) == 4
        assert report.ok, report.summary()
        assert any(r.crash_fired for r in report.records)

    def test_report_serializes(self, tmp_path, graph):
        import json

        report = run_chaos_soak(
            graph, tmp_path, schedules=2, seed=5,
            config=LPAConfig(max_iterations=10),
        )
        doc = json.loads(json.dumps(report.as_dict()))
        assert doc["ok"] is True
        assert len(doc["records"]) == 2
