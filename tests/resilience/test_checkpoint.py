"""Tests for checkpoint/resume: format, digests, and bit-identical resume."""

import numpy as np
import pytest

from repro.core.config import LPAConfig, ResilienceConfig
from repro.core.lpa import nu_lpa
from repro.core.result import IterationStats
from repro.errors import CheckpointError
from repro.graph.generators import web_graph
from repro.resilience.checkpoint import (
    CheckpointManager,
    CheckpointState,
    fsck,
    run_digest,
)
from repro.resilience.faults import FaultSpec


@pytest.fixture
def graph():
    return web_graph(900, avg_degree=6, seed=23)


def ckpt_config(tmp_path, *, resume=False, every=1, faults=None):
    return ResilienceConfig(
        checkpoint_dir=tmp_path / "ckpt",
        checkpoint_every=every,
        resume=resume,
        faults=faults,
    )


class TestFormat:
    def test_save_load_roundtrip(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        state = CheckpointState(
            labels=np.array([3, 1, 4, 1, 5], dtype=np.int64),
            flags=np.array([1, 0, 1, 0, 1], dtype=np.uint8),
            iteration=7,
            digest="abc123",
            converged=True,
            stats=[
                IterationStats(
                    iteration=0, changed=5, processed=5,
                    pick_less=False, cross_check=False, reverted=1,
                )
            ],
            injector_fires=3,
            last_pl_fraction=0.25,
        )
        path = mgr.save(state)
        assert path.name == "ckpt-000007.npz"
        loaded = CheckpointManager.load(path)
        assert np.array_equal(loaded.labels, state.labels)
        assert np.array_equal(loaded.flags, state.flags)
        assert loaded.iteration == 7
        assert loaded.digest == "abc123"
        assert loaded.converged is True
        assert loaded.injector_fires == 3
        assert loaded.last_pl_fraction == 0.25
        assert len(loaded.stats) == 1
        assert loaded.stats[0].changed == 5
        assert loaded.stats[0].reverted == 1

    def test_no_tmp_files_left_behind(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        mgr.save(CheckpointState(
            labels=np.zeros(3, dtype=np.int64),
            flags=np.zeros(3, dtype=np.uint8),
            iteration=1, digest="d",
        ))
        assert [p.name for p in tmp_path.iterdir()] == ["ckpt-000001.npz"]

    def test_latest_picks_newest(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        for it in (1, 2, 10):
            mgr.save(CheckpointState(
                labels=np.full(2, it, dtype=np.int64),
                flags=np.zeros(2, dtype=np.uint8),
                iteration=it, digest="d",
            ))
        latest = mgr.latest()
        assert latest.iteration == 10

    def test_empty_dir_has_no_latest(self, tmp_path):
        assert CheckpointManager(tmp_path).latest() is None

    def test_corrupt_file_raises(self, tmp_path):
        bad = tmp_path / "ckpt-000001.npz"
        bad.write_bytes(b"not an npz file")
        with pytest.raises(CheckpointError, match="unreadable"):
            CheckpointManager.load(bad)

    def test_bad_interval_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointManager(tmp_path, every=0)

    def test_due_respects_interval(self, tmp_path):
        mgr = CheckpointManager(tmp_path, every=3)
        assert [i for i in range(1, 10) if mgr.due(i)] == [3, 6, 9]


def make_state(iteration, n=4, fill=0):
    return CheckpointState(
        labels=np.full(n, fill, dtype=np.int64),
        flags=np.zeros(n, dtype=np.uint8),
        iteration=iteration,
        digest="d",
    )


class TestDurability:
    def test_crc_mismatch_detected(self, tmp_path):
        path = CheckpointManager(tmp_path).save(make_state(1, fill=7))
        blob = bytearray(path.read_bytes())
        # flip bytes in the middle of the container — lands in array data,
        # not the zip directory, so np.load still succeeds
        mid = len(blob) // 2
        for i in range(mid, mid + 16):
            blob[i] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="CRC32|unreadable"):
            CheckpointManager.load(path)

    def test_truncated_file_is_checkpoint_error(self, tmp_path):
        path = CheckpointManager(tmp_path).save(make_state(1))
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(CheckpointError):
            CheckpointManager.load(path)

    def test_latest_falls_back_past_corrupt_newest(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        for it in (1, 2, 3):
            mgr.save(make_state(it, fill=it))
        newest = tmp_path / "ckpt-000003.npz"
        newest.write_bytes(b"torn")
        latest = mgr.latest()
        assert latest.iteration == 2
        assert latest.labels[0] == 2
        assert [p.name for p, _ in mgr.skipped] == ["ckpt-000003.npz"]

    def test_latest_none_when_every_generation_corrupt(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        for it in (1, 2):
            mgr.save(make_state(it)).write_bytes(b"x")
        assert mgr.latest() is None
        assert len(mgr.skipped) == 2

    def test_keep_ring_bounds_directory(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep=2)
        for it in range(1, 7):
            mgr.save(make_state(it))
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["ckpt-000005.npz", "ckpt-000006.npz"]

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointManager(tmp_path, keep=0)

    def test_run_respects_keep(self, tmp_path, graph):
        nu_lpa(
            graph, LPAConfig(max_iterations=5), engine="vectorized",
            resilience=ResilienceConfig(
                checkpoint_dir=tmp_path / "ckpt", checkpoint_keep=2,
            ),
            warn_on_no_convergence=False,
        )
        assert len(list((tmp_path / "ckpt").glob("ckpt-*.npz"))) <= 2

    def test_resume_survives_corrupt_newest(self, tmp_path, graph):
        """Acceptance scenario: corrupting the newest checkpoint makes the
        next resume recover from the previous generation, not raise."""
        baseline = nu_lpa(graph, engine="hashtable", warn_on_no_convergence=False)
        nu_lpa(
            graph, LPAConfig(max_iterations=3), engine="hashtable",
            resilience=ckpt_config(tmp_path), warn_on_no_convergence=False,
        )
        newest = sorted((tmp_path / "ckpt").glob("ckpt-*.npz"))[-1]
        newest.write_bytes(newest.read_bytes()[:64])
        resumed = nu_lpa(
            graph, engine="hashtable",
            resilience=ckpt_config(tmp_path, resume=True),
            warn_on_no_convergence=False,
        )
        assert resumed.resumed_from == 2
        assert np.array_equal(resumed.labels, baseline.labels)


class TestFsck:
    def test_reports_ok_corrupt_and_stale(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        mgr.save(make_state(1))
        mgr.save(make_state(2)).write_bytes(b"rot")
        (tmp_path / ".tmp-12345.npz").write_bytes(b"partial")
        entries = fsck(tmp_path)
        statuses = {e.path.name: e.status for e in entries}
        assert statuses == {
            ".tmp-12345.npz": "stale-tmp",
            "ckpt-000001.npz": "ok",
            "ckpt-000002.npz": "corrupt",
        }
        ok = [e for e in entries if e.status == "ok"][0]
        assert ok.iteration == 1
        assert ok.digest == "d"

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            fsck(tmp_path / "nope")

    def test_cli_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        mgr = CheckpointManager(tmp_path)
        mgr.save(make_state(1))
        assert main(["ckpt", "fsck", str(tmp_path)]) == 0
        mgr.save(make_state(2)).write_bytes(b"rot")
        assert main(["ckpt", "fsck", str(tmp_path)]) == 1
        assert main(["ckpt", "fsck", str(tmp_path), "--delete"]) == 0
        assert main(["ckpt", "fsck", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "corrupt" in out and "deleted" in out


class TestRunDigest:
    def test_stable(self, graph):
        cfg = LPAConfig()
        assert run_digest(graph, cfg, "hashtable") == run_digest(graph, cfg, "hashtable")

    def test_engine_changes_digest(self, graph):
        cfg = LPAConfig()
        assert run_digest(graph, cfg, "hashtable") != run_digest(graph, cfg, "vectorized")

    def test_config_changes_digest(self, graph):
        assert run_digest(graph, LPAConfig(), "v") != run_digest(
            graph, LPAConfig(tolerance=0.01), "v"
        )

    def test_max_iterations_excluded(self, graph):
        # a killed run may legitimately be resumed with a higher cap
        assert run_digest(graph, LPAConfig(max_iterations=3), "v") == run_digest(
            graph, LPAConfig(max_iterations=50), "v"
        )


class TestResume:
    def test_interrupted_run_resumes_bit_identical(self, tmp_path, graph):
        baseline = nu_lpa(graph, engine="hashtable", warn_on_no_convergence=False)

        # "kill" the run after 3 iterations by capping it
        nu_lpa(
            graph, LPAConfig(max_iterations=3), engine="hashtable",
            resilience=ckpt_config(tmp_path), warn_on_no_convergence=False,
        )
        resumed = nu_lpa(
            graph, engine="hashtable",
            resilience=ckpt_config(tmp_path, resume=True),
            warn_on_no_convergence=False,
        )
        assert resumed.resumed_from == 3
        assert np.array_equal(resumed.labels, baseline.labels)
        assert resumed.converged == baseline.converged
        assert resumed.num_iterations == baseline.num_iterations
        assert [s.changed for s in resumed.iterations] == [
            s.changed for s in baseline.iterations
        ]

    def test_faulted_interrupted_resume_equals_clean_run(self, tmp_path, graph):
        """Acceptance scenario: overflow-faulted, checkpointed, killed,
        resumed — final membership bit-identical to an uninterrupted
        un-faulted run."""
        clean = nu_lpa(graph, engine="vectorized", warn_on_no_convergence=False)
        faults = FaultSpec(kinds=("overflow",), rate=1.0, seed=5)
        nu_lpa(
            graph, LPAConfig(max_iterations=2), engine="hashtable",
            resilience=ckpt_config(tmp_path, faults=faults),
            warn_on_no_convergence=False,
        )
        resumed = nu_lpa(
            graph, engine="hashtable",
            resilience=ckpt_config(tmp_path, resume=True, faults=faults),
            warn_on_no_convergence=False,
        )
        assert resumed.resumed_from == 2
        assert resumed.degraded
        assert np.array_equal(resumed.labels, clean.labels)

    def test_resume_from_converged_checkpoint_skips_loop(self, tmp_path, graph):
        first = nu_lpa(
            graph, engine="vectorized", resilience=ckpt_config(tmp_path),
        )
        resumed = nu_lpa(
            graph, engine="vectorized",
            resilience=ckpt_config(tmp_path, resume=True),
        )
        assert resumed.converged
        assert resumed.num_iterations == first.num_iterations
        assert np.array_equal(resumed.labels, first.labels)

    def test_resume_empty_dir_starts_fresh(self, tmp_path, graph):
        r = nu_lpa(
            graph, engine="vectorized",
            resilience=ckpt_config(tmp_path, resume=True),
        )
        assert r.resumed_from is None
        assert r.converged

    def test_digest_mismatch_refuses(self, tmp_path, graph):
        nu_lpa(
            graph, LPAConfig(max_iterations=2), engine="hashtable",
            resilience=ckpt_config(tmp_path), warn_on_no_convergence=False,
        )
        with pytest.raises(CheckpointError, match="different run"):
            nu_lpa(
                graph, engine="vectorized",  # different engine than checkpoint
                resilience=ckpt_config(tmp_path, resume=True),
            )

    def test_checkpoint_every_writes_fewer_files(self, tmp_path, graph):
        nu_lpa(
            graph, LPAConfig(max_iterations=4), engine="vectorized",
            resilience=ckpt_config(tmp_path, every=2),
            warn_on_no_convergence=False,
        )
        names = sorted(p.name for p in (tmp_path / "ckpt").iterdir())
        # boundaries 2 and 4 are due; convergence may add a final one
        assert "ckpt-000002.npz" in names
        assert "ckpt-000001.npz" not in names
