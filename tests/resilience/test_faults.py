"""Tests for the deterministic fault injector."""

import numpy as np
import pytest

from repro.core.config import LPAConfig
from repro.errors import (
    ConfigurationError,
    HashtableFullError,
    KernelTimeoutError,
    TransientKernelError,
)
from repro.gpu.kernel import KernelKind
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultContext,
    FaultInjector,
    FaultSpec,
)
from repro.types import EMPTY_KEY


def make_ctx(phase="accumulate", **kw):
    device = LPAConfig().device
    defaults = dict(
        phase=phase,
        engine="hashtable",
        kernel=KernelKind.THREAD_PER_VERTEX,
        device=device,
        wave=np.arange(4, dtype=np.int64),
        labels=np.arange(10, dtype=np.int64),
    )
    defaults.update(kw)
    return FaultContext(**defaults)


class TestFaultSpec:
    def test_defaults_valid(self):
        spec = FaultSpec()
        assert spec.kinds == ("overflow",)
        assert spec.rate == 1.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kinds=("meteor-strike",))

    def test_empty_kinds_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kinds=())

    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(rate=-0.1)

    def test_bad_probe_depth_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(probe_depth=0)

    def test_bad_bitflip_target_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(targets=("registers",))


class TestArming:
    def test_deterministic_across_instances(self):
        spec = FaultSpec(kinds=FAULT_KINDS, seed=7)
        a = FaultInjector(spec)
        b = FaultInjector(spec)
        kinds_a = [a.arm(i, 0) for i in range(20)]
        kinds_b = [b.arm(i, 0) for i in range(20)]
        assert kinds_a == kinds_b

    def test_attempt_rerolls(self):
        spec = FaultSpec(kinds=FAULT_KINDS, rate=0.5, seed=3)
        inj = FaultInjector(spec)
        rolls = {inj.arm(0, attempt) for attempt in range(32)}
        assert None in rolls  # some attempts pass clean at rate 0.5
        assert rolls - {None}  # and some fire

    def test_rate_zero_never_arms(self):
        inj = FaultInjector(FaultSpec(rate=0.0))
        assert all(inj.arm(i, 0) is None for i in range(50))

    def test_max_fires_budget(self):
        inj = FaultInjector(FaultSpec(kinds=("timeout",), max_fires=2))
        fired = 0
        for i in range(10):
            if inj.arm(i, 0) is None:
                continue
            with pytest.raises(KernelTimeoutError):
                inj(make_ctx())
            fired += 1
        assert fired == 2
        assert inj.arm(99, 0) is None

    def test_disarm_suppresses(self):
        inj = FaultInjector(FaultSpec(kinds=("overflow",)))
        assert inj.arm(0, 0) == "overflow"
        inj.disarm()
        inj(make_ctx())  # no raise
        assert inj.fires == 0


class TestRaisingFaults:
    @pytest.mark.parametrize(
        "kind,exc",
        [
            ("overflow", HashtableFullError),
            ("timeout", KernelTimeoutError),
            ("cas-storm", TransientKernelError),
        ],
    )
    def test_kind_raises(self, kind, exc):
        inj = FaultInjector(FaultSpec(kinds=(kind,)))
        inj.arm(0, 0)
        with pytest.raises(exc):
            inj(make_ctx())
        assert inj.fires == 1

    def test_overflow_message_names_probe_depth(self):
        inj = FaultInjector(FaultSpec(kinds=("overflow",), probe_depth=5))
        inj.arm(0, 0)
        with pytest.raises(HashtableFullError, match="probe depth 5"):
            inj(make_ctx())

    def test_fires_only_once_per_arm(self):
        inj = FaultInjector(FaultSpec(kinds=("timeout",)))
        inj.arm(0, 0)
        with pytest.raises(KernelTimeoutError):
            inj(make_ctx())
        inj(make_ctx())  # already fired; second call is a no-op
        assert inj.fires == 1


class TestBitflip:
    def test_waits_for_reduce_phase(self):
        inj = FaultInjector(FaultSpec(kinds=("bitflip",)))
        keys = np.arange(8, dtype=np.int64)
        inj.arm(0, 0)
        inj(make_ctx(phase="accumulate", keys=keys))
        assert inj.fires == 0
        assert np.array_equal(keys, np.arange(8))

    def test_flips_high_bit_of_keys(self):
        inj = FaultInjector(FaultSpec(kinds=("bitflip",), key_bit=41))
        keys = np.arange(64, dtype=np.int64)
        inj.arm(0, 0)
        inj(make_ctx(phase="reduce", keys=keys))
        assert inj.fires == 1
        flipped = np.flatnonzero(keys >= (1 << 41))
        assert flipped.shape[0] >= 1

    def test_respects_live_regions(self):
        # two tables: slots [0,4) live for table 0, [8,10) for table 1;
        # everything else must stay untouched.
        keys = np.full(16, EMPTY_KEY, dtype=np.int64)
        keys[0:4] = [1, 2, EMPTY_KEY, 3]
        keys[8:10] = [4, 5]
        before = keys.copy()
        inj = FaultInjector(FaultSpec(kinds=("bitflip",)))
        inj.arm(0, 0)
        inj(
            make_ctx(
                phase="reduce",
                keys=keys,
                base=np.array([0, 8], dtype=np.int64),
                p1=np.array([4, 2], dtype=np.int64),
            )
        )
        changed = np.flatnonzero(keys != before)
        assert changed.shape[0] >= 1
        live = {0, 1, 3, 8, 9}  # occupied slots only
        assert set(changed.tolist()) <= live

    def test_value_target_flips_exponent(self):
        inj = FaultInjector(
            FaultSpec(kinds=("bitflip",), targets=("values",))
        )
        keys = np.arange(8, dtype=np.int64)
        values = np.ones(8, dtype=np.float32)
        inj.arm(0, 0)
        inj(make_ctx(phase="reduce", keys=keys, values=values))
        assert (values != 1.0).sum() == 1

    def test_deterministic_corruption(self):
        def run():
            inj = FaultInjector(FaultSpec(kinds=("bitflip",), seed=11))
            keys = np.arange(128, dtype=np.int64)
            inj.arm(4, 1)
            inj(make_ctx(phase="reduce", keys=keys))
            return keys

        assert np.array_equal(run(), run())
