"""Tests for post-kernel invariant checks."""

import numpy as np
import pytest

from repro.errors import InvariantViolation
from repro.resilience.invariants import (
    check_finite_values,
    check_label_range,
    check_pl_monotone,
)


class TestLabelRange:
    def test_valid_passes(self):
        check_label_range(np.array([0, 1, 2, 2]), 3)

    def test_empty_passes(self):
        check_label_range(np.empty(0, dtype=np.int64), 0)

    def test_negative_raises(self):
        with pytest.raises(InvariantViolation, match="label-range"):
            check_label_range(np.array([0, -1, 2]), 3)

    def test_too_large_raises(self):
        with pytest.raises(InvariantViolation, match="label-range"):
            check_label_range(np.array([0, 1, 3]), 3)

    def test_message_counts_bad_labels(self):
        with pytest.raises(InvariantViolation, match="2 label"):
            check_label_range(np.array([5, 1, 7]), 3)


class TestFiniteValues:
    def test_finite_passes(self):
        check_finite_values(np.array([0.0, 1.5, 1e30], dtype=np.float32))

    def test_empty_passes(self):
        check_finite_values(np.empty(0, dtype=np.float32))

    def test_nan_raises(self):
        with pytest.raises(InvariantViolation, match="finite-values"):
            check_finite_values(np.array([1.0, np.nan], dtype=np.float32))

    def test_inf_raises(self):
        with pytest.raises(InvariantViolation, match="finite-values"):
            check_finite_values(np.array([np.inf, 1.0], dtype=np.float32))


class TestPlMonotone:
    def test_no_previous_round_passes(self):
        assert check_pl_monotone(None, 0.9) is None

    def test_non_increasing_passes(self):
        assert check_pl_monotone(0.5, 0.5) is None
        assert check_pl_monotone(0.5, 0.1) is None

    def test_increase_reports(self):
        msg = check_pl_monotone(0.1, 0.4)
        assert msg is not None and "pl-monotone" in msg

    def test_slack_tolerates_small_rise(self):
        assert check_pl_monotone(0.10, 0.12, slack=0.05) is None
        assert check_pl_monotone(0.10, 0.20, slack=0.05) is not None


class TestEdgeCases:
    """Degenerate shapes a real run can produce: empty graphs, single
    vertices, all-isolated graphs, and labels at the range boundary."""

    def test_single_vertex_passes(self):
        check_label_range(np.array([0], dtype=np.int64), 1)

    def test_single_vertex_out_of_range_raises(self):
        with pytest.raises(InvariantViolation, match="label-range"):
            check_label_range(np.array([1], dtype=np.int64), 1)

    def test_labels_at_exact_upper_boundary_pass(self):
        n = 7
        check_label_range(np.full(n, n - 1, dtype=np.int64), n)

    def test_labels_one_past_boundary_raise(self):
        n = 7
        with pytest.raises(InvariantViolation, match="label-range"):
            check_label_range(np.full(n, n, dtype=np.int64), n)

    def test_all_isolated_graph_run_holds_invariants(self):
        # A graph with no edges: every vertex keeps its own label, and the
        # supervised invariants must accept that fixed point.
        from repro.core.config import LPAConfig, ResilienceConfig
        from repro.core.lpa import nu_lpa
        from repro.graph.build import from_edges

        n = 9
        graph = from_edges(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            num_vertices=n,
        )
        result = nu_lpa(
            graph, LPAConfig(max_iterations=3),
            warn_on_no_convergence=False,
            resilience=ResilienceConfig(),
        )
        assert np.array_equal(result.labels, np.arange(n))
        check_label_range(result.labels, n)

    def test_empty_finite_values_single_slot(self):
        check_finite_values(np.zeros(1, dtype=np.float32))
