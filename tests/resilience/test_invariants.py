"""Tests for post-kernel invariant checks."""

import numpy as np
import pytest

from repro.errors import InvariantViolation
from repro.resilience.invariants import (
    check_finite_values,
    check_label_range,
    check_pl_monotone,
)


class TestLabelRange:
    def test_valid_passes(self):
        check_label_range(np.array([0, 1, 2, 2]), 3)

    def test_empty_passes(self):
        check_label_range(np.empty(0, dtype=np.int64), 0)

    def test_negative_raises(self):
        with pytest.raises(InvariantViolation, match="label-range"):
            check_label_range(np.array([0, -1, 2]), 3)

    def test_too_large_raises(self):
        with pytest.raises(InvariantViolation, match="label-range"):
            check_label_range(np.array([0, 1, 3]), 3)

    def test_message_counts_bad_labels(self):
        with pytest.raises(InvariantViolation, match="2 label"):
            check_label_range(np.array([5, 1, 7]), 3)


class TestFiniteValues:
    def test_finite_passes(self):
        check_finite_values(np.array([0.0, 1.5, 1e30], dtype=np.float32))

    def test_empty_passes(self):
        check_finite_values(np.empty(0, dtype=np.float32))

    def test_nan_raises(self):
        with pytest.raises(InvariantViolation, match="finite-values"):
            check_finite_values(np.array([1.0, np.nan], dtype=np.float32))

    def test_inf_raises(self):
        with pytest.raises(InvariantViolation, match="finite-values"):
            check_finite_values(np.array([np.inf, 1.0], dtype=np.float32))


class TestPlMonotone:
    def test_no_previous_round_passes(self):
        assert check_pl_monotone(None, 0.9) is None

    def test_non_increasing_passes(self):
        assert check_pl_monotone(0.5, 0.5) is None
        assert check_pl_monotone(0.5, 0.1) is None

    def test_increase_reports(self):
        msg = check_pl_monotone(0.1, 0.4)
        assert msg is not None and "pl-monotone" in msg

    def test_slack_tolerates_small_rise(self):
        assert check_pl_monotone(0.10, 0.12, slack=0.05) is None
        assert check_pl_monotone(0.10, 0.20, slack=0.05) is not None
