"""Ledger balance across the memory rungs: shrink, regrow, fallback.

Regression tests for the governor's two accounting invariants: a regrow
(or shrink) moves the hashtable charge release-before-reserve, so the
ledger never holds ``old + new`` at once; and the fallback rung releases
every region the supervised engine owned, so an absorbed OOM storm ends
with a balanced ledger (``in_use == 0``, ``underflows == 0``).
"""

import numpy as np
import pytest

from repro.core.config import LPAConfig, ResilienceConfig
from repro.core.engine_hashtable import HashtableEngine
from repro.core.lpa import nu_lpa
from repro.errors import DeviceOomError
from repro.gpu.governor import MemoryGovernor, footprint_for
from repro.graph.datasets import generate_standin
from repro.perf.workspace import WorkspaceArena
from repro.resilience.faults import FaultSpec


@pytest.fixture(scope="module")
def graph():
    return generate_standin("asia_osm", scale=0.05, seed=11)


def _engine_with_governor(graph, budget_bytes):
    """Wire an engine to a governor the way the driver does."""
    eng = HashtableEngine(graph, LPAConfig())
    gov = MemoryGovernor(budget_bytes=budget_bytes)
    gov.reserve("hashtable", eng.tables.memory_bytes())
    eng.governor = gov
    if eng.arena is not None:
        eng.arena.governor = gov
    return eng, gov


class TestRegrowLedgerBalance:
    def test_regrow_reports_freed_and_claimed(self, graph):
        eng, gov = _engine_with_governor(graph, budget_bytes=1 << 30)
        baseline = eng.tables.memory_bytes()
        eng.grow_tables()
        receipt = eng.last_regrow
        assert receipt["scale"] == 2
        assert receipt["freed_bytes"] == baseline
        assert receipt["claimed_bytes"] == eng.tables.memory_bytes()
        assert receipt["claimed_bytes"] > receipt["freed_bytes"]
        # The ledger carries exactly the new region ...
        assert gov.region_bytes("hashtable") == receipt["claimed_bytes"]
        # ... and never held old + new at once (release-before-reserve).
        assert gov.region_high_water("hashtable") == receipt["claimed_bytes"]
        assert gov.underflows == 0

    def test_shrink_reverses_the_charge(self, graph):
        eng, gov = _engine_with_governor(graph, budget_bytes=1 << 30)
        eng.grow_tables()
        grown = eng.last_regrow["claimed_bytes"]
        eng.shrink_tables()
        receipt = eng.last_regrow
        assert receipt["scale"] == 1
        assert receipt["freed_bytes"] == grown
        assert gov.region_bytes("hashtable") == receipt["claimed_bytes"]
        # Scale 1 is the floor: shrinking again is a no-op.
        assert eng.shrink_tables() == 1
        assert gov.underflows == 0

    def test_failed_regrow_restores_the_old_layout(self, graph):
        eng = HashtableEngine(graph, LPAConfig())
        baseline = eng.tables.memory_bytes()
        # Budget fits the baseline tables plus a sliver — not the doubled
        # layout the regrow wants.
        gov = MemoryGovernor(budget_bytes=int(baseline * 1.5))
        gov.reserve("hashtable", baseline)
        eng.governor = gov
        with pytest.raises(DeviceOomError):
            eng.grow_tables()
        # The old layout is back and re-charged; the engine stays usable.
        assert eng.tables.capacity_scale == 1
        assert eng.tables.memory_bytes() == baseline
        assert gov.region_bytes("hashtable") == baseline
        assert gov.ooms == 1
        assert gov.underflows == 0

    def test_release_memory_is_idempotent(self, graph):
        eng, gov = _engine_with_governor(graph, budget_bytes=1 << 30)
        released = eng.release_memory()
        assert released > 0
        assert gov.region_bytes("hashtable") == 0
        assert eng.release_memory() == 0
        assert gov.underflows == 0


class TestArenaAccounting:
    """Grow-only slots charge the ledger once, at high-water."""

    def test_repeat_takes_charge_once(self):
        gov = MemoryGovernor(budget_bytes=1 << 20)
        arena = WorkspaceArena(governor=gov)
        arena.take("slot", 100, np.int64)
        first = gov.region_bytes("arena")
        assert first >= 800
        reserves = gov.reserves
        # Same-or-smaller takes are steady-state: no new reservation.
        arena.take("slot", 100, np.int64)
        arena.take("slot", 40, np.int64)
        assert gov.reserves == reserves
        assert gov.region_bytes("arena") == first

    def test_growth_charges_only_the_delta(self):
        gov = MemoryGovernor(budget_bytes=1 << 20)
        arena = WorkspaceArena(governor=gov)
        arena.take("slot", 100, np.int64)
        small = gov.region_bytes("arena")
        arena.take("slot", 1000, np.int64)
        grown = gov.region_bytes("arena")
        assert grown == arena.charged_bytes
        # High-water equals the standing charge: the ledger never held
        # the retired backing array and its replacement together beyond
        # the grow-only high-water mark.
        assert gov.region_high_water("arena") == grown
        assert small < grown

    def test_release_charges_balances(self):
        gov = MemoryGovernor(budget_bytes=1 << 20)
        arena = WorkspaceArena(governor=gov)
        arena.take("a", 64, np.int64)
        arena.take("b", 64, np.float32)
        charged = arena.charged_bytes
        assert arena.release_charges() == charged
        assert gov.region_bytes("arena") == 0
        assert arena.charged_bytes == 0
        assert gov.underflows == 0

    @pytest.mark.parametrize("engine", ["hashtable", "vectorized"])
    @pytest.mark.parametrize("compact", [True, False])
    def test_run_charges_arena_once_at_high_water(self, graph, engine,
                                                  compact):
        from repro.observe.trace import MemoryEvent, Tracer

        config = LPAConfig(max_iterations=10, compact_layout=compact)
        est = footprint_for(graph, config, engine=engine)
        tracer = Tracer()
        result = nu_lpa(
            graph, config.with_(memory_budget_bytes=4 * est["total"]),
            engine=engine, warn_on_no_convergence=False, tracer=tracer,
        )
        stats = result.memory
        arena_hw = stats["region_high_water"]["arena"]
        assert arena_hw > 0
        assert stats["regions"]["arena"] == 0
        events = [ev for ev in tracer.events
                  if isinstance(ev, MemoryEvent) and ev.region == "arena"]
        reserved = sum(ev.nbytes for ev in events if ev.action == "reserve")
        released = sum(ev.nbytes for ev in events if ev.action == "release")
        # Grow-only: the reserve deltas sum to exactly the high-water
        # mark (each slot charged once per growth, never per take), and
        # one balancing release returns all of it at run end.
        assert reserved == arena_hw
        assert released == arena_hw
        assert stats["underflows"] == 0


class TestLadderEndToEnd:
    """retry → shrink → regrow → fallback, with the ledger balanced."""

    def test_oom_storm_absorbed_with_balanced_ledger(self, graph):
        config = LPAConfig(max_iterations=12)
        est = footprint_for(graph, config, engine="hashtable")
        reference = nu_lpa(graph, config, engine="hashtable",
                           warn_on_no_convergence=False)
        result = nu_lpa(
            graph,
            config.with_(memory_budget_bytes=int(est["total"] * 1.5)),
            engine="hashtable",
            warn_on_no_convergence=False,
            resilience=ResilienceConfig(
                faults=FaultSpec(kinds=("oom",), rate=1.0, seed=5,
                                 max_fires=2),
                max_retries=4,
            ),
        )
        stats = result.memory
        assert stats["ooms"] >= 2          # injected fires surfaced
        assert stats["shrinks"] >= 1       # the budget was attacked
        assert stats["in_use_bytes"] == 0  # every region released
        assert stats["underflows"] == 0    # no over-release anywhere
        # Labels stayed structurally valid whatever rung served them.
        labels = np.asarray(result.labels)
        assert labels.shape == (graph.num_vertices,)
        assert labels.min() >= 0 and labels.max() < graph.num_vertices
        assert reference.labels.shape == labels.shape

    def test_fallback_releases_supervised_regions(self, graph):
        # A budget below the hashtable footprint forces the ladder all
        # the way down: shrink cannot free enough (scale floor 1), so
        # the fallback rung must release the engine's regions and absorb
        # the move unmetered.
        config = LPAConfig(max_iterations=8)
        est = footprint_for(graph, config, engine="hashtable")
        result = nu_lpa(
            graph,
            config.with_(memory_budget_bytes=int(est["total"] * 2)),
            engine="hashtable",
            warn_on_no_convergence=False,
            resilience=ResilienceConfig(
                faults=FaultSpec(kinds=("oom",), rate=1.0, seed=9),
                max_retries=1,
            ),
        )
        stats = result.memory
        rungs = [ev.action for ev in result.fault_events]
        assert "fallback" in rungs
        assert result.degraded
        assert stats["in_use_bytes"] == 0
        assert stats["underflows"] == 0
        # The fallback path is a clean vectorized run: bit-identical to
        # an unconstrained vectorized reference.
        clean = nu_lpa(graph, config, engine="vectorized",
                       warn_on_no_convergence=False)
        assert np.array_equal(result.labels, clean.labels)
