"""Smoke test for the memory-pressure soak harness (full run in CI)."""

import numpy as np

from repro.core.config import LPAConfig
from repro.graph.datasets import generate_standin
from repro.observe.schema import validate_memory_soak
from repro.resilience import run_memory_soak


class TestMemorySoak:
    def test_two_schedules_pass_and_validate(self):
        graph = generate_standin("asia_osm", scale=0.05, seed=42)
        report = run_memory_soak(
            graph, seeds=2, seed=7, engine="hashtable",
            config=LPAConfig(max_iterations=10),
        )
        assert report.ok, report.summary()
        assert report.silent == 0
        assert len(report.records) == 2
        doc = validate_memory_soak(report.as_dict())
        for record in doc["records"]:
            # Pressure actually happened on every schedule.
            assert record["live"]["ooms"] + record["shrink"]["ooms"] >= 1
            assert record["admission"]["rejected"]
            assert record["reconcile"]["within_tolerance"]
            assert record["reconcile"]["identical"]
            assert 0.0 < record["reconcile"]["utilization"] <= 1.0 + 0.35

    def test_schedules_are_deterministic(self):
        graph = generate_standin("asia_osm", scale=0.05, seed=42)
        kwargs = dict(seeds=1, seed=3, engine="hashtable",
                      config=LPAConfig(max_iterations=10))
        a = run_memory_soak(graph, **kwargs).as_dict()
        b = run_memory_soak(graph, **kwargs).as_dict()
        assert a == b

    def test_vectorized_engine_supported(self):
        graph = generate_standin("asia_osm", scale=0.05, seed=42)
        report = run_memory_soak(
            graph, seeds=1, seed=5, engine="vectorized",
            config=LPAConfig(max_iterations=10),
        )
        assert report.silent == 0
        record = report.records[0]
        assert record.admission_rejected
        assert record.reconcile_identical
        validate_memory_soak(report.as_dict())

    def test_labels_survive_every_leg(self):
        graph = generate_standin("asia_osm", scale=0.05, seed=42)
        report = run_memory_soak(
            graph, seeds=2, seed=11, engine="hashtable",
            config=LPAConfig(max_iterations=10),
        )
        for record in report.records:
            if record.live_absorbed:
                assert record.live_valid
            if record.shrink_absorbed:
                assert record.shrink_valid
        assert isinstance(report.as_dict()["records"][0]["memory"], dict)
        assert np.isfinite(report.records[0].reconcile_deviation)
