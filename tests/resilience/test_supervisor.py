"""Tests for the kernel supervisor and its degradation ladder."""

import numpy as np
import pytest

from repro.core.config import LPAConfig, ResilienceConfig
from repro.core.lpa import make_engine, nu_lpa
from repro.errors import ConfigurationError, ResilienceExhaustedError
from repro.graph.generators import rmat_graph, road_network, web_graph
from repro.resilience.faults import FAULT_KINDS, FaultSpec

ENGINES = ["hashtable", "vectorized"]

#: Three structurally different generator families (satellite: the forced
#: overflow property must hold across graph shapes, not one lucky topology).
GRAPH_CASES = [
    pytest.param(lambda: web_graph(1200, avg_degree=6, seed=11), id="web"),
    pytest.param(lambda: rmat_graph(10, 8, seed=13), id="rmat"),
    pytest.param(lambda: road_network(18, 18, seed=17), id="road"),
]


def persistent(kind, seed=1, **kw):
    """A fault that fires on every attempt — drives the full ladder."""
    return ResilienceConfig(faults=FaultSpec(kinds=(kind,), rate=1.0, seed=seed, **kw))


def transient(kind, seed=1, fires=2):
    """A bounded fault — clears within the retry budget."""
    return ResilienceConfig(
        faults=FaultSpec(kinds=(kind,), rate=1.0, seed=seed, max_fires=fires)
    )


class TestEveryFaultClassSurvives:
    """No injected fault class may escape the supervisor as an exception."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_transient_fault_survived(self, small_web, engine, kind):
        r = nu_lpa(small_web, resilience=transient(kind), engine=engine)
        assert r.labels.min() >= 0
        assert r.labels.max() < small_web.num_vertices
        if kind == "oom":
            # An oom fire shrinks the modelled budget and the pressure
            # persists after the raise (docs/robustness.md), so the memory
            # rungs may legitimately end in the fallback. The contract is
            # absorbed-with-a-balanced-ledger, not never-degraded.
            assert r.memory is not None
            assert r.memory["in_use_bytes"] == 0
            assert r.memory["underflows"] == 0
        else:
            # transient faults clear within the retry budget: never degraded
            assert not r.degraded

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_persistent_fault_survived(self, small_web, engine, kind):
        r = nu_lpa(small_web, resilience=persistent(kind), engine=engine)
        assert r.labels.min() >= 0
        assert r.labels.max() < small_web.num_vertices
        # bitflip key flips may lose the reduce silently; sdc is silent by
        # construction (valid-range wrong values) — only the integrity
        # guard, not the supervisor, can see it (tests/integrity/test_sdc.py).
        if kind not in ("bitflip", "sdc"):
            assert r.fault_events


class TestDegradationLadder:
    def test_retry_then_regrow_then_fallback_order(self, small_web):
        r = nu_lpa(small_web, resilience=persistent("overflow"), engine="hashtable")
        assert r.degraded
        first_iter = [ev for ev in r.fault_events if ev.iteration == 0]
        actions = [ev.action for ev in first_iter]
        # default max_retries=2 -> attempts 0,1 retry; regrow; then fallback
        assert actions == ["retry", "retry", "regrow", "fallback"]

    def test_regrow_doubles_capacity(self, small_web):
        eng = make_engine(small_web, LPAConfig(), "hashtable")
        before = eng.tables.capacity_scale
        eng.grow_tables()
        assert eng.tables.capacity_scale == 2 * before
        assert eng.tables.keys.shape[0] == 2 * before * 2 * small_web.num_edges

    def test_transient_clears_before_ladder_bottom(self, small_web):
        r = nu_lpa(
            small_web, resilience=transient("cas-storm", fires=1), engine="hashtable"
        )
        assert [ev.action for ev in r.fault_events] == ["retry"]

    def test_fallback_disabled_aborts(self, small_web):
        res = ResilienceConfig(
            faults=FaultSpec(kinds=("timeout",), rate=1.0, seed=1),
            allow_fallback=False,
        )
        with pytest.raises(ResilienceExhaustedError) as ei:
            nu_lpa(small_web, resilience=res, engine="hashtable")
        report = ei.value.report
        assert report is not None
        assert report.aborted_at == 0
        assert report.events[-1].action == "abort"

    def test_no_retries_goes_straight_down(self, small_web):
        res = ResilienceConfig(
            faults=FaultSpec(kinds=("overflow",), rate=1.0, seed=1),
            max_retries=0,
        )
        r = nu_lpa(small_web, resilience=res, engine="hashtable")
        first_iter = [ev.action for ev in r.fault_events if ev.iteration == 0]
        assert first_iter == ["regrow", "fallback"]

    def test_unsupervised_run_has_no_events(self, small_web):
        r = nu_lpa(small_web)
        assert r.fault_events == []
        assert not r.degraded


class TestOverflowEqualsCleanRun:
    """The acceptance property: forced hashtable overflow must yield the
    same communities as an un-faulted vectorized run, because every
    degraded move re-executes from a restored snapshot on the hook-free
    fallback engine."""

    @pytest.mark.parametrize("make_graph", GRAPH_CASES)
    @pytest.mark.parametrize("fault_seed", [1, 2, 3])
    def test_forced_overflow_matches_unfaulted(self, make_graph, fault_seed):
        g = make_graph()
        clean = nu_lpa(g, engine="vectorized", warn_on_no_convergence=False)
        faulted = nu_lpa(
            g,
            engine="hashtable",
            resilience=persistent("overflow", seed=fault_seed),
            warn_on_no_convergence=False,
        )
        assert faulted.degraded
        assert np.array_equal(faulted.labels, clean.labels)
        assert faulted.converged == clean.converged


class TestInvariantEnforcement:
    def test_bitflip_never_leaks_bad_labels(self, small_web):
        r = nu_lpa(
            small_web,
            resilience=persistent("bitflip"),
            engine="hashtable",
        )
        assert r.labels.min() >= 0
        assert r.labels.max() < small_web.num_vertices

    def test_validation_can_be_disabled(self, small_web):
        res = ResilienceConfig(validate_invariants=False)
        r = nu_lpa(small_web, resilience=res, engine="vectorized")
        assert r.converged

    def test_resilience_config_validation(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(max_retries=-1)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(resume=True)  # resume requires checkpoint_dir
