"""Tests for the input-validation sweep: strict/repair/quarantine policies."""

import numpy as np
import pytest

from repro.core.lpa import nu_lpa
from repro.errors import ConfigurationError, GraphValidationError
from repro.graph.build import coo_to_csr, from_edges
from repro.graph.csr import CSRGraph
from repro.graph.generators import web_graph
from repro.resilience.validate import (
    FP32_MAX,
    classify_weights,
    repair_weight_values,
    validate_graph,
)
from repro.types import WEIGHT_DTYPE


def sym_graph(pairs, weights, n):
    """Build a CSR graph from (u, v) pairs mirrored both ways."""
    src = np.array([p[0] for p in pairs] + [p[1] for p in pairs], dtype=np.int64)
    dst = np.array([p[1] for p in pairs] + [p[0] for p in pairs], dtype=np.int64)
    w = np.array(list(weights) + list(weights), dtype=WEIGHT_DTYPE)
    return coo_to_csr(src, dst, w, n)


@pytest.fixture
def clean():
    return web_graph(120, seed=5)


class TestCleanGraph:
    @pytest.mark.parametrize("policy", ["strict", "repair", "quarantine"])
    def test_clean_graph_passes_unmodified(self, clean, policy):
        out, report = validate_graph(clean, policy)
        assert out is clean
        assert report.ok
        assert not report.modified
        assert report.arcs_in == report.arcs_out == clean.num_edges

    def test_unknown_policy_rejected(self, clean):
        with pytest.raises(ConfigurationError):
            validate_graph(clean, "lenient")


class TestWeightDefects:
    def defective(self):
        # NaN on (0,1), +inf on (1,2), negative on (2,3); (0,3) fine
        return sym_graph(
            [(0, 1), (1, 2), (2, 3), (0, 3)],
            [np.nan, np.inf, -2.0, 1.5],
            4,
        )

    def test_strict_raises_with_report(self):
        with pytest.raises(GraphValidationError) as exc:
            validate_graph(self.defective(), "strict")
        by_code = exc.value.report.by_code()
        assert by_code["nan-weight"] == 2
        assert by_code["inf-weight"] == 2
        assert by_code["negative-weight"] == 2

    def test_repair_rewrites_values(self):
        out, report = validate_graph(self.defective(), "repair")
        assert report.ok and report.modified
        assert report.repaired_arcs >= 6
        assert np.all(np.isfinite(out.weights))
        assert np.all(out.weights >= 0)
        # NaN -> 1.0, inf -> fp32 max, negative -> 0.0
        vals = sorted(set(out.weights.tolist()))
        assert vals == [0.0, 1.0, 1.5, np.float32(FP32_MAX)]

    def test_quarantine_drops_arcs(self):
        out, report = validate_graph(self.defective(), "quarantine")
        assert report.ok
        assert report.quarantined_arcs == 6
        assert out.num_edges == 2  # only the (0,3) pair survives
        assert np.all(np.isfinite(out.weights))

    def test_classify_float64_overflow(self):
        w = np.array([1.0, 1e39, -1.0, np.nan])
        d = classify_weights(w)
        assert d.overflow.tolist() == [False, True, False, False]
        fixed, n = repair_weight_values(w, d)
        assert n == 3
        assert fixed[1] == FP32_MAX


class TestStructure:
    def test_duplicates_merged_under_repair(self):
        src = np.array([0, 0, 1, 1], dtype=np.int64)
        dst = np.array([1, 1, 0, 0], dtype=np.int64)
        w = np.array([2.0, 5.0, 2.0, 5.0], dtype=WEIGHT_DTYPE)
        g = coo_to_csr(src, dst, w, 2)
        with pytest.raises(GraphValidationError):
            validate_graph(g, "strict")
        out, report = validate_graph(g, "repair")
        assert report.by_code()["duplicate-edges"] == 2
        assert out.num_edges == 2
        assert np.all(out.weights == 5.0)  # merge keeps the max

    def test_asymmetry_repaired_with_reverse_arcs(self):
        # arc 0->1 has no mate
        g = CSRGraph(
            np.array([0, 1, 1], dtype=np.int64),
            np.array([1], dtype=np.int64),
            np.array([3.0], dtype=WEIGHT_DTYPE),
        )
        with pytest.raises(GraphValidationError) as exc:
            validate_graph(g, "strict")
        assert "asymmetric-arcs" in exc.value.report.by_code()
        out, report = validate_graph(g, "repair")
        assert out.num_edges == 2
        assert np.array_equal(sorted(out.neighbors(1)), [0])
        out_q, report_q = validate_graph(g, "quarantine")
        assert out_q.num_edges == 0
        assert report_q.quarantined_arcs == 1

    def test_weight_mismatch_pairs_take_max(self):
        g = CSRGraph(
            np.array([0, 1, 2], dtype=np.int64),
            np.array([1, 0], dtype=np.int64),
            np.array([1.0, 9.0], dtype=WEIGHT_DTYPE),
        )
        out, report = validate_graph(g, "repair")
        assert report.by_code()["asymmetric-weights"] == 2
        assert np.all(out.weights == 9.0)

    def test_directed_skips_symmetry(self):
        g = CSRGraph(
            np.array([0, 1, 1], dtype=np.int64),
            np.array([1], dtype=np.int64),
        )
        out, report = validate_graph(g, "strict", undirected=False)
        assert report.ok

    def test_empty_graph_is_info_not_error(self):
        g = from_edges(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            num_vertices=0,
        )
        out, report = validate_graph(g, "strict")
        assert report.ok
        assert "empty-graph" in report.by_code()

    def test_isolated_vertices_reported(self):
        g = sym_graph([(0, 1)], [1.0], 5)
        _, report = validate_graph(g, "strict")
        assert report.by_code()["isolated-vertices"] == 3

    def test_fp32_accumulation_overflow_warned(self):
        big = FP32_MAX / 2
        g = sym_graph([(0, 1), (0, 2), (0, 3)], [big, big, big], 4)
        _, report = validate_graph(g, "strict")
        assert report.ok  # warning severity does not fail strict
        assert report.by_code()["fp32-accumulation-overflow"] >= 1


class TestNuLpaIntegration:
    def test_repair_then_converge(self):
        g = sym_graph(
            [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)],
            [np.nan, 1.0, -1.0, 1.0, np.inf, 1.0],
            5,
        )
        result = nu_lpa(g, validate="repair")
        assert result.converged
        assert result.validation is not None
        assert result.validation.ok and result.validation.modified

    def test_strict_raises_through_nu_lpa(self):
        g = sym_graph([(0, 1)], [np.nan], 2)
        with pytest.raises(GraphValidationError):
            nu_lpa(g, validate="strict")

    def test_report_round_trips_to_json(self, clean):
        import json

        _, report = validate_graph(clean, "repair")
        doc = json.loads(json.dumps(report.as_dict()))
        assert doc["policy"] == "repair"
        assert doc["ok"] is True
