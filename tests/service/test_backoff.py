"""Property-based tests for the retry/backoff policy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    ConfigurationError,
    GraphFormatError,
    GraphValidationError,
    HashtableFullError,
    KernelTimeoutError,
    ResilienceExhaustedError,
    SchemaValidationError,
    TransientKernelError,
)
from repro.service.backoff import RETRYABLE_FAULTS, BackoffPolicy, is_retryable

job_ids = st.text(min_size=1, max_size=40)
attempts = st.integers(0, 200)


class TestRetryability:
    @pytest.mark.parametrize("exc_type", RETRYABLE_FAULTS)
    def test_transient_fault_classes_retry(self, exc_type):
        assert is_retryable(exc_type("boom"))

    @pytest.mark.parametrize("exc_type", [
        GraphValidationError,
        GraphFormatError,
        ConfigurationError,
        SchemaValidationError,
        ValueError,
        RuntimeError,
    ])
    def test_input_and_unknown_errors_never_retry(self, exc_type):
        """Validation/config/unknown errors are permanent: same bytes,
        same rejection — retrying burns deadline for nothing."""
        assert not is_retryable(exc_type("bad input"))


class TestBackoffProperties:
    @given(job_id=job_ids, attempt=attempts)
    @settings(max_examples=100, deadline=None)
    def test_jitter_is_deterministic_per_job_and_attempt(self, job_id, attempt):
        """The same (job_id, attempt) always retries on the same schedule —
        the kill/restart soak's bit-identical replay depends on it."""
        policy = BackoffPolicy(seed=7)
        assert policy.jittered_delay(job_id, attempt) == policy.jittered_delay(
            job_id, attempt
        )

    @given(attempt=st.integers(0, 199))
    @settings(max_examples=100, deadline=None)
    def test_raw_delays_monotone_and_capped(self, attempt):
        policy = BackoffPolicy(base_s=0.05, factor=2.0, cap_s=2.0)
        d0 = policy.delay(attempt)
        d1 = policy.delay(attempt + 1)
        assert 0.0 <= d0 <= d1 <= policy.cap_s

    @given(job_id=job_ids, attempt=attempts)
    @settings(max_examples=100, deadline=None)
    def test_jitter_bounded_and_non_negative(self, job_id, attempt):
        policy = BackoffPolicy(base_s=0.01, cap_s=1.0, jitter=0.5, seed=3)
        raw = policy.delay(attempt)
        jittered = policy.jittered_delay(job_id, attempt)
        assert raw <= jittered <= raw * (1.0 + policy.jitter) + 1e-12

    @given(
        job_a=job_ids, job_b=job_ids, attempt=st.integers(0, 50)
    )
    @settings(max_examples=100, deadline=None)
    def test_jitter_decorrelates_jobs(self, job_a, job_b, attempt):
        """Different jobs draw different jitter (with overwhelming
        probability) — that decorrelation is jitter's whole purpose."""
        policy = BackoffPolicy(base_s=0.05, jitter=1.0, seed=0)
        if job_a == job_b:
            assert policy.jittered_delay(job_a, attempt) == policy.jittered_delay(
                job_b, attempt
            )

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_zero_base_never_sleeps(self, seed):
        policy = BackoffPolicy(base_s=0.0, cap_s=0.0, seed=seed)
        assert policy.jittered_delay("job", 5) == 0.0

    def test_huge_attempt_does_not_overflow(self):
        policy = BackoffPolicy(base_s=0.05, factor=2.0, cap_s=2.0)
        assert policy.delay(10_000) == policy.cap_s

    def test_invalid_policies_rejected(self):
        with pytest.raises(ConfigurationError):
            BackoffPolicy(base_s=-1.0)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(base_s=1.0, cap_s=0.5)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            BackoffPolicy().delay(-1)


class TestValidationNeverRetried:
    def test_service_fails_validation_error_without_retry(self, tmp_path):
        """A job whose graph fails strict validation must fail on attempt 1:
        no retries, no ladder descent to a fallback engine."""
        import numpy as np

        from repro.graph.csr import CSRGraph
        from repro.service import DetectionService, ServiceConfig, JobState
        from repro.types import VERTEX_DTYPE

        # Asymmetric graph: strict validation rejects it.
        offsets = np.array([0, 1, 1], dtype=np.int64)
        targets = np.array([1], dtype=VERTEX_DTYPE)
        weights = np.ones(1, dtype=np.float32)
        bad = CSRGraph(offsets=offsets, targets=targets, weights=weights)

        service = DetectionService(ServiceConfig(workers=1, max_attempts=3))
        service.submit_graph(bad, "bad-job", validate="strict")
        service.drain()
        record = service.result("bad-job")
        assert record.state is JobState.FAILED
        assert record.attempts == 1
        assert record.backoffs == []
