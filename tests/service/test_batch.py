"""Wave batching: launch amortisation math and service integration."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.observe.schema import validate_service_stats
from repro.observe.trace import Tracer
from repro.service import (
    BatchSavings,
    DetectionService,
    JobSpec,
    ServiceConfig,
    amortize_launches,
    batch_key,
)

DATASET = "asia_osm"
SCALE = 0.02
SEED = 7


def _spec(i, **kwargs):
    return JobSpec.dataset(f"j{i}", DATASET, scale=SCALE, seed=SEED, **kwargs)


class TestBatchKey:
    def test_same_config_same_key(self):
        assert batch_key(_spec(0)) == batch_key(_spec(1))

    def test_engine_splits_the_class(self):
        assert batch_key(_spec(0, engine="vectorized")) != batch_key(
            _spec(1, engine="hashtable")
        )

    def test_iteration_cap_splits_the_class(self):
        assert batch_key(_spec(0, max_iterations=5)) != batch_key(
            _spec(1, max_iterations=6)
        )

    def test_tolerance_splits_the_class(self):
        assert batch_key(_spec(0, tolerance=0.01)) != batch_key(
            _spec(1, tolerance=0.05)
        )

    def test_validate_splits_the_class(self):
        assert batch_key(_spec(0, validate="strict")) != batch_key(_spec(1))

    def test_subscriptions_never_batch(self, tmp_path):
        from repro.service import GraphRef

        spec = JobSpec(
            job_id="s",
            graph=GraphRef(kind="dataset", name=DATASET),
            kind="subscription",
            stream_dir=str(tmp_path),
        )
        assert batch_key(spec) is None


class TestAmortizeLaunches:
    def test_empty_batch(self):
        s = amortize_launches([], 0.1)
        assert s == BatchSavings(0, 0, 0.0, ())

    def test_single_job_saves_nothing(self):
        s = amortize_launches([(3, 3, 2)], 0.5)
        assert s.launches_sequential == 8
        assert s.launches_batched == 8
        assert s.saved_seconds == 0.0
        assert s.per_job_saved_s == (0.0,)

    def test_identical_jobs_pay_one_share(self):
        # 4 identical jobs: batched cost is one job's launches.
        s = amortize_launches([(3, 3)] * 4, 1.0)
        assert s.launches_sequential == 24
        assert s.launches_batched == 6
        assert s.saved_seconds == pytest.approx(18.0)
        # Equal schedules split the saving equally.
        assert s.per_job_saved_s == pytest.approx((4.5,) * 4)

    def test_ragged_depths_drop_out_of_later_slots(self):
        s = amortize_launches([(2, 2, 2), (2,)], 1.0)
        # Slot 0: seq 4, batched 2. Slots 1-2: only job 0, no saving.
        assert s.launches_sequential == 8
        assert s.launches_batched == 6
        assert s.saved_seconds == pytest.approx(2.0)
        # Job 1 contributes only to slot 0; both save an equal share there.
        assert s.per_job_saved_s == pytest.approx((1.0, 1.0))

    def test_per_job_attribution_sums_to_total(self):
        rng = np.random.default_rng(11)
        schedules = [
            tuple(int(x) for x in rng.integers(1, 6, size=rng.integers(1, 8)))
            for _ in range(9)
        ]
        s = amortize_launches(schedules, 0.37)
        assert sum(s.per_job_saved_s) == pytest.approx(s.saved_seconds)
        assert all(x >= 0.0 for x in s.per_job_saved_s)

    def test_launches_saved_property(self):
        s = amortize_launches([(4,), (4,)], 2.0)
        assert s.launches_saved == 4
        assert s.saved_seconds == pytest.approx(8.0)


class TestServiceBatching:
    def _run(self, *, batching, jobs=8, tracer=None, **cfg_kwargs):
        svc = DetectionService(
            ServiceConfig(
                workers=jobs, wave_batching=batching,
                batch_max_jobs=max(2, jobs), **cfg_kwargs,
            ),
            tracer=tracer,
        )
        for i in range(jobs):
            svc.submit(_spec(i))
        svc.drain()
        return svc

    def test_eight_jobs_share_one_wave(self):
        tracer = Tracer()
        svc = self._run(batching=True, tracer=tracer)
        assert svc.counters["batches"] == 1
        assert svc.counters["batched_jobs"] == 8
        assert svc.launch_seconds_saved > 0.0
        events = tracer.of_kind("wave_batch")
        assert len(events) == 1
        assert len(events[0].job_ids) == 8
        assert events[0].launches_batched < events[0].launches_sequential

    def test_labels_bit_identical_to_unbatched(self):
        batched = self._run(batching=True)
        plain = self._run(batching=False)
        for i in range(8):
            a = batched.result(f"j{i}").outcome.labels
            b = plain.result(f"j{i}").outcome.labels
            assert a is not None and np.array_equal(a, b)

    def test_batched_clock_is_cheaper(self):
        batched = self._run(batching=True)
        plain = self._run(batching=False)
        assert batched.clock_s < plain.clock_s
        assert batched.clock_s == pytest.approx(
            plain.clock_s - batched.launch_seconds_saved
        )

    def test_per_job_attribution_matches_outcome_delta(self):
        tracer = Tracer()
        batched = self._run(batching=True, tracer=tracer)
        plain = self._run(batching=False)
        event = tracer.of_kind("wave_batch")[0]
        saved_by_job = dict(zip(event.job_ids, event.per_job_saved_s))
        assert sum(saved_by_job.values()) == pytest.approx(event.saved_seconds)
        for job_id, saved in saved_by_job.items():
            cheaper = batched.result(job_id).outcome.modeled_seconds
            full = plain.result(job_id).outcome.modeled_seconds
            assert full - cheaper == pytest.approx(saved)
            assert saved > 0.0

    def test_incompatible_jobs_split_into_waves(self):
        tracer = Tracer()
        svc = DetectionService(
            ServiceConfig(workers=8, wave_batching=True), tracer=tracer
        )
        for i in range(4):
            svc.submit(_spec(i, engine="vectorized"))
        for i in range(4, 8):
            svc.submit(_spec(i, engine="hashtable"))
        svc.drain()
        events = tracer.of_kind("wave_batch")
        assert svc.counters["batches"] == 2
        assert {len(e.job_ids) for e in events} == {4}
        engines = [
            {svc.result(j).spec.engine for j in e.job_ids} for e in events
        ]
        assert all(len(s) == 1 for s in engines)

    def test_batch_bounded_by_workers(self):
        # Only in-flight jobs can share a wave: 2 workers → waves of ≤ 2.
        tracer = Tracer()
        svc = DetectionService(
            ServiceConfig(workers=2, wave_batching=True), tracer=tracer
        )
        for i in range(6):
            svc.submit(_spec(i))
        svc.drain()
        assert all(
            len(e.job_ids) <= 2 for e in tracer.of_kind("wave_batch")
        )
        assert all(
            svc.result(f"j{i}").outcome.labels is not None for i in range(6)
        )

    def test_batch_max_jobs_caps_the_wave(self):
        tracer = Tracer()
        svc = DetectionService(
            ServiceConfig(workers=8, wave_batching=True, batch_max_jobs=3),
            tracer=tracer,
        )
        for i in range(8):
            svc.submit(_spec(i))
        svc.drain()
        assert all(
            len(e.job_ids) <= 3 for e in tracer.of_kind("wave_batch")
        )

    def test_batch_max_jobs_validated(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(batch_max_jobs=1)

    def test_disabled_batching_runs_one_job_per_step(self):
        svc = DetectionService(ServiceConfig(workers=8, wave_batching=False))
        for i in range(3):
            svc.submit(_spec(i))
        done = svc.drain()
        assert done == 3
        assert svc.counters["batches"] == 0
        assert svc.launch_seconds_saved == 0.0

    def test_stats_schema_reports_batching(self):
        svc = self._run(batching=True)
        doc = svc.stats()
        validate_service_stats(doc)
        assert doc["version"] == 3
        assert doc["batching"]["enabled"] is True
        assert doc["batching"]["batches"] == 1
        assert doc["batching"]["batched_jobs"] == 8
        assert doc["batching"]["launch_seconds_saved"] > 0.0

    def test_journal_roundtrip_preserves_amortised_accounting(self, tmp_path):
        cfg_kwargs = dict(journal_dir=tmp_path / "jobs")
        svc = self._run(batching=True, **cfg_kwargs)
        spent = {f"j{i}": svc.result(f"j{i}").gpu_spent_s for i in range(8)}
        again = DetectionService(
            ServiceConfig(
                workers=8, wave_batching=True, journal_dir=tmp_path / "jobs"
            )
        )
        for job_id, gpu in spent.items():
            record = again.result(job_id)
            assert record.gpu_spent_s == pytest.approx(gpu)
            assert record.outcome is not None

    def test_latency_mean_tracks_amortised_clock(self):
        svc = self._run(batching=True)
        expected = sum(
            svc.result(f"j{i}").latency_s for i in range(8)
        )
        assert svc._latency_sum == pytest.approx(expected)
        assert svc._latency_count == 8
