"""Circuit-breaker state machine and the service-level differential test."""

import time

import pytest

from repro.errors import ConfigurationError
from repro.resilience.faults import FaultSpec
from repro.service import (
    BreakerConfig,
    CircuitBreaker,
    DetectionService,
    JobSpec,
    JobState,
    ServiceConfig,
)


def _trip(breaker, clock=0.0, failures=None):
    failures = failures if failures is not None else breaker.config.min_calls
    for _ in range(failures):
        assert breaker.allow(clock)
        breaker.record(False, clock)


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        b = CircuitBreaker("hashtable")
        assert b.state == "closed"
        assert b.allow(0.0)

    def test_opens_at_failure_threshold(self):
        b = CircuitBreaker("hashtable", BreakerConfig(
            window=4, min_calls=3, failure_threshold=0.5, cooldown_s=10.0,
        ))
        b.record(True, 0.0)
        b.record(False, 0.0)
        assert b.state == "closed"  # 2 calls < min_calls
        b.record(False, 0.0)
        assert b.state == "open"    # 2/3 failures >= 0.5
        assert not b.allow(1.0)
        assert b.opened_count == 1

    def test_below_threshold_stays_closed(self):
        b = CircuitBreaker("hashtable", BreakerConfig(
            window=8, min_calls=4, failure_threshold=0.5,
        ))
        for _ in range(6):
            b.record(True, 0.0)
        b.record(False, 0.0)
        b.record(False, 0.0)
        assert b.state == "closed"  # 2/8 < 0.5

    def test_half_open_after_cooldown_then_close_on_success(self):
        b = CircuitBreaker("hashtable", BreakerConfig(
            window=4, min_calls=2, failure_threshold=0.5, cooldown_s=5.0,
        ))
        _trip(b)
        assert not b.allow(4.9)             # still cooling down
        assert b.allow(5.0)                 # probe admitted
        assert b.state == "half-open"
        assert not b.allow(5.0)             # only one probe at a time
        b.record(True, 5.1)
        assert b.state == "closed"
        assert b.allow(5.1)

    def test_half_open_reopens_on_failed_probe(self):
        b = CircuitBreaker("hashtable", BreakerConfig(
            window=4, min_calls=2, failure_threshold=0.5, cooldown_s=5.0,
        ))
        _trip(b, clock=0.0)
        assert b.allow(5.0)
        b.record(False, 5.0)
        assert b.state == "open"
        assert b.opened_count == 2
        assert not b.allow(9.9)             # new cooldown from the reopen
        assert b.allow(10.0)

    def test_window_slides(self):
        b = CircuitBreaker("hashtable", BreakerConfig(
            window=4, min_calls=4, failure_threshold=0.75,
        ))
        for _ in range(2):
            b.record(False, 0.0)
        for _ in range(4):
            b.record(True, 0.0)
        # The two failures slid out of the window.
        assert b.failure_rate == 0.0
        assert b.state == "closed"

    def test_transitions_logged_for_the_trace(self):
        b = CircuitBreaker("hashtable", BreakerConfig(
            window=4, min_calls=2, failure_threshold=0.5, cooldown_s=1.0,
        ))
        _trip(b, clock=0.5)
        b.allow(2.0)
        b.record(True, 2.0)
        names = [t[1] for t in b.transitions]
        assert names == ["closed->open", "open->half-open", "half-open->closed"]

    def test_snapshot_shape(self):
        snap = CircuitBreaker("vectorized").snapshot()
        assert snap == {
            "engine": "vectorized",
            "state": "closed",
            "failure_rate": 0.0,
            "calls_in_window": 0,
            "opened_count": 0,
        }

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            BreakerConfig(window=0)
        with pytest.raises(ConfigurationError):
            BreakerConfig(min_calls=9, window=8)
        with pytest.raises(ConfigurationError):
            BreakerConfig(failure_threshold=0.0)
        with pytest.raises(ConfigurationError):
            BreakerConfig(cooldown_s=-1.0)
        with pytest.raises(ConfigurationError):
            BreakerConfig(half_open_probes=0)


def _run_fleet(breaker_enabled: bool, jobs: int = 8):
    """One service run: every job asks for the persistently-faulted
    hashtable engine; vectorized stays clean."""
    config = ServiceConfig(
        workers=1,
        breaker_enabled=breaker_enabled,
        breaker=BreakerConfig(
            window=4, min_calls=2, failure_threshold=0.5, cooldown_s=1e9,
        ),
        engine_faults={
            "hashtable": FaultSpec(kinds=("overflow",), rate=1.0, seed=7),
        },
    )
    service = DetectionService(config)
    for i in range(jobs):
        service.submit(JobSpec.dataset(
            f"j{i}", "asia_osm", scale=0.05,
            engine="hashtable", max_iterations=8,
        ))
    t0 = time.perf_counter()
    service.drain()
    wall = time.perf_counter() - t0
    return service, wall


class TestBreakerDifferential:
    """Acceptance: with the breaker on, the faulted fleet finishes in
    strictly less total (modelled + wall) time, and every affected job
    still returns labels."""

    def test_breaker_saves_time_and_loses_no_job(self):
        jobs = 8
        service_off, wall_off = _run_fleet(False, jobs)
        service_on, wall_on = _run_fleet(True, jobs)

        for service in (service_off, service_on):
            for i in range(jobs):
                record = service.result(f"j{i}")
                assert record.state is JobState.COMPLETED
                assert record.outcome.labels is not None

        total_off = service_off.clock_s + wall_off
        total_on = service_on.clock_s + wall_on
        assert total_on < total_off

        # The hashtable breaker actually tripped and rerouted jobs.
        assert service_on.breakers["hashtable"].state == "open"
        assert service_on.counters["reroutes"] > 0
        assert service_on.stats()["rungs"]["fallback-engine"] > 0
        # Without the breaker nothing reroutes.
        assert service_off.counters["reroutes"] == 0

    def test_rerouted_jobs_marked_degraded_with_reason(self):
        service, _ = _run_fleet(True, 6)
        rerouted = [
            service.result(f"j{i}") for i in range(6)
            if service.result(f"j{i}").outcome.rung == "fallback-engine"
        ]
        assert rerouted
        for record in rerouted:
            assert record.outcome.degraded
            assert "breaker:hashtable->vectorized" in record.outcome.degraded_reason

    def test_breaker_trips_emit_trace_events(self):
        from repro.observe.trace import Tracer

        config = ServiceConfig(
            workers=1,
            breaker=BreakerConfig(
                window=4, min_calls=2, failure_threshold=0.5, cooldown_s=1e9,
            ),
            engine_faults={
                "hashtable": FaultSpec(kinds=("overflow",), rate=1.0, seed=7),
            },
        )
        tracer = Tracer()
        service = DetectionService(config, tracer=tracer)
        for i in range(4):
            service.submit(JobSpec.dataset(
                f"j{i}", "asia_osm", scale=0.05,
                engine="hashtable", max_iterations=6,
            ))
        service.drain()
        trips = tracer.of_kind("breaker")
        assert any(e.transition == "closed->open" for e in trips)
        assert all(e.engine == "hashtable" for e in trips)
