"""Memory-aware admission: typed rejection, serialization, stats."""

import pytest

from repro.core.config import LPAConfig
from repro.errors import ConfigurationError, MemoryPressure
from repro.gpu.governor import footprint_for
from repro.graph.datasets import generate_standin
from repro.observe.schema import validate_service_stats
from repro.observe.trace import JobEvent, Tracer
from repro.resilience.faults import FaultSpec
from repro.service import DetectionService, JobSpec, JobState, ServiceConfig


@pytest.fixture(scope="module")
def graph():
    return generate_standin("asia_osm", scale=0.05, seed=42)


def _footprint(graph, service, engine="vectorized"):
    """The same estimate the service computes at submit time."""
    spec = JobSpec.dataset("probe", "asia_osm", scale=0.05, engine=engine)
    return footprint_for(
        graph, service._job_config(spec), engine=engine,
        integrity=False, checkpointing=service.journal is not None,
    )["total"]


class TestRejection:
    def test_oversized_job_bounces_with_typed_error(self, graph):
        tracer = Tracer()
        probe = DetectionService(ServiceConfig(memory_budget_bytes=1))
        footprint = _footprint(graph, probe)
        service = DetectionService(
            ServiceConfig(memory_budget_bytes=footprint // 2),
            tracer=tracer,
        )
        with pytest.raises(MemoryPressure) as exc:
            service.submit_graph(graph, "huge")
        err = exc.value
        assert err.estimate_bytes > err.budget_bytes
        assert err.budget_bytes == footprint // 2
        assert err.retry_after_s > 0
        # The job was never admitted: no record, no queue slot burned.
        assert "huge" not in service.jobs
        assert service.queue.depth == 0
        assert service.counters["memory_rejected"] == 1
        states = [ev.state for ev in tracer.events
                  if isinstance(ev, JobEvent)]
        assert "rejected" in states

    def test_fitting_job_admits(self, graph):
        probe = DetectionService(ServiceConfig(memory_budget_bytes=1))
        footprint = _footprint(graph, probe)
        service = DetectionService(
            ServiceConfig(memory_budget_bytes=footprint * 4)
        )
        service.submit_graph(graph, "fits", max_iterations=8)
        assert service.drain() == 1
        record = service.result("fits")
        assert record.state is JobState.COMPLETED
        assert record.footprint_bytes == footprint
        assert service.counters["memory_rejected"] == 0

    def test_reserved_fraction_shrinks_the_budget(self):
        service = DetectionService(ServiceConfig(
            memory_budget_bytes=1000, reserved_memory_fraction=0.25,
        ))
        assert service.memory_budget() == 750

    def test_no_budget_means_no_estimates(self, graph):
        service = DetectionService(ServiceConfig())
        assert service.memory_budget() is None
        service.submit_graph(graph, "free", max_iterations=8)
        assert service.jobs["free"].footprint_bytes is None
        assert service.drain() == 1

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(memory_budget_bytes=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(memory_budget_bytes=100,
                          reserved_memory_fraction=1.0)


class TestSerialization:
    def test_concurrent_jobs_serialize_under_the_budget(self, graph):
        probe = DetectionService(ServiceConfig(memory_budget_bytes=1))
        footprint = _footprint(graph, probe)
        # Each job fits alone; two do not fit together.
        service = DetectionService(ServiceConfig(
            workers=2,
            memory_budget_bytes=int(footprint * 1.5),
        ))
        service.submit_graph(graph, "a", max_iterations=8)
        service.submit_graph(graph, "b", max_iterations=8)
        assert service.drain() == 2
        for job_id in ("a", "b"):
            record = service.result(job_id)
            assert record.state is JobState.COMPLETED
            assert record.outcome.rung == "full"
        assert service.counters["memory_serialized"] >= 1
        stats = service.stats()
        assert stats["memory"]["serialized"] >= 1
        # The scheduled set never exceeded the budget.
        assert stats["memory"]["high_water_bytes"] <= service.memory_budget()
        assert stats["memory"]["high_water_bytes"] == footprint

    def test_requeued_job_keeps_its_priority(self, graph):
        probe = DetectionService(ServiceConfig(memory_budget_bytes=1))
        footprint = _footprint(graph, probe)
        service = DetectionService(ServiceConfig(
            workers=2, memory_budget_bytes=int(footprint * 1.5),
        ))
        service.submit_graph(graph, "first", max_iterations=8, priority=0)
        service.submit_graph(graph, "second", max_iterations=8, priority=5)
        # "first" runs; "second" is serialized back onto the queue and
        # must still run before any later, lower-priority submission.
        service.step()
        service.submit_graph(graph, "third", max_iterations=8, priority=9)
        assert service.drain() == 2
        for job_id in ("first", "second", "third"):
            assert service.jobs[job_id].state is JobState.COMPLETED
        done_clock = {
            j: service.result(j).finished_clock_s for j in ("second", "third")
        }
        assert done_clock["second"] <= done_clock["third"]

    def test_fits_alone_always_makes_progress(self, graph):
        # A budget between one and two footprints with one worker: each
        # job runs by itself, nothing deadlocks.
        probe = DetectionService(ServiceConfig(memory_budget_bytes=1))
        footprint = _footprint(graph, probe)
        service = DetectionService(ServiceConfig(
            workers=1, memory_budget_bytes=int(footprint * 1.2),
        ))
        service.submit_graph(graph, "solo", max_iterations=8)
        assert service.drain() == 1
        assert service.result("solo").state is JobState.COMPLETED


class TestDegradationAccounting:
    def test_oom_degraded_jobs_are_counted(self, graph):
        probe = DetectionService(ServiceConfig(memory_budget_bytes=1))
        footprint = _footprint(graph, probe)
        service = DetectionService(ServiceConfig(
            memory_budget_bytes=footprint * 2,
            engine_faults={
                "vectorized": FaultSpec(kinds=("oom",), rate=1.0,
                                        seed=3, max_fires=1),
            },
        ))
        service.submit_graph(graph, "stormy", max_iterations=8)
        assert service.drain() == 1
        assert service.result("stormy").state is JobState.COMPLETED
        assert service.counters["memory_degraded"] >= 1
        assert service.stats()["memory"]["degradations"] >= 1


class TestStats:
    def test_memory_block_validates_and_reports(self, graph):
        probe = DetectionService(ServiceConfig(memory_budget_bytes=1))
        footprint = _footprint(graph, probe)
        service = DetectionService(ServiceConfig(
            memory_budget_bytes=footprint * 4,
        ))
        service.submit_graph(graph, "a", max_iterations=8)
        service.drain()
        doc = validate_service_stats(service.stats())
        assert doc["version"] == 3
        memory = doc["memory"]
        assert memory["enabled"] is True
        assert memory["budget_bytes"] == footprint * 4
        assert memory["high_water_bytes"] == footprint
        assert memory["in_flight_bytes"] == 0
        assert memory["rejections"] == 0

    def test_disabled_block_validates(self):
        service = DetectionService(ServiceConfig())
        doc = validate_service_stats(service.stats())
        assert doc["memory"]["enabled"] is False
        assert doc["memory"]["budget_bytes"] == 0


class TestRecovery:
    def test_recovered_jobs_reestimate_lazily(self, tmp_path):
        cfg = dict(
            journal_dir=tmp_path / "journal",
            memory_budget_bytes=1 << 30,
        )
        first = DetectionService(ServiceConfig(**cfg))
        first.submit(JobSpec.dataset("night", "asia_osm", scale=0.05,
                                     max_iterations=8))
        assert first.jobs["night"].footprint_bytes is not None
        # "Crash" before running; footprints are not journaled.
        second = DetectionService(ServiceConfig(**cfg))
        assert second.jobs["night"].footprint_bytes is None
        assert second.drain() == 1
        record = second.result("night")
        assert record.state is JobState.COMPLETED
        assert record.footprint_bytes is not None
