"""Admission control, backpressure, and the saturation acceptance test."""

import pytest

from repro.errors import ServiceOverloaded
from repro.service import (
    AdmissionQueue,
    DetectionService,
    GraphRef,
    JobSpec,
    JobState,
    ServiceConfig,
)
from repro.service.job import JobRecord


def _record(job_id, *, tenant="default", priority=0, seq=0):
    return JobRecord(
        spec=JobSpec(
            job_id=job_id,
            graph=GraphRef(kind="dataset", name="asia_osm"),
            tenant=tenant,
            priority=priority,
        ),
        seq=seq,
    )


class TestAdmissionQueue:
    def test_fifo_within_priority(self):
        q = AdmissionQueue(capacity=8)
        for i in range(3):
            q.push(_record(f"j{i}", seq=i))
        assert [q.pop().job_id for _ in range(3)] == ["j0", "j1", "j2"]

    def test_priority_orders_first(self):
        q = AdmissionQueue(capacity=8)
        q.push(_record("late", priority=5, seq=0))
        q.push(_record("urgent", priority=-1, seq=1))
        assert q.pop().job_id == "urgent"

    def test_queue_full_is_typed_with_retry_hint(self):
        q = AdmissionQueue(capacity=2)
        q.push(_record("a", seq=0))
        q.push(_record("b", seq=1))
        with pytest.raises(ServiceOverloaded) as exc_info:
            q.push(_record("c", seq=2), retry_after_s=3.5)
        exc = exc_info.value
        assert exc.reason == "queue-full"
        assert exc.retry_after_s == 3.5
        assert exc.queue_depth == 2
        assert q.rejected_queue_full == 1

    def test_tenant_cap_rejects_while_queue_has_room(self):
        q = AdmissionQueue(capacity=8, tenant_inflight=2)
        q.push(_record("a", tenant="noisy", seq=0))
        q.push(_record("b", tenant="noisy", seq=1))
        with pytest.raises(ServiceOverloaded) as exc_info:
            q.push(_record("c", tenant="noisy", seq=2))
        assert exc_info.value.reason == "tenant-cap"
        # A different tenant is unaffected.
        q.push(_record("d", tenant="quiet", seq=3))
        assert q.rejected_tenant_cap == 1

    def test_pop_keeps_inflight_slot_until_release(self):
        q = AdmissionQueue(capacity=8, tenant_inflight=1)
        q.push(_record("a", tenant="t", seq=0))
        record = q.pop()
        # Still running: the tenant slot is held.
        with pytest.raises(ServiceOverloaded):
            q.push(_record("b", tenant="t", seq=1))
        q.release(record)
        q.push(_record("b", tenant="t", seq=2))

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            AdmissionQueue().pop()


class TestSaturation:
    """Acceptance: saturate a small service; excess submissions get typed
    rejections and every admitted job completes within its propagated
    deadline."""

    def test_overload_rejects_typed_and_admitted_jobs_meet_deadlines(self):
        deadline = 30.0
        service = DetectionService(ServiceConfig(
            workers=1, queue_capacity=3, default_deadline_s=deadline,
        ))
        admitted, rejections = [], []
        for i in range(10):
            spec = JobSpec.dataset(
                f"j{i}", "asia_osm", scale=0.05, max_iterations=8,
            )
            try:
                service.submit(spec)
                admitted.append(spec.job_id)
            except ServiceOverloaded as exc:
                rejections.append(exc)

        assert len(admitted) == 3
        assert len(rejections) == 7
        for exc in rejections:
            assert exc.reason == "queue-full"
            assert exc.retry_after_s > 0

        service.drain()
        for job_id in admitted:
            record = service.result(job_id)
            assert record.state is JobState.COMPLETED
            # Within the propagated deadline: total wall spent across all
            # attempts stayed under the job's budget.
            assert record.wall_spent_s < deadline
            assert record.spec.deadline_s == deadline

        stats = service.stats()
        assert stats["queue"]["rejected_queue_full"] == 7
        assert stats["jobs"]["rejected"] == 7
        assert stats["jobs"]["completed"] == 3

    def test_tenant_cap_saturation_is_per_tenant(self):
        service = DetectionService(ServiceConfig(
            workers=1, queue_capacity=16, tenant_inflight=2,
        ))
        outcomes = {"noisy": 0, "quiet": 0}
        for i in range(6):
            try:
                service.submit(JobSpec.dataset(
                    f"noisy-{i}", "asia_osm", scale=0.02, tenant="noisy",
                ))
                outcomes["noisy"] += 1
            except ServiceOverloaded as exc:
                assert exc.reason == "tenant-cap"
        service.submit(JobSpec.dataset(
            "quiet-0", "asia_osm", scale=0.02, tenant="quiet",
        ))
        outcomes["quiet"] += 1
        assert outcomes == {"noisy": 2, "quiet": 1}

    def test_retry_after_grows_with_backlog(self):
        service = DetectionService(ServiceConfig(
            workers=1, queue_capacity=64, retry_after_base_s=0.5,
        ))
        empty_hint = service.retry_after_hint()
        for i in range(8):
            service.submit(JobSpec.dataset(f"j{i}", "asia_osm", scale=0.02))
        assert service.retry_after_hint() >= empty_hint

    def test_retry_after_uses_mean_completed_latency(self):
        # Regression for the hint formula after the running-mean rewrite:
        # the hint must still equal mean(latency) * backlog / workers.
        service = DetectionService(ServiceConfig(
            workers=2, queue_capacity=64, retry_after_base_s=0.001,
        ))
        for i in range(4):
            service.submit(JobSpec.dataset(f"j{i}", "asia_osm", scale=0.02))
        service.drain()
        completed = [service.result(f"j{i}") for i in range(4)]
        mean = sum(r.latency_s for r in completed) / 4
        # backlog = depth(0) + running(0) + 1
        expected = max(0.001, mean * 1 / 2)
        assert service.retry_after_hint() == pytest.approx(expected)

    def test_retry_after_hint_is_constant_time_in_completed_jobs(self):
        # The hint runs on *every* submit; it must not rescan the job
        # table (the old implementation iterated all completed jobs).
        service = DetectionService(ServiceConfig(
            workers=2, queue_capacity=256, retry_after_base_s=0.5,
        ))
        for i in range(6):
            service.submit(JobSpec.dataset(f"j{i}", "asia_osm", scale=0.02))
        service.drain()
        baseline = service.retry_after_hint()

        class ScanCountingDict(dict):
            scans = 0

            def values(self):
                ScanCountingDict.scans += 1
                return super().values()

            def __iter__(self):
                ScanCountingDict.scans += 1
                return super().__iter__()

        service.jobs = ScanCountingDict(service.jobs)
        hint = service.retry_after_hint()
        assert hint == pytest.approx(baseline)
        assert ScanCountingDict.scans == 0

    def test_retry_after_hint_survives_recovery(self, tmp_path):
        # The running (sum, count) must be rebuilt on journal replay so a
        # restarted service hints from the same data, not from the base.
        config = ServiceConfig(
            workers=2, queue_capacity=64, retry_after_base_s=0.001,
            journal_dir=tmp_path / "jobs",
        )
        service = DetectionService(config)
        for i in range(4):
            service.submit(JobSpec.dataset(f"j{i}", "asia_osm", scale=0.02))
        service.drain()
        before = service.retry_after_hint()
        restarted = DetectionService(config)
        assert restarted.retry_after_hint() == pytest.approx(before)
