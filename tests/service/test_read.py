"""The versioned snapshot read path: format, catalog, and query engine."""

import json
import struct
import zlib

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    SnapshotCorruptError,
    SnapshotError,
    SnapshotNotFoundError,
)
from repro.observe.trace import Tracer
from repro.service.read import (
    MAGIC,
    QueryEngine,
    Snapshot,
    SnapshotCatalog,
    diff_snapshots,
    read_header,
    write_snapshot,
)


def _labels(n=100, communities=7, seed=3):
    rng = np.random.default_rng(seed)
    return rng.integers(0, communities, size=n).astype(np.int64)


class TestSnapshotFormat:
    def test_roundtrip_preserves_labels(self, tmp_path):
        labels = _labels()
        path = tmp_path / "v00000001.snap"
        write_snapshot(path, labels, job_id="j", snapshot_version=1)
        with Snapshot.open(path) as snap:
            assert np.array_equal(np.asarray(snap.labels), labels)
            assert snap.job_id == "j"
            assert snap.snapshot_version == 1
            assert snap.source == "job"
            assert snap.epoch is None
            assert snap.num_vertices == labels.shape[0]
            assert snap.num_communities == np.unique(labels).shape[0]

    def test_epoch_source_roundtrip(self, tmp_path):
        path = tmp_path / "v00000002.snap"
        write_snapshot(
            path, _labels(), job_id="s", snapshot_version=2,
            source="epoch", epoch=5,
        )
        snap = Snapshot.open(path)
        assert snap.source == "epoch" and snap.epoch == 5

    def test_unknown_source_rejected(self, tmp_path):
        with pytest.raises(SnapshotError):
            write_snapshot(
                tmp_path / "x.snap", _labels(),
                job_id="j", snapshot_version=1, source="cache",
            )

    def test_two_dimensional_labels_rejected(self, tmp_path):
        with pytest.raises(SnapshotError):
            write_snapshot(
                tmp_path / "x.snap", np.zeros((4, 4), dtype=np.int64),
                job_id="j", snapshot_version=1,
            )

    def test_negative_labels_rejected(self, tmp_path):
        with pytest.raises(SnapshotError):
            write_snapshot(
                tmp_path / "x.snap", np.asarray([0, -1, 2]),
                job_id="j", snapshot_version=1,
            )

    def test_empty_labels_roundtrip(self, tmp_path):
        path = tmp_path / "v00000001.snap"
        write_snapshot(
            path, np.empty(0, dtype=np.int64), job_id="j",
            snapshot_version=1,
        )
        snap = Snapshot.open(path)
        assert snap.num_vertices == 0 and snap.num_communities == 0
        ids, sizes = snap.community_sizes()
        assert ids.shape == (0,) and sizes.shape == (0,)

    def test_membership_matches_labels_everywhere(self, tmp_path):
        labels = _labels(n=257)
        path = tmp_path / "v.snap"
        write_snapshot(path, labels, job_id="j", snapshot_version=1)
        snap = Snapshot.open(path)
        got = np.asarray([snap.membership(v) for v in range(257)])
        assert np.array_equal(got, labels)

    def test_membership_out_of_range_rejected(self, tmp_path):
        path = tmp_path / "v.snap"
        write_snapshot(path, _labels(n=10), job_id="j", snapshot_version=1)
        snap = Snapshot.open(path)
        with pytest.raises(ConfigurationError):
            snap.membership(10)
        with pytest.raises(ConfigurationError):
            snap.membership(-1)

    def test_roster_matches_reference(self, tmp_path):
        labels = _labels(n=300, communities=11)
        path = tmp_path / "v.snap"
        write_snapshot(path, labels, job_id="j", snapshot_version=1)
        snap = Snapshot.open(path)
        for label in np.unique(labels):
            expected = np.flatnonzero(labels == label)
            assert np.array_equal(np.sort(snap.roster(int(label))), expected)

    def test_roster_unknown_label_is_empty(self, tmp_path):
        path = tmp_path / "v.snap"
        write_snapshot(
            path, np.asarray([0, 0, 2]), job_id="j", snapshot_version=1
        )
        snap = Snapshot.open(path)
        assert snap.roster(1).shape == (0,)     # gap inside the range
        assert snap.roster(99).shape == (0,)    # beyond the range
        assert snap.roster(-5).shape == (0,)

    def test_community_sizes_sum_to_n(self, tmp_path):
        labels = _labels(n=500)
        path = tmp_path / "v.snap"
        write_snapshot(path, labels, job_id="j", snapshot_version=1)
        ids, sizes = Snapshot.open(path).community_sizes()
        assert int(sizes.sum()) == 500
        for label, size in zip(ids, sizes):
            assert int((labels == label).sum()) == int(size)

    def test_non_int64_input_is_cast(self, tmp_path):
        labels32 = _labels().astype(np.int32)
        path = tmp_path / "v.snap"
        write_snapshot(path, labels32, job_id="j", snapshot_version=1)
        snap = Snapshot.open(path)
        assert np.asarray(snap.labels).dtype == np.int64
        assert np.array_equal(np.asarray(snap.labels), labels32)


class TestCorruptionDetection:
    def _published(self, tmp_path):
        path = tmp_path / "v00000001.snap"
        write_snapshot(path, _labels(), job_id="j", snapshot_version=1)
        return path

    def test_bad_magic(self, tmp_path):
        path = self._published(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[:4] = b"XXXX"
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotCorruptError, match="magic"):
            Snapshot.open(path)

    def test_truncated_file(self, tmp_path):
        path = self._published(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(SnapshotCorruptError):
            Snapshot.open(path)

    def test_flipped_label_byte_fails_crc(self, tmp_path):
        path = self._published(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotCorruptError, match="CRC32"):
            Snapshot.open(path)

    def test_garbage_header_json(self, tmp_path):
        path = self._published(tmp_path)
        raw = bytearray(path.read_bytes())
        (header_len,) = struct.unpack_from("<I", raw, len(MAGIC))
        for i in range(len(MAGIC) + 4, len(MAGIC) + 4 + header_len):
            raw[i] = 0x7B
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotCorruptError):
            Snapshot.open(path)

    def test_unknown_format_version(self, tmp_path):
        path = self._published(tmp_path)
        raw = path.read_bytes()
        (header_len,) = struct.unpack_from("<I", raw, len(MAGIC))
        start = len(MAGIC) + 8
        header = json.loads(raw[start:start + header_len])
        header["version"] = 999
        # Re-encode at the same length (and with a matching header CRC)
        # so only the version check can object.
        encoded = json.dumps(header).encode()
        encoded += b" " * (header_len - len(encoded))
        crc = struct.pack("<I", zlib.crc32(encoded))
        path.write_bytes(
            raw[:len(MAGIC) + 4] + crc + encoded + raw[start + header_len:]
        )
        with pytest.raises(SnapshotCorruptError, match="version"):
            Snapshot.open(path)

    def test_flipped_header_bit_fails_header_crc(self, tmp_path):
        # Format v2: the header region has its own CRC32, so bit rot in
        # the JSON (not just the array sections) is detected at open.
        path = self._published(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[len(MAGIC) + 8 + 2] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotCorruptError, match="header CRC"):
            Snapshot.open(path)

    def test_verify_false_skips_crc(self, tmp_path):
        path = self._published(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0xFF
        path.write_bytes(bytes(raw))
        snap = Snapshot.open(path, verify=False)  # trusts the caller
        assert snap.num_vertices == 100
        with pytest.raises(SnapshotCorruptError):
            snap.verify()


class TestCatalog:
    def test_publish_assigns_monotone_versions(self, tmp_path):
        cat = SnapshotCatalog(tmp_path)
        p1 = cat.publish("j", np.asarray([0, 1]))
        p2 = cat.publish("j", np.asarray([1, 1]))
        assert cat.version_of(p1) == 1 and cat.version_of(p2) == 2
        assert [cat.version_of(p) for p in cat.versions("j")] == [1, 2]

    def test_latest_serves_newest(self, tmp_path):
        cat = SnapshotCatalog(tmp_path)
        cat.publish("j", np.asarray([0, 0]))
        cat.publish("j", np.asarray([1, 1]))
        snap = cat.latest("j")
        assert snap.snapshot_version == 2
        assert np.array_equal(np.asarray(snap.labels), [1, 1])

    def test_latest_skips_corrupt_newest(self, tmp_path):
        cat = SnapshotCatalog(tmp_path)
        cat.publish("j", np.asarray([0, 0]))
        newest = cat.publish("j", np.asarray([1, 1]))
        raw = bytearray(newest.read_bytes())
        raw[-1] ^= 0xFF
        newest.write_bytes(bytes(raw))
        snap = cat.latest("j")
        assert snap.snapshot_version == 1
        assert len(cat.skipped) == 1 and cat.skipped[0][0] == newest

    def test_latest_emits_skip_event_when_traced(self, tmp_path):
        tracer = Tracer(enabled=True)
        cat = SnapshotCatalog(tmp_path, tracer=tracer)
        cat.publish("j", np.asarray([0, 0]))
        newest = cat.publish("j", np.asarray([1, 1]))
        raw = bytearray(newest.read_bytes())
        raw[-1] ^= 0xFF
        newest.write_bytes(bytes(raw))
        cat.latest("j")
        skips = [e for e in tracer.events if e.kind == "snapshot_skip"]
        assert len(skips) == 1
        assert skips[0].job_id == "j"
        assert skips[0].path == newest.name
        assert skips[0].iteration == 2  # the skipped version number
        assert skips[0].reason
        # Once the damaged file is gone, lookups emit nothing further.
        newest.unlink()
        cat.latest("j")
        assert len([e for e in tracer.events if e.kind == "snapshot_skip"]) == 1

    def test_latest_raises_when_all_damaged(self, tmp_path):
        cat = SnapshotCatalog(tmp_path)
        p = cat.publish("j", np.asarray([0, 0]))
        p.write_bytes(b"garbage")
        with pytest.raises(SnapshotNotFoundError, match="damaged"):
            cat.latest("j")

    def test_latest_raises_when_never_published(self, tmp_path):
        with pytest.raises(SnapshotNotFoundError, match="no published"):
            SnapshotCatalog(tmp_path).latest("ghost")
        assert SnapshotCatalog(tmp_path).latest_or_none("ghost") is None

    def test_corrupt_version_number_is_burned(self, tmp_path):
        # A damaged v2 must not cause the next publish to reuse 2.
        cat = SnapshotCatalog(tmp_path)
        cat.publish("j", np.asarray([0]))
        v2 = cat.publish("j", np.asarray([1]))
        v2.write_bytes(b"garbage")
        p = cat.publish("j", np.asarray([2]))
        assert cat.version_of(p) == 3

    def test_dedupe_makes_republish_idempotent(self, tmp_path):
        cat = SnapshotCatalog(tmp_path)
        labels = _labels()
        first = cat.publish("j", labels)
        again = cat.publish("j", labels)
        assert again == first and len(cat.versions("j")) == 1
        # Different content is a new version even under dedupe.
        other = labels.copy()
        other[0] += 1
        assert cat.version_of(cat.publish("j", other)) == 2

    def test_dedupe_distinguishes_epochs(self, tmp_path):
        cat = SnapshotCatalog(tmp_path)
        labels = _labels()
        cat.publish("j", labels, source="epoch", epoch=1)
        p = cat.publish("j", labels, source="epoch", epoch=2)
        assert cat.version_of(p) == 2

    def test_keep_ring_prunes_oldest(self, tmp_path):
        cat = SnapshotCatalog(tmp_path, keep=2)
        for i in range(5):
            cat.publish("j", np.asarray([i]))
        assert [cat.version_of(p) for p in cat.versions("j")] == [4, 5]

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(SnapshotError):
            SnapshotCatalog(tmp_path, keep=0)

    def test_awkward_job_ids_get_distinct_dirs(self, tmp_path):
        cat = SnapshotCatalog(tmp_path)
        cat.publish("a/b", np.asarray([0]))
        cat.publish("a_b", np.asarray([1]))
        assert cat.job_dir("a/b") != cat.job_dir("a_b")
        assert np.asarray(cat.latest("a/b").labels)[0] == 0
        assert np.asarray(cat.latest("a_b").labels)[0] == 1

    def test_crash_mid_publish_leaves_previous_version(self, tmp_path, monkeypatch):
        """An interrupted publish must never disturb what latest() serves."""
        cat = SnapshotCatalog(tmp_path)
        labels_v1 = _labels(seed=1)
        cat.publish("j", labels_v1)

        import repro.service.read as read_mod

        def exploding_replace(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(read_mod.os, "replace", exploding_replace)
        with pytest.raises(SnapshotError):
            cat.publish("j", _labels(seed=2))
        monkeypatch.undo()

        snap = cat.latest("j")
        assert snap.snapshot_version == 1
        assert np.array_equal(np.asarray(snap.labels), labels_v1)
        # The failed attempt left no half-written published file behind.
        assert len(cat.versions("j")) == 1


class TestDiff:
    def test_diff_reports_changed_vertices(self, tmp_path):
        cat = SnapshotCatalog(tmp_path)
        a = _labels(n=50, seed=1)
        b = a.copy()
        b[[3, 7, 40]] += 100
        cat.publish("j", a)
        cat.publish("j", b)
        d = QueryEngine(cat).diff("j")
        assert d.from_version == 1 and d.to_version == 2
        assert np.array_equal(d.changed, [3, 7, 40])
        assert d.grown.shape == (0,)
        assert d.total == 3
        assert d.fraction == pytest.approx(3 / 50)

    def test_diff_counts_growth(self, tmp_path):
        cat = SnapshotCatalog(tmp_path)
        cat.publish("j", np.asarray([0, 1]))
        cat.publish("j", np.asarray([0, 2, 5, 5]))
        d = QueryEngine(cat).diff("j")
        assert np.array_equal(d.changed, [1])
        assert np.array_equal(d.grown, [2, 3])

    def test_diff_explicit_versions(self, tmp_path):
        cat = SnapshotCatalog(tmp_path)
        for i in range(3):
            cat.publish("j", np.asarray([i, i]))
        d = QueryEngine(cat).diff("j", from_version=1, to_version=3)
        assert d.changed.shape == (2,)

    def test_diff_one_sided_versions_rejected(self, tmp_path):
        cat = SnapshotCatalog(tmp_path)
        cat.publish("j", np.asarray([0]))
        with pytest.raises(ConfigurationError):
            QueryEngine(cat).diff("j", from_version=1)

    def test_diff_needs_two_readable_versions(self, tmp_path):
        cat = SnapshotCatalog(tmp_path)
        cat.publish("j", np.asarray([0]))
        with pytest.raises(SnapshotNotFoundError):
            QueryEngine(cat).diff("j")

    def test_diff_skips_corrupt_middle_version(self, tmp_path):
        cat = SnapshotCatalog(tmp_path)
        cat.publish("j", np.asarray([0, 0]))
        bad = cat.publish("j", np.asarray([1, 1]))
        cat.publish("j", np.asarray([2, 2]))
        bad.write_bytes(b"garbage")
        d = QueryEngine(cat).diff("j")
        assert (d.from_version, d.to_version) == (1, 3)

    def test_diff_snapshots_direct(self, tmp_path):
        pa = tmp_path / "a.snap"
        pb = tmp_path / "b.snap"
        write_snapshot(pa, np.asarray([0, 1]), job_id="j",
                       snapshot_version=1, source="epoch", epoch=3)
        write_snapshot(pb, np.asarray([0, 2]), job_id="j",
                       snapshot_version=2, source="epoch", epoch=4)
        d = diff_snapshots(Snapshot.open(pa), Snapshot.open(pb))
        assert (d.from_epoch, d.to_epoch) == (3, 4)
        assert np.array_equal(d.changed, [1])


class TestQueryEngine:
    def _catalog(self, tmp_path, labels):
        cat = SnapshotCatalog(tmp_path)
        cat.publish("j", labels)
        return cat

    def test_ops_count_and_stats(self, tmp_path):
        labels = _labels()
        eng = QueryEngine(self._catalog(tmp_path, labels))
        eng.membership("j", 0)
        eng.membership("j", 1)
        eng.roster("j", int(labels[0]))
        eng.community_sizes("j")
        doc = eng.stats()
        assert doc["ops"]["membership"] == 2
        assert doc["ops"]["roster"] == 1
        assert doc["ops"]["community_sizes"] == 1
        assert doc["ops"]["refresh"] == 1  # first touch loads the snapshot
        assert doc["served_jobs"] == ["j"]
        assert doc["versions"] == {"j": 1}

    def test_refresh_picks_up_new_version(self, tmp_path):
        cat = self._catalog(tmp_path, np.asarray([0, 0]))
        eng = QueryEngine(cat)
        assert eng.membership("j", 1) == 0
        cat.publish("j", np.asarray([0, 9]))
        assert eng.membership("j", 1) == 0  # cached until refreshed
        eng.refresh("j")
        assert eng.membership("j", 1) == 9

    def test_query_events_emitted_when_traced(self, tmp_path):
        labels = _labels()
        tracer = Tracer()
        eng = QueryEngine(self._catalog(tmp_path, labels), tracer=tracer)
        eng.membership("j", 5)
        eng.roster("j", int(labels[5]))
        events = tracer.of_kind("query")
        assert [e.op for e in events] == ["membership", "roster"]
        assert events[0].key == 5 and events[0].result_size == 1
        assert events[1].result_size == int((labels == labels[5]).sum())
        assert all(e.snapshot_version == 1 for e in events)

    def test_no_events_when_tracer_disabled(self, tmp_path):
        tracer = Tracer(enabled=False)
        eng = QueryEngine(
            self._catalog(tmp_path, _labels()), tracer=tracer
        )
        eng.membership("j", 0)
        assert len(tracer.events) == 0

    def test_snapshot_stats_event(self, tmp_path):
        tracer = Tracer()
        eng = QueryEngine(self._catalog(tmp_path, _labels()), tracer=tracer)
        eng.membership("j", 0)
        doc = eng.snapshot_stats()
        events = tracer.of_kind("query_stats")
        assert len(events) == 1
        assert events[0].membership == doc["ops"]["membership"] == 1
        assert events[0].served_jobs == 1

    def test_engine_accepts_bare_path(self, tmp_path):
        SnapshotCatalog(tmp_path).publish("j", np.asarray([4]))
        eng = QueryEngine(tmp_path)
        assert eng.membership("j", 0) == 4


class TestServicePublishing:
    def test_completed_job_is_served(self, tmp_path):
        from repro.service import DetectionService, JobSpec, ServiceConfig

        svc = DetectionService(ServiceConfig(snapshot_dir=tmp_path / "snaps"))
        svc.submit(JobSpec.dataset("j1", "asia_osm", scale=0.02, seed=7))
        svc.drain()
        labels = svc.result("j1").outcome.labels
        eng = QueryEngine(svc.read_catalog)
        assert eng.membership("j1", 0) == int(labels[0])
        ids, sizes = eng.community_sizes("j1")
        assert int(sizes.sum()) == labels.shape[0]

    def test_restart_republish_is_dedupe_noop(self, tmp_path):
        from repro.service import DetectionService, JobSpec, ServiceConfig

        cfg = ServiceConfig(
            journal_dir=tmp_path / "jobs", snapshot_dir=tmp_path / "snaps"
        )
        svc = DetectionService(cfg)
        svc.submit(JobSpec.dataset("j1", "asia_osm", scale=0.02, seed=7))
        svc.drain()
        labels = svc.result("j1").outcome.labels

        again = DetectionService(cfg)  # recovery republishes, dedupe absorbs
        assert len(again.read_catalog.versions("j1")) == 1
        snap = again.read_catalog.latest("j1")
        assert np.array_equal(np.asarray(snap.labels), labels)

    def test_crash_between_journal_and_publish_heals_on_restart(self, tmp_path):
        from repro.service import DetectionService, JobSpec, ServiceConfig
        from repro.service.read import SnapshotCatalog as Cat

        cfg = ServiceConfig(
            journal_dir=tmp_path / "jobs", snapshot_dir=tmp_path / "snaps"
        )
        svc = DetectionService(cfg)
        svc.submit(JobSpec.dataset("j1", "asia_osm", scale=0.02, seed=7))
        svc.drain()
        labels = svc.result("j1").outcome.labels
        # Simulate the crash window: job durably completed, snapshot lost.
        for path in Cat(tmp_path / "snaps").versions("j1"):
            path.unlink()

        again = DetectionService(cfg)
        snap = again.read_catalog.latest("j1")
        assert np.array_equal(np.asarray(snap.labels), labels)
