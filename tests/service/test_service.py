"""DetectionService lifecycle: ladder, deadlines, journal, recovery, stats."""

import numpy as np
import pytest

from repro import nu_lpa
from repro.errors import (
    ConfigurationError,
    DuplicateJobError,
    JobNotFoundError,
)
from repro.graph.datasets import generate_standin
from repro.observe.schema import validate_service_stats
from repro.observe.trace import Tracer
from repro.resilience.faults import FaultSpec
from repro.service import (
    DetectionService,
    GraphRef,
    JobSpec,
    JobState,
    ServiceConfig,
    ServiceJournal,
)


def _spec(job_id, **kwargs):
    kwargs.setdefault("scale", 0.05)
    kwargs.setdefault("max_iterations", 12)
    scale = kwargs.pop("scale")
    return JobSpec.dataset(job_id, "asia_osm", scale=scale, **kwargs)


class TestLifecycle:
    def test_submit_drain_result(self):
        service = DetectionService(ServiceConfig(workers=2))
        service.submit(_spec("a"))
        service.submit(_spec("b"))
        assert service.drain() == 2
        for job_id in ("a", "b"):
            record = service.result(job_id)
            assert record.state is JobState.COMPLETED
            assert record.outcome.rung == "full"
            assert record.outcome.labels is not None

    def test_results_match_direct_nu_lpa(self):
        """The service adds orchestration, never different answers."""
        from repro import LPAConfig

        service = DetectionService(ServiceConfig(workers=1))
        service.submit(_spec("a", max_iterations=20))
        service.drain()
        graph = generate_standin("asia_osm", scale=0.05, seed=42)
        direct = nu_lpa(graph, LPAConfig(max_iterations=20),
                        warn_on_no_convergence=False)
        assert np.array_equal(service.result("a").outcome.labels, direct.labels)

    def test_duplicate_job_id_rejected(self):
        service = DetectionService()
        service.submit(_spec("a"))
        with pytest.raises(DuplicateJobError):
            service.submit(_spec("a"))

    def test_unknown_job_raises(self):
        with pytest.raises(JobNotFoundError):
            DetectionService().result("nope")

    def test_memory_graph_jobs_run(self):
        graph = generate_standin("asia_osm", scale=0.05, seed=1)
        service = DetectionService()
        service.submit_graph(graph, "mem", max_iterations=10)
        service.drain()
        assert service.result("mem").state is JobState.COMPLETED

    def test_job_events_traced(self):
        tracer = Tracer()
        service = DetectionService(ServiceConfig(workers=1), tracer=tracer)
        service.submit(_spec("a"))
        service.drain()
        states = [e.state for e in tracer.of_kind("job")]
        assert states[0] == "admitted"
        assert "started" in states
        assert states[-1] in ("completed", "degraded")


class TestDeadlinePropagation:
    def test_remaining_budget_shrinks_with_spend(self):
        record = DetectionService()  # noqa: F841  (constructor sanity)
        spec = _spec("a", deadline_s=10.0)
        from repro.service.job import JobRecord

        r = JobRecord(spec=spec)
        r.wall_spent_s = 4.0
        budget = r.remaining_budget()
        assert budget.wall_seconds == pytest.approx(6.0)
        r.wall_spent_s = 11.0
        assert r.remaining_budget().exhausted

    def test_exhausted_deadline_degrades_to_checkpoint_labels(self, tmp_path):
        """A job whose deadline is spent before any full attempt still
        returns its best-so-far checkpoint labels when the journal holds
        some, or fails cleanly when it does not — never hangs or retries."""
        service = DetectionService(ServiceConfig(
            workers=1, journal_dir=tmp_path / "j",
        ))
        # Seed the journal with a checkpoint by running the job once.
        service.submit(_spec("a", max_iterations=8))
        service.drain()
        assert service.result("a").state is JobState.COMPLETED

        # Same spec, new id, deadline already burned: patch the record's
        # spent wall time right after admission.
        spec = _spec("b", deadline_s=5.0, max_iterations=8)
        service.submit(spec)
        service.jobs["b"].wall_spent_s = 10.0  # deadline fully spent
        service.drain()
        record = service.result("b")
        # No checkpoints for *this* job exist, so the ladder bottoms out.
        assert record.state is JobState.FAILED
        assert record.attempts == 0  # no attempt was launched

    def test_generous_deadline_runs_normally(self):
        service = DetectionService(ServiceConfig(workers=1))
        service.submit(_spec("a", deadline_s=60.0))
        service.drain()
        record = service.result("a")
        assert record.state is JobState.COMPLETED
        assert record.outcome.rung == "full"
        assert record.wall_spent_s < 60.0


class TestDegradationLadder:
    def test_persistent_engine_failure_falls_back_to_other_engine(self):
        """allow_fallback=False turns injected overflows into run-fatal
        errors; retries exhaust and the ladder answers from the alternate
        engine."""
        from repro.core.config import ResilienceConfig

        service = DetectionService(ServiceConfig(
            workers=1,
            max_attempts=2,
            breaker_enabled=False,
            resilience=ResilienceConfig(
                max_retries=0, allow_regrow=False, allow_fallback=False,
            ),
            engine_faults={
                "hashtable": FaultSpec(kinds=("overflow",), rate=1.0, seed=3),
            },
        ))
        service.submit(_spec("a", engine="hashtable", max_iterations=6))
        service.drain()
        record = service.result("a")
        assert record.state is JobState.COMPLETED
        assert record.outcome.rung == "fallback-engine"
        assert record.attempts == 2
        assert len(record.backoffs) >= 1
        assert record.outcome.labels is not None

    def test_coarsened_rung_projects_labels_to_all_vertices(self):
        """Force rungs 1-2 to fail: the coarsened approximation still
        yields one label per original vertex."""
        service = DetectionService(ServiceConfig(
            workers=1,
            max_attempts=1,
            breaker_enabled=False,
            coarsen_target_fraction=0.25,
        ))
        spec = _spec("a", max_iterations=8)
        service.submit(spec)

        from repro.errors import TransientKernelError
        from repro.service.service import DetectionService as DS

        original = DS._attempt

        def failing_attempt(self, record, graph, engine, **kwargs):
            record.last_error = TransientKernelError("forced for the test")
            return None

        try:
            DS._attempt = failing_attempt
            service.drain()
        finally:
            DS._attempt = original

        record = service.result("a")
        assert record.state is JobState.COMPLETED
        assert record.outcome.rung == "coarsened"
        assert record.outcome.degraded_reason == "coarsened-approximation"
        graph = generate_standin("asia_osm", scale=0.05, seed=42)
        assert record.outcome.labels.shape == (graph.num_vertices,)

    def test_everything_failing_fails_the_job_with_reason(self):
        service = DetectionService(ServiceConfig(
            workers=1, max_attempts=1, breaker_enabled=False,
        ))
        service.submit(_spec("a"))

        from repro.errors import TransientKernelError
        from repro.service.service import DetectionService as DS

        def failing_attempt(self, record, graph, engine, **kwargs):
            record.last_error = TransientKernelError("forced")
            return None

        originals = (DS._attempt, DS._coarsened_rung)
        try:
            DS._attempt = failing_attempt
            DS._coarsened_rung = lambda self, record, graph: None
            service.drain()
        finally:
            DS._attempt, DS._coarsened_rung = originals

        record = service.result("a")
        assert record.state is JobState.FAILED
        assert "rung" in record.outcome.error


class TestJournalRecovery:
    def test_completed_jobs_recover_with_crc_verified_labels(self, tmp_path):
        config = ServiceConfig(workers=2, journal_dir=tmp_path / "j")
        first = DetectionService(config)
        first.submit(_spec("a"))
        first.submit(_spec("b"))
        first.drain()
        labels_a = first.result("a").outcome.labels.copy()

        second = DetectionService(config)
        record = second.result("a")
        assert record.state is JobState.COMPLETED
        assert record.recovered
        assert np.array_equal(record.outcome.labels, labels_a)
        # Nothing left to run: recovery did not duplicate the jobs.
        assert second.drain() == 0

    def test_pending_jobs_resume_after_restart(self, tmp_path):
        config = ServiceConfig(workers=1, journal_dir=tmp_path / "j")
        first = DetectionService(config)
        first.submit(_spec("a"))
        first.submit(_spec("b"))
        # Simulate a crash before any job ran: just drop the instance.

        second = DetectionService(config)
        assert second.counters["recovered"] == 2
        assert second.drain() == 2
        for job_id in ("a", "b"):
            assert second.result(job_id).state is JobState.COMPLETED

    def test_memory_graph_jobs_fail_cleanly_on_recovery(self, tmp_path):
        config = ServiceConfig(workers=1, journal_dir=tmp_path / "j")
        first = DetectionService(config)
        graph = generate_standin("asia_osm", scale=0.05, seed=1)
        first.submit_graph(graph, "mem")
        # Crash before running.

        second = DetectionService(config)
        record = second.result("mem")
        assert record.state is JobState.FAILED
        assert "in-memory graph" in record.outcome.error

    def test_tampered_labels_force_deterministic_rerun(self, tmp_path):
        config = ServiceConfig(workers=1, journal_dir=tmp_path / "j")
        first = DetectionService(config)
        first.submit(_spec("a"))
        first.drain()
        labels = first.result("a").outcome.labels.copy()

        journal = ServiceJournal(tmp_path / "j")
        np.savez(journal.labels_path("a"), labels=labels + 1)  # corrupt

        second = DetectionService(config)
        assert second.result("a").state is JobState.PENDING  # CRC mismatch
        second.drain()
        record = second.result("a")
        assert record.state is JobState.COMPLETED
        assert np.array_equal(record.outcome.labels, labels)

    def test_unreadable_journal_record_skipped_not_fatal(self, tmp_path):
        config = ServiceConfig(workers=1, journal_dir=tmp_path / "j")
        first = DetectionService(config)
        first.submit(_spec("a"))
        first.drain()
        # A torn record for some other job.
        (tmp_path / "j" / "jobs" / "torn.json").write_text("{not json")

        second = DetectionService(config)
        assert second.result("a").state is JobState.COMPLETED


class TestStats:
    def test_stats_pass_schema_validation(self, tmp_path):
        service = DetectionService(ServiceConfig(
            workers=2, journal_dir=tmp_path / "j", tenant_inflight=4,
        ))
        for i in range(3):
            service.submit(_spec(f"j{i}", tenant=f"t{i % 2}"))
        service.drain()
        doc = service.stats()
        assert validate_service_stats(doc) is doc
        assert doc["jobs"]["completed"] == 3
        assert doc["latency"]["count"] == 3
        assert doc["latency"]["p95_modeled_s"] >= doc["latency"]["p50_modeled_s"]

    def test_snapshot_emits_stats_event(self):
        tracer = Tracer()
        service = DetectionService(ServiceConfig(workers=1), tracer=tracer)
        service.submit(_spec("a"))
        service.drain()
        service.snapshot()
        events = tracer.of_kind("service_stats")
        assert len(events) == 1
        assert events[0].completed == 1
        assert set(events[0].breaker_states) == {
            "vectorized:closed", "hashtable:closed",
        }

    def test_modelled_clock_advances_with_work(self):
        service = DetectionService(ServiceConfig(workers=1))
        assert service.clock_s == 0.0
        service.submit(_spec("a"))
        service.drain()
        assert service.clock_s > 0.0
        record = service.result("a")
        assert record.finished_clock_s >= record.admitted_clock_s


class TestConfigValidation:
    def test_bad_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(workers=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(queue_capacity=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(max_attempts=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(coarsen_target_fraction=0.0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(engine_faults={"gpu9000": FaultSpec()})

    def test_bad_graph_ref_rejected(self):
        with pytest.raises(ConfigurationError):
            GraphRef(kind="quantum")
        with pytest.raises(ConfigurationError):
            JobSpec(job_id="", graph=GraphRef(kind="dataset", name="x"))
        with pytest.raises(ConfigurationError):
            JobSpec(job_id="a", graph=GraphRef(kind="dataset", name="x"),
                    engine="cpu")
        with pytest.raises(ConfigurationError):
            JobSpec(job_id="a", graph=GraphRef(kind="dataset", name="x"),
                    deadline_s=-1.0)
