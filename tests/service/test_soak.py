"""Kill/restart soak: the service's recovery acceptance test.

Across >= 20 seeded kill schedules, every in-flight job must resume and
complete bit-identically to a crash-free reference run, with no job lost
and none executed twice.
"""

import pytest

from repro.errors import ConfigurationError
from repro.service import JobSpec, ServiceConfig, run_service_soak
from repro.service.soak import ServiceSoakOutcome

#: The workload each schedule replays: mixed datasets and engines.
WORKLOAD = [
    JobSpec.dataset("soak-0", "asia_osm", scale=0.05, max_iterations=12,
                    engine="vectorized"),
    JobSpec.dataset("soak-1", "europe_osm", scale=0.05, max_iterations=12,
                    engine="hashtable"),
    JobSpec.dataset("soak-2", "kmer_V1r", scale=0.05, max_iterations=12,
                    engine="vectorized"),
    JobSpec.dataset("soak-3", "asia_osm", scale=0.08, seed=7,
                    max_iterations=12, engine="hashtable"),
]


class TestKillRestartSoak:
    @pytest.mark.parametrize("seed", range(20))
    def test_soak_schedule_recovers_bit_identically(self, tmp_path, seed):
        outcome = run_service_soak(
            WORKLOAD,
            journal_dir=tmp_path / "journal",
            config=ServiceConfig(workers=2),
            seed=seed,
        )
        assert outcome.crashes >= 1, "schedule injected no deaths"
        assert outcome.lost == []
        assert outcome.duplicated == []
        assert outcome.mismatched == []
        assert outcome.identical == len(WORKLOAD)
        assert outcome.ok

    def test_outcome_serialises(self, tmp_path):
        outcome = run_service_soak(
            WORKLOAD[:2],
            journal_dir=tmp_path / "journal",
            config=ServiceConfig(workers=1),
            seed=99,
        )
        doc = outcome.as_dict()
        assert doc["ok"] is True
        assert doc["jobs"] == 2
        assert isinstance(doc["crashes"], int)

    def test_in_memory_workload_rejected(self, tmp_path):
        from repro.service import GraphRef

        bad = [JobSpec(job_id="m", graph=GraphRef(kind="memory", name="m"))]
        with pytest.raises(ConfigurationError):
            run_service_soak(bad, journal_dir=tmp_path / "j")

    def test_outcome_flags_surface_in_ok(self):
        outcome = ServiceSoakOutcome(
            seed=0, jobs=2, crashes=1, restarts=1, identical=1,
            lost=["x"],
        )
        assert not outcome.ok
