"""Subscription jobs: streaming detection through the DetectionService."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph.datasets import generate_standin
from repro.resilience.chaos import InjectedCrash
from repro.service import (
    DetectionService,
    GraphRef,
    JobSpec,
    JobState,
    ServiceConfig,
)
from repro.stream import DeltaLog, StreamProcessor, random_delta_batches

DATASET = "com-Orkut"
SCALE = 0.03
SEED = 5


def _fill_log(directory, batches=3):
    base = generate_standin(DATASET, scale=SCALE, seed=SEED)
    rng = np.random.default_rng(SEED)
    log = DeltaLog(directory)
    for batch in random_delta_batches(
        base, rng, num_batches=batches, batch_size=4, grow_every=2
    ):
        log.append(batch)
    return base, log


def _spec(job_id, stream_dir, **kwargs):
    return JobSpec(
        job_id=job_id,
        graph=GraphRef(kind="dataset", name=DATASET, scale=SCALE, seed=SEED),
        kind="subscription",
        stream_dir=str(stream_dir),
        **kwargs,
    )


class TestSpecValidation:
    def test_subscription_requires_stream_dir(self):
        with pytest.raises(ConfigurationError):
            JobSpec(
                job_id="s",
                graph=GraphRef(kind="dataset", name=DATASET),
                kind="subscription",
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            JobSpec(
                job_id="s",
                graph=GraphRef(kind="dataset", name=DATASET),
                kind="cron",
            )

    def test_bad_delta_policy_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            _spec("s", tmp_path, delta_policy="yolo")

    def test_negative_hops_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            _spec("s", tmp_path, hops=-1)

    def test_journal_roundtrip_keeps_stream_fields(self, tmp_path):
        spec = _spec("s", tmp_path, hops=2, delta_policy="quarantine")
        again = JobSpec.from_dict(spec.as_dict())
        assert again == spec

    def test_old_journal_records_default_to_detect(self):
        raw = JobSpec.dataset("old", DATASET).as_dict()
        for key in ("kind", "stream_dir", "hops", "delta_policy"):
            raw.pop(key)
        spec = JobSpec.from_dict(raw)
        assert spec.kind == "detect" and spec.stream_dir is None


class TestSubscriptionRuns:
    def test_catches_up_to_log_head(self, tmp_path):
        _, log = _fill_log(tmp_path / "wal")
        service = DetectionService(
            ServiceConfig(journal_dir=tmp_path / "journal")
        )
        service.submit(_spec("sub", tmp_path / "wal"))
        assert service.drain() == 1
        record = service.result("sub")
        assert record.state is JobState.COMPLETED
        assert record.outcome.iterations == log.head_seq
        assert "caught up at epoch 3" in record.outcome.stop_detail
        assert record.outcome.labels is not None

    def test_matches_direct_processor(self, tmp_path):
        base, log = _fill_log(tmp_path / "wal")
        service = DetectionService(
            ServiceConfig(journal_dir=tmp_path / "journal")
        )
        service.submit(_spec("sub", tmp_path / "wal"))
        service.drain()

        direct = StreamProcessor(base, tmp_path / "wal", tmp_path / "direct")
        direct.recover()
        direct.run_to_head()
        assert np.array_equal(
            service.result("sub").outcome.labels, direct.labels
        )

    def test_epochs_live_under_service_journal(self, tmp_path):
        _fill_log(tmp_path / "wal")
        service = DetectionService(
            ServiceConfig(journal_dir=tmp_path / "journal")
        )
        service.submit(_spec("sub", tmp_path / "wal"))
        service.drain()
        stream_dir = service.journal.stream_dir("sub")
        assert sorted(p.name for p in stream_dir.glob("epoch-*.npz"))

    def test_runs_without_a_journal(self, tmp_path):
        _fill_log(tmp_path / "wal")
        service = DetectionService(ServiceConfig())
        service.submit(_spec("nojournal", tmp_path / "wal"))
        service.drain()
        record = service.result("nojournal")
        assert record.state is JobState.COMPLETED
        # Epochs fall back to a directory next to the WAL.
        assert list((tmp_path / "wal" / "epochs").glob("epoch-*.npz"))


class TestKillRestart:
    def test_crash_then_restart_is_bit_identical(self, tmp_path):
        _fill_log(tmp_path / "wal")
        # Reference: no crashes.
        ref = DetectionService(ServiceConfig(journal_dir=tmp_path / "ref"))
        ref.submit(_spec("sub", tmp_path / "wal"))
        ref.drain()
        ref_labels = ref.result("sub").outcome.labels

        fired = {"n": 0}

        def chaos(point, record):
            if point == "mid-epoch-apply" and fired["n"] == 0:
                fired["n"] = 1
                raise InjectedCrash("die mid-epoch-apply")

        crashed = DetectionService(ServiceConfig(
            journal_dir=tmp_path / "journal", chaos_hook=chaos,
        ))
        crashed.submit(_spec("sub", tmp_path / "wal"))
        with pytest.raises(InjectedCrash):
            crashed.drain()

        # A fresh service over the same journal resumes and finishes.
        revived = DetectionService(ServiceConfig(
            journal_dir=tmp_path / "journal",
        ))
        assert "sub" in revived.jobs  # recovered from the journal
        revived.drain()
        record = revived.result("sub")
        assert record.state is JobState.COMPLETED
        assert np.array_equal(record.outcome.labels, ref_labels)


class TestAdvance:
    def test_advance_processes_new_batches(self, tmp_path):
        base, log = _fill_log(tmp_path / "wal")
        service = DetectionService(
            ServiceConfig(journal_dir=tmp_path / "journal")
        )
        service.submit(_spec("sub", tmp_path / "wal"))
        service.drain()
        assert service.result("sub").outcome.iterations == 3

        # Nothing new: advance declines.
        assert service.advance_subscription("sub") is False

        rng = np.random.default_rng(99)
        for batch in random_delta_batches(base, rng, num_batches=2,
                                          batch_size=3):
            log.append(batch)
        assert service.advance_subscription("sub") is True
        service.drain()
        record = service.result("sub")
        assert record.state is JobState.COMPLETED
        assert record.outcome.iterations == 5

    def test_advance_rejects_detect_jobs(self, tmp_path):
        service = DetectionService(
            ServiceConfig(journal_dir=tmp_path / "journal")
        )
        service.submit(JobSpec.dataset("plain", DATASET, scale=SCALE,
                                       seed=SEED, max_iterations=8))
        service.drain()
        with pytest.raises(ConfigurationError):
            service.advance_subscription("plain")
