"""Tests for delta batches, validation policies, and the dead letter."""

import numpy as np
import pytest

from repro.errors import DeltaValidationError
from repro.stream.delta import (
    DeadLetterFile,
    DeltaBatch,
    DeltaOp,
    validate_batch,
)


def _batch(*ops, num_vertices=None):
    return DeltaBatch(ops=tuple(ops), num_vertices=num_vertices)


class TestDeltaBatch:
    def test_json_roundtrip(self):
        batch = _batch(
            DeltaOp("add", 0, 1, weight=2.0),
            DeltaOp("remove", 1, 2),
            DeltaOp("update", 0, 1, weight=0.5),
            num_vertices=5,
        )
        again = DeltaBatch.from_dict(batch.as_dict())
        assert again == batch

    def test_from_arrays(self):
        batch = DeltaBatch.from_arrays(
            "add", [0, 1], [1, 2], [1.0, 2.0], num_vertices=4
        )
        assert len(batch) == 2
        assert batch.count("add") == 2
        assert batch.ops[1] == DeltaOp("add", 1, 2, weight=2.0)

    def test_count_by_kind(self):
        batch = _batch(DeltaOp("add", 0, 1), DeltaOp("remove", 0, 1))
        assert batch.count("add") == 1
        assert batch.count("update") == 0


class TestValidateStrict:
    def test_clean_batch_passes(self):
        clean, report = validate_batch(
            _batch(DeltaOp("add", 0, 1, weight=1.0)), graph_vertices=3
        )
        assert report.ok and len(clean) == 1

    def test_unknown_op_raises(self):
        with pytest.raises(DeltaValidationError) as exc:
            validate_batch(_batch(DeltaOp("upsert", 0, 1)), graph_vertices=3)
        assert "unknown-op" in exc.value.report.by_code()

    def test_out_of_range_endpoint_raises(self):
        with pytest.raises(DeltaValidationError) as exc:
            validate_batch(_batch(DeltaOp("add", 0, 9)), graph_vertices=3)
        assert "endpoint-out-of-range" in exc.value.report.by_code()

    def test_growth_legalises_new_endpoints(self):
        clean, report = validate_batch(
            _batch(DeltaOp("add", 0, 4), num_vertices=5), graph_vertices=3
        )
        assert report.ok and clean.num_vertices == 5

    def test_shrinking_vertex_set_raises(self):
        with pytest.raises(DeltaValidationError) as exc:
            validate_batch(
                _batch(DeltaOp("add", 0, 1), num_vertices=2), graph_vertices=5
            )
        assert "shrinking-vertex-set" in exc.value.report.by_code()

    def test_nan_weight_raises(self):
        with pytest.raises(DeltaValidationError) as exc:
            validate_batch(
                _batch(DeltaOp("add", 0, 1, weight=float("nan"))),
                graph_vertices=3,
            )
        assert "nan-weight" in exc.value.report.by_code()

    def test_update_without_weight_raises(self):
        with pytest.raises(DeltaValidationError) as exc:
            validate_batch(_batch(DeltaOp("update", 0, 1)), graph_vertices=3)
        assert "missing-weight" in exc.value.report.by_code()


class TestValidateRepair:
    def test_weight_defects_repaired(self):
        clean, report = validate_batch(
            _batch(
                DeltaOp("add", 0, 1, weight=float("nan")),
                DeltaOp("add", 0, 2, weight=-3.0),
            ),
            graph_vertices=3,
            policy="repair",
        )
        assert report.repaired_ops == 2
        assert clean.ops[0].weight == 1.0  # NaN -> neutral weight
        assert clean.ops[1].weight == 0.0  # negative -> clamp

    def test_unrepairable_quarantined(self, tmp_path):
        dead = DeadLetterFile(tmp_path / "dead.jsonl")
        clean, report = validate_batch(
            _batch(DeltaOp("upsert", 0, 1), DeltaOp("add", 0, 1)),
            graph_vertices=3,
            policy="repair",
            dead_letter=dead,
            seq=7,
        )
        assert report.quarantined_ops == 1
        assert len(clean) == 1
        (entry,) = dead.entries()
        assert entry["seq"] == 7
        assert entry["reasons"] == ["unknown-op"]
        assert entry["op"]["op"] == "upsert"


class TestValidateQuarantine:
    def test_everything_bad_is_dead_lettered_not_dropped(self, tmp_path):
        dead = DeadLetterFile(tmp_path / "dead.jsonl")
        clean, report = validate_batch(
            _batch(
                DeltaOp("add", 0, 1, weight=float("nan")),
                DeltaOp("add", -1, 1),
                DeltaOp("add", 1, 2),
            ),
            graph_vertices=3,
            policy="quarantine",
            dead_letter=dead,
            seq=1,
        )
        assert len(clean) == 1
        assert report.quarantined_ops == 2
        assert len(dead) == 2
        codes = {r for e in dead.entries() for r in e["reasons"]}
        assert codes == {"nan-weight", "negative-endpoint"}

    def test_shrink_declaration_cleared(self):
        clean, report = validate_batch(
            _batch(DeltaOp("add", 0, 1), num_vertices=2),
            graph_vertices=5,
            policy="quarantine",
        )
        assert clean.num_vertices is None
        assert report.ok  # resolved by repair, not silently ignored


class TestDeadLetterFile:
    def test_torn_tail_tolerated(self, tmp_path):
        dead = DeadLetterFile(tmp_path / "dead.jsonl")
        dead.append(1, DeltaOp("add", 0, 1), ["nan-weight"])
        dead.append(2, DeltaOp("remove", 1, 2), ["missing-edge"])
        with open(dead.path, "a") as fh:
            fh.write('{"seq": 3, "op"')  # crash mid-append
        assert len(dead) == 2
        assert [e["seq"] for e in dead.entries()] == [1, 2]

    def test_missing_file_is_empty(self, tmp_path):
        assert DeadLetterFile(tmp_path / "nope.jsonl").entries() == []
