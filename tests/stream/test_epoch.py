"""Tests for epoch-versioned batch application and the epoch journal."""

import numpy as np
import pytest

from repro.errors import DeltaValidationError, StreamError
from repro.graph.build import from_edges
from repro.stream.delta import DeadLetterFile, DeltaBatch, DeltaOp
from repro.stream.epoch import EpochJournal, EpochState, apply_batch


@pytest.fixture
def square():
    # 4-cycle: 0-1-2-3-0
    return from_edges([0, 1, 2, 3], [1, 2, 3, 0], symmetrize=True)


def _batch(*ops, num_vertices=None):
    return DeltaBatch(ops=tuple(ops), num_vertices=num_vertices)


class TestApplyBatch:
    def test_add_then_update_same_batch(self, square):
        out = apply_batch(square, _batch(
            DeltaOp("add", 0, 2, weight=1.0),
            DeltaOp("update", 0, 2, weight=5.0),
        ))
        assert out.added == 1 and out.updated == 1
        idx = out.graph.neighbors(0).tolist().index(2)
        assert out.graph.weights[out.graph.offsets[0] + idx] == 5.0
        assert out.touched.tolist() == [0, 2]

    def test_remove_then_read_same_batch_strict(self, square):
        # Removing an edge then updating it must fail strictly: the update
        # names an edge that no longer exists at its point in the sequence.
        with pytest.raises(DeltaValidationError) as exc:
            apply_batch(square, _batch(
                DeltaOp("remove", 0, 1),
                DeltaOp("update", 0, 1, weight=2.0),
            ))
        assert "missing-edge" in exc.value.report.by_code()

    def test_strict_is_all_or_nothing(self, square):
        before_edges = square.num_edges
        with pytest.raises(DeltaValidationError):
            apply_batch(square, _batch(
                DeltaOp("add", 0, 2),
                DeltaOp("remove", 1, 3),  # not an edge of the 4-cycle
            ))
        assert square.num_edges == before_edges  # input untouched

    def test_quarantine_applies_the_rest(self, square, tmp_path):
        dead = DeadLetterFile(tmp_path / "dead.jsonl")
        out = apply_batch(
            square,
            _batch(DeltaOp("add", 0, 2), DeltaOp("remove", 1, 3)),
            policy="quarantine", dead_letter=dead, seq=4,
        )
        assert out.added == 1 and out.removed == 0
        assert out.report.quarantined_ops == 1
        (entry,) = dead.entries()
        assert entry["reasons"] == ["missing-edge"] and entry["seq"] == 4

    def test_growth_pads_vertices(self, square):
        out = apply_batch(square, _batch(
            DeltaOp("add", 0, 5), num_vertices=6,
        ))
        assert out.graph.num_vertices == 6
        assert 5 in out.graph.neighbors(0).tolist()
        assert out.graph.neighbors(4).shape[0] == 0  # isolated newcomer

    def test_deterministic(self, square):
        batch = _batch(
            DeltaOp("add", 1, 3, weight=2.0),
            DeltaOp("remove", 0, 1),
            DeltaOp("update", 2, 3, weight=0.5),
        )
        a = apply_batch(square, batch).graph
        b = apply_batch(square, batch).graph
        assert np.array_equal(a.offsets, b.offsets)
        assert np.array_equal(a.targets, b.targets)
        assert np.array_equal(a.weights, b.weights)

    def test_empty_batch_noop(self, square):
        out = apply_batch(square, _batch())
        assert out.touched.shape[0] == 0
        assert out.graph.num_edges == square.num_edges


class TestEpochJournal:
    def _state(self, epoch, n=6):
        return EpochState(
            epoch=epoch,
            labels=np.full(n, epoch, dtype=np.uint32),
            num_vertices=n,
            num_edges=10,
            modularity_gap=0.001 * epoch,
        )

    def test_save_load_roundtrip(self, tmp_path):
        journal = EpochJournal(tmp_path)
        path = journal.save(self._state(3))
        state = EpochJournal.load(path)
        assert state.epoch == 3
        assert state.modularity_gap == pytest.approx(0.003)
        assert np.array_equal(state.labels, np.full(6, 3, dtype=np.uint32))

    def test_latest_falls_back_past_damage(self, tmp_path):
        journal = EpochJournal(tmp_path)
        for e in range(3):
            journal.save(self._state(e))
        newest = journal.path_for(2)
        newest.write_bytes(newest.read_bytes()[:40])  # truncate
        state = journal.latest()
        assert state.epoch == 1
        assert journal.skipped and journal.skipped[0][0] == newest

    def test_crc_mismatch_detected(self, tmp_path):
        journal = EpochJournal(tmp_path)
        path = journal.save(self._state(1))
        # Corrupt a labels byte inside the npz: rewrite with a bad array
        # is easiest -- save a different labels array under the same meta.
        data = bytearray(path.read_bytes())
        data[-10] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(StreamError):
            EpochJournal.load(path)

    def test_keep_ring_prunes(self, tmp_path):
        journal = EpochJournal(tmp_path, keep=2)
        for e in range(5):
            journal.save(self._state(e))
        assert [p.name for p in journal.epochs()] == [
            "epoch-000003.npz", "epoch-000004.npz",
        ]

    def test_bad_keep_rejected(self, tmp_path):
        with pytest.raises(StreamError):
            EpochJournal(tmp_path, keep=0)

    def test_empty_journal_latest_none(self, tmp_path):
        assert EpochJournal(tmp_path).latest() is None
