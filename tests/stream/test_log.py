"""Tests for the write-ahead delta log: framing, rotation, fsck."""

import struct

import pytest

from repro.errors import DeltaLogCorruptError, StreamError
from repro.stream.delta import DeltaBatch, DeltaOp
from repro.stream.log import DeltaLog, fsck_log


def _batch(i):
    return DeltaBatch(ops=(DeltaOp("add", 0, i + 1, weight=float(i + 1)),),
                      num_vertices=i + 2)


class TestAppendReplay:
    def test_roundtrip(self, tmp_path):
        log = DeltaLog(tmp_path)
        for i in range(5):
            assert log.append(_batch(i)) == i + 1
        assert log.head_seq == 5
        replayed = list(DeltaLog(tmp_path).replay())
        assert [seq for seq, _ in replayed] == [1, 2, 3, 4, 5]
        assert all(batch == _batch(seq - 1) for seq, batch in replayed)

    def test_read_by_seq(self, tmp_path):
        log = DeltaLog(tmp_path)
        for i in range(3):
            log.append(_batch(i))
        assert log.read(2) == _batch(1)
        with pytest.raises(StreamError):
            log.read(9)
        with pytest.raises(StreamError):
            log.read(0)

    def test_rotation_spans_segments(self, tmp_path):
        log = DeltaLog(tmp_path, segment_bytes=128)
        for i in range(10):
            log.append(_batch(i))
        assert len(log.segments()) > 1
        again = DeltaLog(tmp_path, segment_bytes=128)
        assert again.head_seq == 10
        assert [seq for seq, _ in again.replay()] == list(range(1, 11))


class TestCrashRecovery:
    def test_torn_tail_truncated(self, tmp_path):
        log = DeltaLog(tmp_path)
        for i in range(3):
            log.append(_batch(i))
        seg = log.segments()[-1]
        with open(seg, "ab") as fh:
            fh.write(b"DLG1" + b"\x00" * 5)  # partial header
        again = DeltaLog(tmp_path)
        assert again.head_seq == 3
        assert again.repairs and "torn tail" in again.repairs[0]
        # The repair is durable: a third open sees a clean log.
        assert DeltaLog(tmp_path).repairs == []

    def test_torn_payload_truncated(self, tmp_path):
        log = DeltaLog(tmp_path)
        log.append(_batch(0))
        header = struct.Struct("<4sQII").pack(b"DLG1", 2, 100, 0)
        with open(log.segments()[-1], "ab") as fh:
            fh.write(header + b"short")
        again = DeltaLog(tmp_path)
        assert again.head_seq == 1
        assert again.repairs

    def test_midstream_corruption_raises(self, tmp_path):
        log = DeltaLog(tmp_path)
        for i in range(3):
            log.append(_batch(i))
        seg = log.segments()[0]
        data = bytearray(seg.read_bytes())
        data[30] ^= 0xFF  # flip a payload byte of frame 1
        seg.write_bytes(bytes(data))
        with pytest.raises(DeltaLogCorruptError):
            DeltaLog(tmp_path)

    def test_damaged_nonfinal_segment_raises(self, tmp_path):
        log = DeltaLog(tmp_path, segment_bytes=64)
        for i in range(4):
            log.append(_batch(i))
        assert len(log.segments()) > 1
        first = log.segments()[0]
        first.write_bytes(first.read_bytes()[:-3])
        with pytest.raises(DeltaLogCorruptError):
            DeltaLog(tmp_path, segment_bytes=64)

    def test_missing_segment_raises(self, tmp_path):
        log = DeltaLog(tmp_path, segment_bytes=64)
        for i in range(4):
            log.append(_batch(i))
        log.segments()[0].unlink()
        with pytest.raises(DeltaLogCorruptError):
            DeltaLog(tmp_path, segment_bytes=64)


class TestFsck:
    def test_clean_log(self, tmp_path):
        log = DeltaLog(tmp_path, segment_bytes=128)
        for i in range(6):
            log.append(_batch(i))
        entries = fsck_log(tmp_path)
        assert len(entries) == len(log.segments())
        assert all(e.status == "ok" for e in entries)
        assert entries[0].first_seq == 1
        assert entries[-1].last_seq == 6

    def test_torn_tail_reported_not_modified(self, tmp_path):
        log = DeltaLog(tmp_path)
        log.append(_batch(0))
        seg = log.segments()[-1]
        size_before = seg.stat().st_size
        with open(seg, "ab") as fh:
            fh.write(b"DLG1partial")
        entries = fsck_log(tmp_path)
        assert entries[-1].status == "torn-tail"
        assert seg.stat().st_size > size_before  # fsck is read-only

    def test_corrupt_frame_reported(self, tmp_path):
        log = DeltaLog(tmp_path)
        for i in range(2):
            log.append(_batch(i))
        seg = log.segments()[0]
        data = bytearray(seg.read_bytes())
        data[30] ^= 0xFF
        seg.write_bytes(bytes(data))
        entries = fsck_log(tmp_path)
        assert entries[0].status == "corrupt"

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(StreamError):
            fsck_log(tmp_path / "nope")
