"""Tests for the stream processor: epochs, recovery, trace events."""

import numpy as np
import pytest

from repro.errors import StreamError
from repro.graph.datasets import generate_standin
from repro.observe.trace import Tracer
from repro.stream.delta import DeltaBatch, DeltaOp
from repro.stream.epoch import EpochJournal
from repro.stream.log import DeltaLog
from repro.stream.processor import StreamProcessor
from repro.stream.soak import random_delta_batches


@pytest.fixture(scope="module")
def base():
    return generate_standin("com-Orkut", scale=0.03, seed=3)


def _filled_log(tmp_path, base, batches=3, seed=3):
    rng = np.random.default_rng(seed)
    log = DeltaLog(tmp_path / "wal")
    for batch in random_delta_batches(
        base, rng, num_batches=batches, batch_size=4, grow_every=2
    ):
        log.append(batch)
    return log


class TestProcessing:
    def test_epochs_advance_to_head(self, tmp_path, base):
        log = _filled_log(tmp_path, base)
        proc = StreamProcessor(base, log, tmp_path / "epochs")
        assert proc.recover() == 0
        assert proc.lag == 3
        assert proc.run_to_head() == 3
        assert proc.epoch == 3 and proc.lag == 0
        assert proc.step() is None  # at the head

    def test_epoch_zero_snapshot_written(self, tmp_path, base):
        log = DeltaLog(tmp_path / "wal")
        proc = StreamProcessor(base, log, tmp_path / "epochs")
        proc.recover()
        state = EpochJournal(tmp_path / "epochs").latest()
        assert state is not None and state.epoch == 0
        assert np.array_equal(state.labels, proc.labels)

    def test_trace_events_emitted(self, tmp_path, base):
        log = _filled_log(tmp_path, base)
        tracer = Tracer()
        proc = StreamProcessor(
            base, log, tmp_path / "epochs", tracer=tracer,
            differential_every=3,
        )
        proc.recover()
        proc.run_to_head()
        events = [e for e in tracer if e.kind == "epoch"]
        assert [e.iteration for e in events] == [1, 2, 3]
        for e in events:
            assert e.added + e.removed + e.updated >= 1
            assert 0.0 <= e.frontier_fraction <= 1.0
            assert e.frontier >= e.touched
        # The differential ran at epoch 3 and recorded its bound.
        assert events[-1].modularity_gap is not None

    def test_growth_pads_labels(self, tmp_path, base):
        log = DeltaLog(tmp_path / "wal")
        log.append(DeltaBatch(
            ops=(DeltaOp("add", 0, base.num_vertices),),
            num_vertices=base.num_vertices + 1,
        ))
        proc = StreamProcessor(base, log, tmp_path / "epochs")
        proc.recover()
        proc.run_to_head()
        assert proc.labels.shape[0] == base.num_vertices + 1


class TestRecovery:
    def test_fresh_processor_resumes_bit_identical(self, tmp_path, base):
        log = _filled_log(tmp_path, base)
        ref = StreamProcessor(base, log, tmp_path / "epochs")
        ref.recover()
        ref.run_to_head()

        again = StreamProcessor(base, tmp_path / "wal", tmp_path / "epochs")
        again.recover()
        assert again.epoch == ref.epoch
        assert np.array_equal(again.labels, ref.labels)
        assert np.array_equal(again.graph.targets, ref.graph.targets)
        assert np.array_equal(again.graph.weights, ref.graph.weights)

    def test_resume_from_older_epoch_replays_tail(self, tmp_path, base):
        log = _filled_log(tmp_path, base)
        ref = StreamProcessor(base, log, tmp_path / "epochs")
        ref.recover()
        ref.run_to_head()

        # Lose the newest snapshots; recovery falls back then replays.
        journal = EpochJournal(tmp_path / "epochs")
        for path in journal.epochs()[-2:]:
            path.unlink()
        again = StreamProcessor(base, tmp_path / "wal", tmp_path / "epochs")
        again.recover()
        assert again.epoch < ref.epoch
        again.run_to_head()
        assert again.epoch == ref.epoch
        assert np.array_equal(again.labels, ref.labels)

    def test_journal_ahead_of_log_rejected(self, tmp_path, base):
        log = _filled_log(tmp_path, base)
        proc = StreamProcessor(base, log, tmp_path / "epochs")
        proc.recover()
        proc.run_to_head()
        # Simulate a log directory that lost acknowledged batches.
        fresh = StreamProcessor(base, tmp_path / "empty-wal", tmp_path / "epochs")
        with pytest.raises(StreamError):
            fresh.recover()

    def test_chaos_points_fire_in_order(self, tmp_path, base):
        log = _filled_log(tmp_path, base, batches=1)
        points = []
        proc = StreamProcessor(
            base, log, tmp_path / "epochs", chaos=points.append,
        )
        proc.recover()
        proc.run_to_head()
        assert points == ["pre-epoch", "mid-epoch-apply", "post-epoch"]
