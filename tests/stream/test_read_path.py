"""Streaming epochs on the query read path: publish, diff, kill/restart."""

import numpy as np
import pytest

from repro.graph.datasets import generate_standin
from repro.observe.trace import Tracer
from repro.resilience.chaos import InjectedCrash
from repro.service import (
    DetectionService,
    GraphRef,
    JobSpec,
    JobState,
    QueryEngine,
    ServiceConfig,
)
from repro.service.read import read_header
from repro.stream import DeltaLog, StreamProcessor, random_delta_batches

DATASET = "com-Orkut"
SCALE = 0.03
SEED = 11
BATCHES = 4


def _fill_log(directory, batches=BATCHES):
    base = generate_standin(DATASET, scale=SCALE, seed=SEED)
    rng = np.random.default_rng(SEED)
    log = DeltaLog(directory)
    for batch in random_delta_batches(
        base, rng, num_batches=batches, batch_size=5, grow_every=2
    ):
        log.append(batch)
    return base, log


def _spec(job_id, stream_dir):
    return JobSpec(
        job_id=job_id,
        graph=GraphRef(kind="dataset", name=DATASET, scale=SCALE, seed=SEED),
        kind="subscription",
        stream_dir=str(stream_dir),
    )


def _reference_epoch_labels(base, stream_dir, tmp_path):
    """Clean-room replay: label array after every epoch, by epoch number."""
    proc = StreamProcessor(base, stream_dir, tmp_path / "ref-epochs")
    proc.recover()
    labels = {proc.epoch: proc.labels.copy()}
    while proc.step() is not None:
        labels[proc.epoch] = proc.labels.copy()
    return labels


class TestEpochPublishing:
    def test_every_epoch_is_published(self, tmp_path):
        _fill_log(tmp_path / "log")
        svc = DetectionService(ServiceConfig(
            journal_dir=tmp_path / "jobs", snapshot_dir=tmp_path / "snaps",
        ))
        svc.submit(_spec("sub", tmp_path / "log"))
        svc.drain()
        assert svc.result("sub").state is JobState.COMPLETED
        versions = svc.read_catalog.versions("sub")
        headers = [read_header(p) for p in versions]
        # Epoch 0 (initial full detection) through the log head, in order.
        assert [h["epoch"] for h in headers] == list(range(BATCHES + 1))
        assert all(h["source"] == "epoch" for h in headers)

    def test_published_labels_match_clean_replay(self, tmp_path):
        base, _ = _fill_log(tmp_path / "log")
        svc = DetectionService(ServiceConfig(
            journal_dir=tmp_path / "jobs", snapshot_dir=tmp_path / "snaps",
        ))
        svc.submit(_spec("sub", tmp_path / "log"))
        svc.drain()
        reference = _reference_epoch_labels(base, tmp_path / "log", tmp_path)
        for path in svc.read_catalog.versions("sub"):
            header = read_header(path)
            from repro.service.read import Snapshot

            with Snapshot.open(path) as snap:
                assert np.array_equal(
                    np.asarray(snap.labels), reference[header["epoch"]]
                )

    def test_diff_equals_epoch_label_changes(self, tmp_path):
        base, _ = _fill_log(tmp_path / "log")
        svc = DetectionService(ServiceConfig(
            journal_dir=tmp_path / "jobs", snapshot_dir=tmp_path / "snaps",
        ))
        svc.submit(_spec("sub", tmp_path / "log"))
        svc.drain()
        reference = _reference_epoch_labels(base, tmp_path / "log", tmp_path)
        eng = QueryEngine(svc.read_catalog)
        versions = svc.read_catalog.versions("sub")
        for older, newer in zip(versions, versions[1:]):
            d = eng.diff(
                "sub",
                from_version=svc.read_catalog.version_of(older),
                to_version=svc.read_catalog.version_of(newer),
            )
            prev = reference[d.from_epoch]
            cur = reference[d.to_epoch]
            common = min(prev.shape[0], cur.shape[0])
            assert np.array_equal(
                d.changed, np.flatnonzero(prev[:common] != cur[:common])
            )
            assert np.array_equal(
                d.grown, np.arange(common, max(prev.shape[0], cur.shape[0]))
            )

    def test_epoch_retention_follows_snapshot_keep(self, tmp_path):
        _fill_log(tmp_path / "log")
        svc = DetectionService(ServiceConfig(
            journal_dir=tmp_path / "jobs", snapshot_dir=tmp_path / "snaps",
            snapshot_keep=2,
        ))
        svc.submit(_spec("sub", tmp_path / "log"))
        svc.drain()
        versions = svc.read_catalog.versions("sub")
        assert len(versions) == 2
        assert read_header(versions[-1])["epoch"] == BATCHES


class TestKillRestart:
    def _crashing_config(self, tmp_path, crash_epoch, point):
        seen = {"n": 0}
        armed = {"live": True}

        def chaos_hook(chaos_point, record):
            if chaos_point == "pre-epoch":
                seen["n"] += 1
            if (
                armed["live"]
                and seen["n"] == crash_epoch
                and chaos_point == point
            ):
                armed["live"] = False
                raise InjectedCrash(f"death at epoch {crash_epoch} {point}")

        return ServiceConfig(
            journal_dir=tmp_path / "jobs",
            snapshot_dir=tmp_path / "snaps",
            chaos_hook=chaos_hook,
        )

    @pytest.mark.parametrize("point", ["pre-epoch", "mid-epoch-apply"])
    def test_crash_before_save_serves_previous_epoch(self, tmp_path, point):
        """A killed service leaves latest() on the last *published* epoch.

        ``mid-epoch-apply`` fires after detection but before the epoch-N
        journal write and publish, so the newest snapshot must still be
        epoch N-1 — CRC-verified, never a torn file.
        """
        _fill_log(tmp_path / "log")
        crash_epoch = 2
        config = self._crashing_config(tmp_path, crash_epoch, point)
        svc = DetectionService(config)
        svc.submit(_spec("sub", tmp_path / "log"))
        with pytest.raises(InjectedCrash):
            svc.drain()

        # Served state after the crash: the previous epoch, fully intact.
        snap = svc.read_catalog.latest("sub")  # CRC-verified open
        assert snap.source == "epoch"
        assert snap.epoch == crash_epoch - 1
        assert svc.read_catalog.skipped == []  # nothing torn on disk
        snap.close()

        # Restart: recovery + drain catches up, read path follows.
        svc2 = DetectionService(config)
        svc2.drain()
        assert svc2.result("sub").state is JobState.COMPLETED
        final = svc2.read_catalog.latest("sub")
        assert final.epoch == BATCHES
        assert np.array_equal(
            np.asarray(final.labels), svc2.result("sub").outcome.labels
        )
        final.close()

    def test_crash_after_publish_dedupes_on_restart(self, tmp_path):
        """post-epoch death: epoch N journaled *and* published before the
        crash; recovery must re-serve it without minting a new version."""
        _fill_log(tmp_path / "log")
        crash_epoch = 2
        config = self._crashing_config(tmp_path, crash_epoch, "post-epoch")
        svc = DetectionService(config)
        svc.submit(_spec("sub", tmp_path / "log"))
        with pytest.raises(InjectedCrash):
            svc.drain()
        snap = svc.read_catalog.latest("sub")
        assert snap.epoch == crash_epoch
        versions_before = len(svc.read_catalog.versions("sub"))
        snap.close()

        svc2 = DetectionService(config)
        svc2.drain()
        headers = [
            read_header(p) for p in svc2.read_catalog.versions("sub")
        ]
        epochs = [h["epoch"] for h in headers]
        assert epochs == sorted(set(epochs))  # no duplicate epochs
        assert len(epochs) == versions_before + (BATCHES - crash_epoch)

    def test_torn_newest_snapshot_falls_back(self, tmp_path):
        """Simulated torn write over the newest file: latest() must fall
        back to the previous CRC-verified epoch, not serve garbage."""
        _fill_log(tmp_path / "log")
        svc = DetectionService(ServiceConfig(
            journal_dir=tmp_path / "jobs", snapshot_dir=tmp_path / "snaps",
        ))
        svc.submit(_spec("sub", tmp_path / "log"))
        svc.drain()
        versions = svc.read_catalog.versions("sub")
        newest = versions[-1]
        raw = newest.read_bytes()
        newest.write_bytes(raw[: len(raw) - len(raw) // 3])  # torn tail

        eng = QueryEngine(svc.read_catalog)
        snap = eng.snapshot_for("sub")
        assert snap.epoch == BATCHES - 1
        assert len(svc.read_catalog.skipped) == 1
        stats = eng.stats()
        assert stats["skipped"] == 1
