"""Kill/restart chaos soak over streaming subscriptions (scaled down).

The full 20-seed soak runs in CI via ``benchmarks/bench_stream_soak.py``;
this keeps a small always-on slice in the tier-1 suite so a recovery
regression fails fast.
"""

from repro.stream.soak import GAP_BOUND, run_stream_soak


def test_stream_soak_small(tmp_path):
    outcome = run_stream_soak(tmp_path, num_seeds=3)
    assert outcome.ok, [s.as_dict() for s in outcome.seeds if not s.ok]
    assert len(outcome.seeds) == 3
    for seed in outcome.seeds:
        # Every schedule must actually kill something, in both roles.
        assert seed.producer_deaths >= 1
        assert seed.service_deaths >= 1
        assert seed.labels_identical and seed.graph_identical
        assert seed.modularity_gap <= GAP_BOUND
    # At least one torn tail across the run: the mid-append death mode
    # must exercise the WAL's truncate-on-open path.
    assert sum(s.torn_tails for s in outcome.seeds) >= 1


class TestStreamSoakSchema:
    def _doc(self):
        from repro.observe.schema import (
            STREAM_SOAK_SCHEMA,
            STREAM_SOAK_SCHEMA_VERSION,
        )

        return {
            "schema": STREAM_SOAK_SCHEMA,
            "version": STREAM_SOAK_SCHEMA_VERSION,
            "dataset": "com-Orkut",
            "scale": 0.03,
            "num_seeds": 1,
            "batches_per_seed": 6,
            "batch_size": 5,
            "hops": 1,
            "rates": {
                "deltas_per_second": 100.0,
                "epochs_per_second": 10.0,
                "frontier_fraction_mean": 0.4,
                "speedup_vs_scratch": 1.5,
            },
            "soak": {
                "ok": True,
                "num_seeds": 1,
                "total_deaths": 7,
                "seeds": [{
                    "seed": 0, "batches": 6, "epochs": 6,
                    "producer_deaths": 3, "torn_tails": 1,
                    "service_deaths": 4, "restarts": 4,
                    "labels_identical": True, "graph_identical": True,
                    "modularity_gap": 0.0, "ok": True,
                }],
            },
        }

    def test_valid_document_passes(self):
        from repro.observe.schema import validate_stream_soak

        doc = self._doc()
        assert validate_stream_soak(doc) is doc

    def test_seed_count_mismatch_rejected(self):
        import pytest

        from repro.errors import SchemaValidationError
        from repro.observe.schema import validate_stream_soak

        doc = self._doc()
        doc["soak"]["num_seeds"] = 2
        with pytest.raises(SchemaValidationError, match="seeds"):
            validate_stream_soak(doc)

    def test_bad_frontier_fraction_rejected(self):
        import pytest

        from repro.errors import SchemaValidationError
        from repro.observe.schema import validate_stream_soak

        doc = self._doc()
        doc["rates"]["frontier_fraction_mean"] = 1.5
        with pytest.raises(SchemaValidationError, match="fraction"):
            validate_stream_soak(doc)
