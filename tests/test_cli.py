"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


class TestDetect:
    def test_detect_on_dataset(self, capsys):
        assert main(["detect", "--dataset", "asia_osm", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "modularity" in out
        assert "communities" in out

    def test_detect_writes_labels(self, tmp_path, capsys):
        out_file = tmp_path / "labels.txt"
        main([
            "detect", "--dataset", "asia_osm", "--scale", "0.1",
            "--output", str(out_file),
        ])
        labels = np.loadtxt(out_file, dtype=np.int64)
        assert labels.shape[0] > 0

    def test_detect_on_file(self, tmp_path, capsys, two_cliques):
        from repro.graph.io import write_matrix_market

        path = tmp_path / "g.mtx"
        write_matrix_market(two_cliques, path)
        assert main(["detect", "--input", str(path)]) == 0

    def test_detect_custom_options(self, capsys):
        assert main([
            "detect", "--dataset", "asia_osm", "--scale", "0.1",
            "--engine", "hashtable", "--pl-period", "0",
            "--probing", "linear", "--tolerance", "0.1",
        ]) == 0

    def test_requires_source(self):
        with pytest.raises(SystemExit):
            main(["detect"])

    def test_profile_prints_breakdown(self, capsys):
        assert main([
            "detect", "--dataset", "asia_osm", "--scale", "0.1",
            "--engine", "hashtable", "--profile",
        ]) == 0
        out = capsys.readouterr().out
        assert "profile:" in out
        assert "modelled:" in out
        assert "iter " in out

    def test_trace_out_writes_schema_valid_json(self, tmp_path, capsys):
        import json

        from repro.observe.schema import validate_profile

        out_file = tmp_path / "trace.json"
        assert main([
            "detect", "--dataset", "asia_osm", "--scale", "0.1",
            "--engine", "hashtable", "--trace-out", str(out_file),
        ]) == 0
        doc = json.loads(out_file.read_text())
        validate_profile(doc["profile"])
        kinds = {e["kind"] for e in doc["events"]}
        assert {"kernel_launch", "wave", "iteration"} <= kinds

    def test_trace_out_with_faults_records_rungs(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "trace.json"
        assert main([
            "detect", "--dataset", "asia_osm", "--scale", "0.1",
            "--engine", "hashtable", "--trace-out", str(out_file),
            "--inject-faults", "overflow", "--fault-max-fires", "2",
            "--fault-seed", "7",
        ]) == 0
        doc = json.loads(out_file.read_text())
        rungs = [e for e in doc["events"] if e["kind"] == "fault_rung"]
        assert rungs
        assert doc["profile"]["fault_rungs"]


class TestInfo:
    def test_info(self, capsys):
        assert main(["info", "--dataset", "kmer_A2a", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "vertices" in out and "giant component" in out


class TestGenerate:
    @pytest.mark.parametrize("family", ["web", "road", "kmer", "social", "rmat"])
    def test_generate_families(self, tmp_path, capsys, family):
        out = tmp_path / "g.txt"
        assert main([
            "generate", family, "--vertices", "500", "--output", str(out)
        ]) == 0
        assert out.exists()

    def test_generate_mtx(self, tmp_path, capsys):
        out = tmp_path / "g.mtx"
        main(["generate", "kmer", "--vertices", "300", "--output", str(out)])
        from repro.graph.io import load_graph

        assert load_graph(out).num_vertices > 0


class TestCompare:
    def test_compare_runs_all_systems(self, capsys):
        assert main(["compare", "--dataset", "asia_osm", "--scale", "0.08"]) == 0
        out = capsys.readouterr().out
        for system in ("nu-lpa", "flpa", "networkit-lpa", "cugraph-louvain"):
            assert system in out


class TestDetectResilience:
    ARGS = ["detect", "--dataset", "asia_osm", "--scale", "0.1",
            "--engine", "hashtable"]

    def test_inject_faults_survives_and_reports(self, capsys):
        assert main(self.ARGS + ["--inject-faults", "overflow"]) == 0
        out = capsys.readouterr().out
        assert "faults:" in out
        assert "fallback" in out

    def test_inject_multiple_kinds(self, capsys):
        assert main(
            self.ARGS
            + ["--inject-faults", "timeout", "--inject-faults", "cas-storm",
               "--fault-max-fires", "3", "--fault-seed", "9"]
        ) == 0
        assert "faults:" in capsys.readouterr().out

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--inject-faults", "gremlins"])

    def test_checkpoint_then_resume(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        assert main(self.ARGS + ["--checkpoint-dir", str(ckpt)]) == 0
        assert list(ckpt.glob("ckpt-*.npz"))
        first = capsys.readouterr().out
        assert main(
            self.ARGS + ["--checkpoint-dir", str(ckpt), "--resume"]
        ) == 0
        second = capsys.readouterr().out
        assert "resumed:" in second
        # same final partition either way
        line = [ln for ln in first.splitlines() if "communities" in ln]
        assert line == [ln for ln in second.splitlines() if "communities" in ln]

    def test_fault_free_run_prints_no_fault_line(self, capsys):
        assert main(self.ARGS) == 0
        assert "faults:" not in capsys.readouterr().out


class TestDetectHardening:
    ARGS = ["detect", "--dataset", "asia_osm", "--scale", "0.1"]

    def test_validate_clean_graph(self, capsys):
        assert main(self.ARGS + ["--validate", "strict"]) == 0
        assert "validation:" in capsys.readouterr().out

    def test_validate_repairs_defective_file(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1 nan\n1 2 1.0\n2 0 1.0\n")
        # strict (the default for files) refuses the load
        assert main(["detect", "--input", str(path)]) == 1
        assert "NaN edge weight" in capsys.readouterr().err
        # repair loads, fixes, and reports
        assert main(["detect", "--input", str(path), "--validate", "repair"]) == 0
        assert "validation:" in capsys.readouterr().out

    def test_iteration_budget_reports_degraded(self, capsys):
        assert main(self.ARGS + ["--iteration-budget", "1"]) == 0
        out = capsys.readouterr().out
        assert "degraded:" in out
        assert "iterations" in out

    def test_deadline_flag_accepted(self, capsys):
        assert main(self.ARGS + ["--deadline", "3600"]) == 0
        assert "degraded:" not in capsys.readouterr().out

    def test_bad_validate_choice_rejected(self):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--validate", "lenient"])


class TestCkptCommand:
    def test_fsck_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["ckpt"])

    def test_fsck_roundtrip(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        assert main([
            "detect", "--dataset", "asia_osm", "--scale", "0.1",
            "--checkpoint-dir", str(ckpt), "--max-iterations", "2",
        ]) == 0
        capsys.readouterr()
        assert main(["ckpt", "fsck", str(ckpt)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_fsck_flags_and_deletes_corruption(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        main([
            "detect", "--dataset", "asia_osm", "--scale", "0.1",
            "--checkpoint-dir", str(ckpt), "--max-iterations", "2",
        ])
        newest = sorted(ckpt.glob("ckpt-*.npz"))[-1]
        newest.write_bytes(b"rot")
        (ckpt / ".tmp-999.npz").write_bytes(b"partial")
        capsys.readouterr()
        assert main(["ckpt", "fsck", str(ckpt)]) == 1
        out = capsys.readouterr().out
        assert "corrupt" in out and "stale-tmp" in out
        assert main(["ckpt", "fsck", str(ckpt), "--delete"]) == 0
        assert not (ckpt / ".tmp-999.npz").exists()
        assert not newest.exists()

    def test_fsck_missing_directory_errors(self, tmp_path, capsys):
        assert main(["ckpt", "fsck", str(tmp_path / "nope")]) == 1
        assert "does not exist" in capsys.readouterr().err
