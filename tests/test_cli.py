"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


class TestDetect:
    def test_detect_on_dataset(self, capsys):
        assert main(["detect", "--dataset", "asia_osm", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "modularity" in out
        assert "communities" in out

    def test_detect_writes_labels(self, tmp_path, capsys):
        out_file = tmp_path / "labels.txt"
        main([
            "detect", "--dataset", "asia_osm", "--scale", "0.1",
            "--output", str(out_file),
        ])
        labels = np.loadtxt(out_file, dtype=np.int64)
        assert labels.shape[0] > 0

    def test_detect_on_file(self, tmp_path, capsys, two_cliques):
        from repro.graph.io import write_matrix_market

        path = tmp_path / "g.mtx"
        write_matrix_market(two_cliques, path)
        assert main(["detect", "--input", str(path)]) == 0

    def test_detect_custom_options(self, capsys):
        assert main([
            "detect", "--dataset", "asia_osm", "--scale", "0.1",
            "--engine", "hashtable", "--pl-period", "0",
            "--probing", "linear", "--tolerance", "0.1",
        ]) == 0

    def test_requires_source(self):
        with pytest.raises(SystemExit):
            main(["detect"])

    def test_profile_prints_breakdown(self, capsys):
        assert main([
            "detect", "--dataset", "asia_osm", "--scale", "0.1",
            "--engine", "hashtable", "--profile",
        ]) == 0
        out = capsys.readouterr().out
        assert "profile:" in out
        assert "modelled:" in out
        assert "iter " in out

    def test_trace_out_writes_schema_valid_json(self, tmp_path, capsys):
        import json

        from repro.observe.schema import validate_profile

        out_file = tmp_path / "trace.json"
        assert main([
            "detect", "--dataset", "asia_osm", "--scale", "0.1",
            "--engine", "hashtable", "--trace-out", str(out_file),
        ]) == 0
        doc = json.loads(out_file.read_text())
        validate_profile(doc["profile"])
        kinds = {e["kind"] for e in doc["events"]}
        assert {"kernel_launch", "wave", "iteration"} <= kinds

    def test_trace_out_with_faults_records_rungs(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "trace.json"
        assert main([
            "detect", "--dataset", "asia_osm", "--scale", "0.1",
            "--engine", "hashtable", "--trace-out", str(out_file),
            "--inject-faults", "overflow", "--fault-max-fires", "2",
            "--fault-seed", "7",
        ]) == 0
        doc = json.loads(out_file.read_text())
        rungs = [e for e in doc["events"] if e["kind"] == "fault_rung"]
        assert rungs
        assert doc["profile"]["fault_rungs"]


class TestInfo:
    def test_info(self, capsys):
        assert main(["info", "--dataset", "kmer_A2a", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "vertices" in out and "giant component" in out


class TestGenerate:
    @pytest.mark.parametrize("family", ["web", "road", "kmer", "social", "rmat"])
    def test_generate_families(self, tmp_path, capsys, family):
        out = tmp_path / "g.txt"
        assert main([
            "generate", family, "--vertices", "500", "--output", str(out)
        ]) == 0
        assert out.exists()

    def test_generate_mtx(self, tmp_path, capsys):
        out = tmp_path / "g.mtx"
        main(["generate", "kmer", "--vertices", "300", "--output", str(out)])
        from repro.graph.io import load_graph

        assert load_graph(out).num_vertices > 0


class TestCompare:
    def test_compare_runs_all_systems(self, capsys):
        assert main(["compare", "--dataset", "asia_osm", "--scale", "0.08"]) == 0
        out = capsys.readouterr().out
        for system in ("nu-lpa", "flpa", "networkit-lpa", "cugraph-louvain"):
            assert system in out


class TestDetectResilience:
    ARGS = ["detect", "--dataset", "asia_osm", "--scale", "0.1",
            "--engine", "hashtable"]

    def test_inject_faults_survives_and_reports(self, capsys):
        assert main(self.ARGS + ["--inject-faults", "overflow"]) == 0
        out = capsys.readouterr().out
        assert "faults:" in out
        assert "fallback" in out

    def test_inject_multiple_kinds(self, capsys):
        assert main(
            self.ARGS
            + ["--inject-faults", "timeout", "--inject-faults", "cas-storm",
               "--fault-max-fires", "3", "--fault-seed", "9"]
        ) == 0
        assert "faults:" in capsys.readouterr().out

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--inject-faults", "gremlins"])

    def test_checkpoint_then_resume(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        assert main(self.ARGS + ["--checkpoint-dir", str(ckpt)]) == 0
        assert list(ckpt.glob("ckpt-*.npz"))
        first = capsys.readouterr().out
        assert main(
            self.ARGS + ["--checkpoint-dir", str(ckpt), "--resume"]
        ) == 0
        second = capsys.readouterr().out
        assert "resumed:" in second
        # same final partition either way
        line = [ln for ln in first.splitlines() if "communities" in ln]
        assert line == [ln for ln in second.splitlines() if "communities" in ln]

    def test_fault_free_run_prints_no_fault_line(self, capsys):
        assert main(self.ARGS) == 0
        assert "faults:" not in capsys.readouterr().out


class TestDetectHardening:
    ARGS = ["detect", "--dataset", "asia_osm", "--scale", "0.1"]

    def test_validate_clean_graph(self, capsys):
        assert main(self.ARGS + ["--validate", "strict"]) == 0
        assert "validation:" in capsys.readouterr().out

    def test_validate_repairs_defective_file(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1 nan\n1 2 1.0\n2 0 1.0\n")
        # strict (the default for files) refuses the load
        assert main(["detect", "--input", str(path)]) == 1
        assert "NaN edge weight" in capsys.readouterr().err
        # repair loads, fixes, and reports
        assert main(["detect", "--input", str(path), "--validate", "repair"]) == 0
        assert "validation:" in capsys.readouterr().out

    def test_iteration_budget_reports_degraded(self, capsys):
        assert main(self.ARGS + ["--iteration-budget", "1"]) == 0
        out = capsys.readouterr().out
        assert "degraded:" in out
        assert "iterations" in out

    def test_deadline_flag_accepted(self, capsys):
        assert main(self.ARGS + ["--deadline", "3600"]) == 0
        assert "degraded:" not in capsys.readouterr().out

    def test_bad_validate_choice_rejected(self):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--validate", "lenient"])


class TestCkptCommand:
    def test_fsck_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["ckpt"])

    def test_fsck_roundtrip(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        assert main([
            "detect", "--dataset", "asia_osm", "--scale", "0.1",
            "--checkpoint-dir", str(ckpt), "--max-iterations", "2",
        ]) == 0
        capsys.readouterr()
        assert main(["ckpt", "fsck", str(ckpt)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_fsck_flags_and_deletes_corruption(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        main([
            "detect", "--dataset", "asia_osm", "--scale", "0.1",
            "--checkpoint-dir", str(ckpt), "--max-iterations", "2",
        ])
        newest = sorted(ckpt.glob("ckpt-*.npz"))[-1]
        newest.write_bytes(b"rot")
        (ckpt / ".tmp-999.npz").write_bytes(b"partial")
        capsys.readouterr()
        assert main(["ckpt", "fsck", str(ckpt)]) == 1
        out = capsys.readouterr().out
        assert "corrupt" in out and "stale-tmp" in out
        assert main(["ckpt", "fsck", str(ckpt), "--delete"]) == 0
        assert not (ckpt / ".tmp-999.npz").exists()
        assert not newest.exists()

    def test_fsck_missing_directory_errors(self, tmp_path, capsys):
        # Unified fsck contract: unreadable directory is exit 2, not 1.
        assert main(["ckpt", "fsck", str(tmp_path / "nope")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_fsck_json_report(self, tmp_path, capsys):
        import json

        ckpt = tmp_path / "ckpt"
        main([
            "detect", "--dataset", "asia_osm", "--scale", "0.1",
            "--checkpoint-dir", str(ckpt), "--max-iterations", "2",
        ])
        capsys.readouterr()
        assert main(["ckpt", "fsck", str(ckpt), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "checkpoint"
        assert doc["ok"] is True
        assert all(e["status"] == "ok" for e in doc["findings"])


class TestResumeEdgeCases:
    """Each --resume misuse gets a one-line typed error and its own exit
    code: 3 (no --checkpoint-dir), 4 (nothing to resume), 5 (all
    generations damaged)."""

    ARGS = ["detect", "--dataset", "asia_osm", "--scale", "0.05"]

    def test_resume_without_checkpoint_dir_exits_3(self, capsys):
        assert main(self.ARGS + ["--resume"]) == 3
        err = capsys.readouterr().err
        assert "--checkpoint-dir" in err
        assert err.count("\n") == 1  # one line, not a traceback

    def test_resume_empty_directory_exits_4(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(self.ARGS + [
            "--resume", "--checkpoint-dir", str(empty),
        ]) == 4
        err = capsys.readouterr().err
        assert "no checkpoint" in err
        assert err.count("\n") == 1

    def test_resume_missing_directory_exits_4(self, tmp_path, capsys):
        assert main(self.ARGS + [
            "--resume", "--checkpoint-dir", str(tmp_path / "nope"),
        ]) == 4
        assert "does not exist" in capsys.readouterr().err

    def test_resume_all_generations_damaged_exits_5(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        assert main(self.ARGS + [
            "--checkpoint-dir", str(ckpt), "--max-iterations", "3",
        ]) == 0
        for path in ckpt.glob("ckpt-*.npz"):
            path.write_bytes(b"rot")
        capsys.readouterr()
        assert main(self.ARGS + [
            "--resume", "--checkpoint-dir", str(ckpt),
        ]) == 5
        err = capsys.readouterr().err
        assert "damaged" in err
        assert "ckpt fsck" in err  # actionable next step
        assert err.count("\n") == 1

    def test_valid_resume_still_works(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        assert main(self.ARGS + [
            "--checkpoint-dir", str(ckpt), "--max-iterations", "2",
        ]) == 0
        capsys.readouterr()
        assert main(self.ARGS + [
            "--resume", "--checkpoint-dir", str(ckpt),
        ]) == 0
        assert "resumed" in capsys.readouterr().out


class TestSignalHandling:
    """SIGINT/SIGTERM stop the run at the next iteration boundary, write a
    final checkpoint, flush the trace, and exit 128+signum."""

    def _interrupt_during_run(self, monkeypatch, signum):
        import signal as signal_module

        import repro.cli as cli_module

        real = cli_module.nu_lpa
        fired = {"done": False}

        def wrapper(*args, **kwargs):
            if not fired["done"]:
                fired["done"] = True
                signal_module.raise_signal(signum)
            return real(*args, **kwargs)

        monkeypatch.setattr(cli_module, "nu_lpa", wrapper)

    def test_sigint_detect_exits_130_with_checkpoint(
        self, tmp_path, capsys, monkeypatch
    ):
        import signal as signal_module

        self._interrupt_during_run(monkeypatch, signal_module.SIGINT)
        ckpt = tmp_path / "ckpt"
        trace = tmp_path / "trace.json"
        rc = main([
            "detect", "--dataset", "asia_osm", "--scale", "0.1",
            "--checkpoint-dir", str(ckpt), "--trace-out", str(trace),
        ])
        assert rc == 130
        out = capsys.readouterr().out
        assert "interrupted" in out and "SIGINT" in out
        assert list(ckpt.glob("ckpt-*.npz"))  # final checkpoint written
        assert trace.exists()                 # trace flushed

    def test_sigterm_detect_exits_143(self, tmp_path, capsys, monkeypatch):
        import signal as signal_module

        self._interrupt_during_run(monkeypatch, signal_module.SIGTERM)
        rc = main(["detect", "--dataset", "asia_osm", "--scale", "0.1"])
        assert rc == 143
        assert "SIGTERM" in capsys.readouterr().out

    def test_handlers_restored_after_run(self, capsys):
        import signal as signal_module

        before_int = signal_module.getsignal(signal_module.SIGINT)
        before_term = signal_module.getsignal(signal_module.SIGTERM)
        assert main(["detect", "--dataset", "asia_osm", "--scale", "0.05"]) == 0
        assert signal_module.getsignal(signal_module.SIGINT) is before_int
        assert signal_module.getsignal(signal_module.SIGTERM) is before_term


class TestServeCommand:
    def _jobs_file(self, tmp_path, jobs):
        import json

        path = tmp_path / "jobs.json"
        path.write_text(json.dumps(jobs))
        return path

    def test_serve_batch_writes_validated_stats(self, tmp_path, capsys):
        import json

        from repro.observe.schema import validate_service_stats

        jobs = self._jobs_file(tmp_path, [
            {"job_id": "a", "dataset": "asia_osm", "scale": 0.05,
             "max_iterations": 10},
            {"job_id": "b", "dataset": "europe_osm", "scale": 0.05,
             "engine": "hashtable", "max_iterations": 10},
        ])
        stats_path = tmp_path / "stats.json"
        rc = main([
            "serve", "--jobs", str(jobs), "--stats-out", str(stats_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 completed" in out
        doc = json.loads(stats_path.read_text())
        validate_service_stats(doc)
        assert doc["jobs"]["completed"] == 2

    def test_serve_trace_records_job_events(self, tmp_path, capsys):
        import json

        jobs = self._jobs_file(tmp_path, [
            {"job_id": "a", "dataset": "asia_osm", "scale": 0.05},
        ])
        trace_path = tmp_path / "trace.json"
        assert main([
            "serve", "--jobs", str(jobs), "--trace-out", str(trace_path),
        ]) == 0
        kinds = {e["kind"] for e in json.loads(trace_path.read_text())["events"]}
        assert "job" in kinds
        assert "service_stats" in kinds

    def test_serve_journal_recovers_on_rerun(self, tmp_path, capsys):
        jobs = self._jobs_file(tmp_path, [
            {"job_id": "a", "dataset": "asia_osm", "scale": 0.05,
             "max_iterations": 10},
        ])
        journal = tmp_path / "journal"
        assert main(["serve", "--jobs", str(jobs),
                     "--journal", str(journal)]) == 0
        capsys.readouterr()
        # Second run over the same journal: recovered, nothing re-runs.
        assert main(["serve", "--jobs", str(jobs),
                     "--journal", str(journal)]) == 0
        assert "1 completed" in capsys.readouterr().out

    def test_serve_overload_reports_rejections(self, tmp_path, capsys):
        jobs = self._jobs_file(tmp_path, [
            {"job_id": f"j{i}", "dataset": "asia_osm", "scale": 0.02,
             "max_iterations": 5}
            for i in range(6)
        ])
        rc = main([
            "serve", "--jobs", str(jobs), "--queue-capacity", "2",
            "--workers", "1",
        ])
        assert rc == 0  # admitted jobs all completed
        captured = capsys.readouterr()
        assert "rejected" in captured.err
        assert "queue-full" in captured.err

    def test_serve_bad_jobs_file_errors(self, tmp_path, capsys):
        jobs = self._jobs_file(tmp_path, [{"job_id": "a"}])  # no graph
        assert main(["serve", "--jobs", str(jobs)]) == 1
        assert "dataset" in capsys.readouterr().err

    def test_serve_sigint_exits_130_and_journal_resumes(
        self, tmp_path, capsys, monkeypatch
    ):
        import signal as signal_module

        import repro.service.service as service_module

        real = service_module.nu_lpa
        fired = {"done": False}

        def wrapper(*args, **kwargs):
            if not fired["done"]:
                fired["done"] = True
                signal_module.raise_signal(signal_module.SIGINT)
            return real(*args, **kwargs)

        monkeypatch.setattr(service_module, "nu_lpa", wrapper)
        jobs = self._jobs_file(tmp_path, [
            {"job_id": f"j{i}", "dataset": "asia_osm", "scale": 0.1,
             "max_iterations": 10}
            for i in range(3)
        ])
        journal = tmp_path / "journal"
        rc = main(["serve", "--jobs", str(jobs), "--journal", str(journal),
                   "--workers", "1"])
        assert rc == 130
        assert "interrupted" in capsys.readouterr().out

        monkeypatch.setattr(service_module, "nu_lpa", real)
        # The journal finishes the remainder on the next invocation.
        assert main(["serve", "--jobs", str(jobs),
                     "--journal", str(journal)]) == 0
        assert "3 completed" in capsys.readouterr().out


class TestStreamCommand:
    def _log(self, tmp_path):
        from repro.stream import DeltaLog
        from repro.stream.delta import DeltaBatch, DeltaOp

        log = DeltaLog(tmp_path / "wal")
        for i in range(3):
            log.append(DeltaBatch(
                ops=(DeltaOp("add", 0, i + 1, weight=1.0),),
                num_vertices=i + 2,
            ))
        return log

    def test_stream_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["stream"])

    def test_fsck_clean_log(self, tmp_path, capsys):
        self._log(tmp_path)
        assert main(["stream", "fsck", str(tmp_path / "wal")]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "0 corrupt" in out

    def test_fsck_reports_torn_tail_without_repairing(self, tmp_path, capsys):
        log = self._log(tmp_path)
        seg = log.segments()[-1]
        with open(seg, "ab") as fh:
            fh.write(b"DLG1torn")
        size = seg.stat().st_size
        assert main(["stream", "fsck", str(tmp_path / "wal")]) == 0
        assert "torn-tail" in capsys.readouterr().out
        assert seg.stat().st_size == size  # fsck never modifies

    def test_fsck_corruption_exits_nonzero(self, tmp_path, capsys):
        log = self._log(tmp_path)
        seg = log.segments()[0]
        data = bytearray(seg.read_bytes())
        data[30] ^= 0xFF
        seg.write_bytes(bytes(data))
        assert main(["stream", "fsck", str(tmp_path / "wal")]) == 1
        assert "corrupt" in capsys.readouterr().out

    def test_fsck_missing_directory_errors(self, tmp_path, capsys):
        # Unified fsck contract: unreadable directory is exit 2, not 1.
        assert main(["stream", "fsck", str(tmp_path / "nope")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_fsck_json_report(self, tmp_path, capsys):
        import json

        self._log(tmp_path)
        assert main(["stream", "fsck", str(tmp_path / "wal"), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "wal"
        assert doc["ok"] is True

    def test_status_reports_head_and_lag(self, tmp_path, capsys):
        import numpy as np

        from repro.stream.epoch import EpochJournal, EpochState

        self._log(tmp_path)
        journal = EpochJournal(tmp_path / "epochs")
        journal.save(EpochState(
            epoch=2, labels=np.zeros(5, dtype=np.int64),
            num_vertices=5, num_edges=4,
        ))
        assert main([
            "stream", "status", str(tmp_path / "wal"),
            "--epochs", str(tmp_path / "epochs"),
        ]) == 0
        out = capsys.readouterr().out
        assert "seq 3" in out
        assert "epoch 2" in out
        assert "lag: 1" in out


class TestQueryCommand:
    def _published(self, tmp_path):
        import numpy as np

        from repro.service.read import SnapshotCatalog

        catalog = SnapshotCatalog(tmp_path / "snaps")
        labels = np.arange(60, dtype=np.int64) % 4
        catalog.publish("jq", labels)
        churned = labels.copy()
        churned[:6] = 2
        catalog.publish("jq", churned)
        return tmp_path / "snaps"

    def test_membership_roster_and_sizes(self, tmp_path, capsys):
        snaps = self._published(tmp_path)
        assert main([
            "query", "--snapshots", str(snaps), "--job", "jq",
            "--membership", "0", "--membership", "7",
            "--roster", "3", "--sizes", "--top", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "serving:     v2" in out
        assert "membership(0) = 2" in out
        assert "membership(7) = 3" in out
        assert "roster(3)" in out
        assert "communities: 4" in out

    def test_diff_default_and_explicit(self, tmp_path, capsys):
        snaps = self._published(tmp_path)
        assert main([
            "query", "--snapshots", str(snaps), "--job", "jq", "--diff",
        ]) == 0
        assert "diff v1 -> v2" in capsys.readouterr().out
        assert main([
            "query", "--snapshots", str(snaps), "--job", "jq",
            "--diff-versions", "1", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "diff v1 -> v2" in out
        assert "relabeled" in out

    def test_versions_listing(self, tmp_path, capsys):
        snaps = self._published(tmp_path)
        assert main([
            "query", "--snapshots", str(snaps), "--job", "jq", "--versions",
        ]) == 0
        out = capsys.readouterr().out
        assert "v1" in out and "v2" in out

    def test_missing_job_is_typed_error(self, tmp_path, capsys):
        snaps = self._published(tmp_path)
        assert main([
            "query", "--snapshots", str(snaps), "--job", "ghost", "--sizes",
        ]) == 1
        assert "no published snapshot" in capsys.readouterr().err

    def test_serve_publishes_for_query(self, tmp_path, capsys):
        import json

        jobs = tmp_path / "jobs.json"
        jobs.write_text(json.dumps([
            {"job_id": f"j{i}", "dataset": "asia_osm", "scale": 0.02,
             "seed": 7} for i in range(3)
        ]))
        snaps = tmp_path / "snaps"
        assert main([
            "serve", "--jobs", str(jobs), "--workers", "3",
            "--wave-batching", "--snapshot-dir", str(snaps),
        ]) == 0
        out = capsys.readouterr().out
        assert "wave(s)" in out
        assert "3 job(s) published" in out
        assert main([
            "query", "--snapshots", str(snaps), "--job", "j1",
            "--membership", "0",
        ]) == 0
        assert "membership(0)" in capsys.readouterr().out

    def test_serve_jobs_file_subscription(self, tmp_path, capsys):
        import json

        import numpy as np

        from repro.graph.datasets import generate_standin
        from repro.stream import DeltaLog, random_delta_batches

        base = generate_standin("com-Orkut", scale=0.03, seed=11)
        log = DeltaLog(tmp_path / "wal")
        for batch in random_delta_batches(
            base, np.random.default_rng(11), num_batches=2, batch_size=5,
        ):
            log.append(batch)
        jobs = tmp_path / "jobs.json"
        jobs.write_text(json.dumps([{
            "job_id": "live", "kind": "subscription",
            "stream_dir": str(tmp_path / "wal"),
            "graph": {"kind": "dataset", "name": "com-Orkut",
                      "scale": 0.03, "seed": 11},
        }]))
        snaps = tmp_path / "snaps"
        assert main([
            "serve", "--jobs", str(jobs), "--snapshot-dir", str(snaps),
        ]) == 0
        capsys.readouterr()
        # Epochs 0..2 published on the read path, newest served.
        assert main([
            "query", "--snapshots", str(snaps), "--job", "live",
            "--versions",
        ]) == 0
        out = capsys.readouterr().out
        assert "epoch=0" in out and "epoch=2" in out


class TestUnifiedFsck:
    """``repro fsck --all``: one audit over every durable store kind."""

    def _tree(self, tmp_path):
        root = tmp_path / "tree"
        main([
            "detect", "--dataset", "asia_osm", "--scale", "0.1",
            "--checkpoint-dir", str(root / "ckpt"), "--max-iterations", "2",
        ])
        import numpy as np

        from repro.service.read import SnapshotCatalog

        SnapshotCatalog(root / "snap").publish(
            "job-x", np.arange(40, dtype=np.int64)
        )
        return root

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        capsys.readouterr()
        assert main(["fsck", "--all", str(root)]) == 0
        out = capsys.readouterr().out
        assert "checkpoint" in out and "snapshot-catalog" in out
        assert "0 damaged" in out

    def test_damaged_tree_exits_one(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        victim = sorted((root / "snap").rglob("v*.snap"))[0]
        blob = bytearray(victim.read_bytes())
        blob[16] ^= 0x20
        victim.write_bytes(bytes(blob))
        capsys.readouterr()
        assert main(["fsck", "--all", str(root)]) == 1
        out = capsys.readouterr().out
        assert "corrupt" in out

    def test_missing_directory_exits_two(self, tmp_path, capsys):
        assert main(["fsck", "--all", str(tmp_path / "nope")]) == 2

    def test_json_report_validates(self, tmp_path, capsys):
        import json

        root = self._tree(tmp_path)
        capsys.readouterr()
        assert main(["fsck", "--all", str(root), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.integrity/fsck"
        assert doc["ok"] is True
        assert doc["summary"]["damaged"] == 0
        assert {s["kind"] for s in doc["stores"]} >= {
            "checkpoint", "snapshot-catalog"
        }


class TestDetectIntegrity:
    def test_integrity_flag_prints_guard_stats(self, capsys):
        assert main([
            "detect", "--dataset", "asia_osm", "--scale", "0.1",
            "--max-iterations", "3", "--integrity",
        ]) == 0
        out = capsys.readouterr().out
        assert "integrity:" in out
        assert "scrub" in out

    def test_integrity_with_sdc_injection_recovers(self, capsys):
        assert main([
            "detect", "--dataset", "asia_osm", "--scale", "0.1",
            "--max-iterations", "3", "--integrity",
            "--inject-faults", "sdc", "--fault-rate", "1.0",
            "--fault-max-fires", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "integrity:" in out

    def test_without_flag_no_integrity_line(self, capsys):
        assert main([
            "detect", "--dataset", "asia_osm", "--scale", "0.1",
            "--max-iterations", "3",
        ]) == 0
        assert "integrity:" not in capsys.readouterr().out
