"""Smoke tests: every example script must run end-to-end.

Examples are executed in-process (import + ``main()``) with their default
parameters; these are integration tests of the public API surface the
README advertises.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def _load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("example", EXAMPLE_FILES)
def test_example_runs(example, capsys, monkeypatch):
    if example == "compare_systems.py":
        monkeypatch.setattr(sys, "argv", ["compare_systems.py", "asia_osm"])
    module = _load_example(example)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 50  # produced a real report


def test_expected_examples_present():
    assert "quickstart.py" in EXAMPLE_FILES
    assert len(EXAMPLE_FILES) >= 3
