"""Golden regression tests: frozen outputs for fixed seeds.

Every quantity here is integer-derived (label CRCs, counter totals,
iteration counts) or a float with generous tolerance, so the goldens are
stable across platforms.  If an intentional algorithm change shifts them,
re-derive with the snippet in each test and update the constant — that is
the point: unintentional behaviour drift fails loudly.
"""

import zlib

import numpy as np
import pytest

from repro import LPAConfig, nu_lpa
from repro.graph.generators import road_network, web_graph
from repro.metrics import modularity


def _crc(labels: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(labels.astype(np.int64)).tobytes())


@pytest.fixture(scope="module")
def golden_web():
    return web_graph(2000, avg_degree=8, seed=123)


class TestGoldenLabels:
    def test_web_hashtable_labels(self, golden_web):
        r = nu_lpa(golden_web, engine="hashtable")
        assert _crc(r.labels) == 2530107329
        assert r.num_iterations == 6

    def test_web_vectorized_labels(self, golden_web):
        r = nu_lpa(golden_web, engine="vectorized")
        assert _crc(r.labels) == 983060449

    def test_road_hashtable_labels(self):
        g = road_network(12, 12, seed=123)
        r = nu_lpa(g, engine="hashtable")
        assert _crc(r.labels) == 1809539972
        assert r.num_iterations == 10


class TestGoldenQuality:
    def test_web_modularity(self, golden_web):
        r = nu_lpa(golden_web, engine="hashtable")
        assert modularity(golden_web, r.labels) == pytest.approx(0.74147, abs=1e-4)

    def test_road_modularity(self):
        g = road_network(12, 12, seed=123)
        r = nu_lpa(g, engine="hashtable")
        assert modularity(g, r.labels) == pytest.approx(0.85808, abs=1e-4)


class TestGoldenCounters:
    def test_web_counter_totals(self, golden_web):
        c = nu_lpa(golden_web, engine="hashtable").total_counters
        assert c.edges_scanned == 92912
        assert c.probes == 122315
        assert c.atomic_add == 19642
        assert c.waves == 12

    def test_graph_generation_is_frozen(self, golden_web):
        # The generators themselves are part of the reproducibility story.
        assert golden_web.num_edges == 22080
        assert _crc(golden_web.targets) == 925477088
