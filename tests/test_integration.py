"""End-to-end integration tests across the whole library surface.

Each test walks a realistic multi-module pipeline: generate → persist →
reload → detect → measure → transform/partition, checking the pieces
compose without glue code.
"""

import numpy as np
import pytest

from repro import LPAConfig, load_graph, nu_lpa
from repro.baselines import louvain, networkit_plp
from repro.graph.datasets import generate_standin
from repro.graph.generators import lfr_like, web_graph
from repro.graph.io import write_matrix_market
from repro.graph.transform import community_subgraph, largest_component
from repro.metrics import (
    modularity,
    normalized_mutual_information,
    summarize_communities,
)
from repro.metrics.partition_quality import coverage, mean_conductance
from repro.partition import size_constrained_lpa
from repro.perf.model import extrapolation_ratios, estimate_lpa_result_seconds


class TestFilePipeline:
    def test_generate_save_load_detect(self, tmp_path):
        graph, truth = lfr_like(1500, avg_degree=12, mixing=0.15, seed=4)
        path = tmp_path / "graph.mtx"
        write_matrix_market(graph, path)
        reloaded = load_graph(path)
        assert reloaded == graph

        result = nu_lpa(reloaded)
        assert normalized_mutual_information(truth, result.labels) > 0.7
        assert coverage(reloaded, result.labels) > 0.6


class TestDetectInspectDrill:
    def test_community_drilldown(self):
        graph = web_graph(4000, avg_degree=10, seed=6)
        result = nu_lpa(graph)
        summary = summarize_communities(result.labels)
        assert summary.num_communities > 5

        # Extract the largest community and verify it is denser inside
        # than the graph average.
        sizes = np.bincount(result.labels)
        biggest = int(np.argmax(sizes))
        sub, members = community_subgraph(graph, result.labels, biggest)
        if sub.num_vertices > 2:
            sub_density = sub.num_edges / sub.num_vertices
            # Intra-community density should not collapse versus global.
            assert sub_density > 0.2 * (graph.num_edges / graph.num_vertices)

    def test_component_restriction_then_detect(self):
        graph = generate_standin("kmer_A2a", scale=0.1, seed=2)
        giant, mapping = largest_component(graph)
        result = nu_lpa(giant)
        assert result.labels.shape[0] == giant.num_vertices


class TestCrossAlgorithmConsistency:
    def test_quality_ordering_pipeline(self):
        graph = generate_standin("europe_osm", scale=0.25, seed=3)
        q_nu = modularity(graph, nu_lpa(graph).labels)
        q_nk = modularity(graph, networkit_plp(graph).labels)
        q_lv = modularity(graph, louvain(graph).labels)
        # The paper's Figure-6c ordering on road networks.
        assert q_lv > q_nu
        assert q_nk > q_nu
        assert q_nu > 0.5

    def test_conductance_agrees_with_modularity_direction(self):
        graph = generate_standin("indochina-2004", scale=0.15, seed=3)
        good = nu_lpa(graph).labels
        rng = np.random.default_rng(0)
        bad = rng.integers(0, 50, size=graph.num_vertices)
        assert modularity(graph, good) > modularity(graph, bad)
        assert mean_conductance(graph, good) < mean_conductance(graph, bad)


class TestDetectThenPartition:
    def test_partition_after_detection(self):
        graph = generate_standin("asia_osm", scale=0.3, seed=5)
        detection = nu_lpa(graph)
        part = size_constrained_lpa(graph, 4)
        # Partitioning balances; detection does not — both valid outputs.
        assert part.imbalance <= 0.06
        assert detection.num_communities() > part.k


class TestModeledTimePipeline:
    def test_counters_to_seconds(self):
        graph = generate_standin("it-2004", scale=0.1, seed=7)
        result = nu_lpa(graph, LPAConfig(), engine="hashtable")
        from repro.graph.datasets import get_dataset

        spec = get_dataset("it-2004")
        ratios = extrapolation_ratios(
            graph, spec.paper_num_vertices, spec.paper_num_edges
        )
        secs = estimate_lpa_result_seconds(result, ratios)
        assert 0.1 < secs < 20.0
