"""Tests for the sparse-belief machinery shared by the variants."""

import numpy as np
import pytest

from repro.variants.common import SparseBeliefs, VariantResult


class TestSparseBeliefs:
    def test_identity(self):
        b = SparseBeliefs.identity(4)
        assert b.num_pairs == 4
        assert np.array_equal(b.vertex, b.label)
        assert np.all(b.weight == 1.0)

    def test_combined_merges_duplicates(self):
        b = SparseBeliefs(
            np.array([0, 0, 1, 0]), np.array([5, 5, 5, 6]),
            np.array([1.0, 2.0, 3.0, 4.0]),
        )
        c = b.combined()
        assert c.num_pairs == 3
        lookup = {(int(v), int(l)): w for v, l, w in zip(c.vertex, c.label, c.weight)}
        assert lookup[(0, 5)] == pytest.approx(3.0)
        assert lookup[(0, 6)] == pytest.approx(4.0)
        assert lookup[(1, 5)] == pytest.approx(3.0)

    def test_normalized_sums_to_one(self):
        b = SparseBeliefs(
            np.array([0, 0, 1]), np.array([1, 2, 3]), np.array([1.0, 3.0, 5.0])
        ).normalized()
        totals: dict[int, float] = {}
        for v, w in zip(b.vertex, b.weight):
            totals[int(v)] = totals.get(int(v), 0.0) + float(w)
        assert totals[0] == pytest.approx(1.0)
        assert totals[1] == pytest.approx(1.0)

    def test_pruned_keeps_strongest_when_all_below(self):
        b = SparseBeliefs(
            np.array([0, 0, 0]), np.array([1, 2, 3]),
            np.array([0.4, 0.35, 0.25]),
        )
        p = b.pruned(0.5)
        assert p.num_pairs == 1
        assert int(p.label[0]) == 1  # the strongest label survives

    def test_pruned_drops_weak_labels(self):
        b = SparseBeliefs(
            np.array([0, 0]), np.array([1, 2]), np.array([0.8, 0.2])
        )
        p = b.pruned(0.5)
        assert p.num_pairs == 1 and int(p.label[0]) == 1

    def test_top_k(self):
        b = SparseBeliefs(
            np.array([0, 0, 0, 1]), np.array([1, 2, 3, 9]),
            np.array([0.5, 0.3, 0.2, 1.0]),
        )
        t = b.top_k(2)
        zero_labels = set(t.label[t.vertex == 0].tolist())
        assert zero_labels == {1, 2}
        assert set(t.label[t.vertex == 1].tolist()) == {9}

    def test_argmax_labels_with_fallback(self):
        b = SparseBeliefs(np.array([1]), np.array([7]), np.array([1.0]))
        out = b.argmax_labels(3)
        assert out.tolist() == [0, 7, 2]  # vertices 0, 2 keep own ids

    def test_argmax_tie_break_smaller_label(self):
        b = SparseBeliefs(
            np.array([0, 0]), np.array([9, 4]), np.array([1.0, 1.0])
        )
        assert b.argmax_labels(1)[0] == 4


class TestVariantResult:
    def test_memberships(self):
        r = VariantResult(
            labels=np.array([5, 5]),
            vertex=np.array([0, 1, 1]),
            label=np.array([5, 5, 6]),
            weight=np.array([1.0, 0.6, 0.4]),
            algorithm="x", iterations=1, pairs_processed=3,
        )
        comms = r.memberships(threshold=0.5)
        assert [0, 1] in comms
        assert r.mean_memberships_per_vertex() == pytest.approx(1.5)
