"""Tests for COPRA, SLPA, and LabelRank."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics import modularity, normalized_mutual_information
from repro.variants import copra, labelrank, slpa

ALL_VARIANTS = [copra, slpa, labelrank]


@pytest.mark.parametrize("variant", ALL_VARIANTS, ids=["copra", "slpa", "labelrank"])
class TestCommonBehaviour:
    def test_two_cliques(self, two_cliques, variant):
        r = variant(two_cliques, seed=0)
        labels = r.labels
        assert np.unique(labels[:5]).shape[0] == 1
        assert np.unique(labels[5:]).shape[0] == 1
        assert labels[0] != labels[5]

    def test_planted_recovery(self, planted, variant):
        g, truth = planted
        r = variant(g, seed=0)
        assert normalized_mutual_information(truth, r.labels) > 0.7

    def test_quality_comparable_to_lpa(self, small_web, variant):
        """The paper: variants deliver 'communities of comparable quality'."""
        from repro import nu_lpa

        q_lpa = modularity(small_web, nu_lpa(small_web).labels)
        q_var = modularity(small_web, variant(small_web, seed=0).labels)
        assert q_var > q_lpa - 0.15

    def test_result_structure(self, triangle, variant):
        r = variant(triangle, seed=0)
        assert r.labels.shape[0] == 3
        assert r.pairs_processed > 0
        assert r.vertex.shape == r.label.shape == r.weight.shape

    def test_deterministic(self, small_road, variant):
        a = variant(small_road, seed=3)
        b = variant(small_road, seed=3)
        assert np.array_equal(a.labels, b.labels)


class TestCopra:
    def test_v1_is_disjoint(self, two_cliques):
        r = copra(two_cliques, v=1)
        assert r.mean_memberships_per_vertex() == pytest.approx(1.0)

    def test_larger_v_allows_overlap(self, two_cliques):
        r = copra(two_cliques, v=3)
        assert r.mean_memberships_per_vertex() >= 1.0

    def test_invalid_v(self, triangle):
        with pytest.raises(ConfigurationError):
            copra(triangle, v=0)

    def test_bridge_vertex_can_overlap(self):
        """A vertex between two cliques may belong to both with v=2."""
        import itertools

        from repro.graph.build import from_edges

        edges = []
        for base in (0, 5):
            edges.extend(
                (base + a, base + b)
                for a, b in itertools.combinations(range(5), 2)
            )
        # Vertex 10 bridges both cliques with two links each.
        edges += [(10, 0), (10, 1), (10, 5), (10, 6)]
        src, dst = map(np.asarray, zip(*edges))
        g = from_edges(src, dst)
        r = copra(g, v=2)
        assert r.mean_memberships_per_vertex() >= 1.0


class TestSlpa:
    def test_memory_rounds(self, triangle):
        r = slpa(triangle, rounds=5)
        assert r.iterations == 5

    def test_threshold_controls_overlap(self, small_web):
        loose = slpa(small_web, rounds=10, r=0.05, seed=0)
        strict = slpa(small_web, rounds=10, r=0.4, seed=0)
        assert (
            loose.vertex.shape[0] >= strict.vertex.shape[0]
        )

    def test_invalid_params(self, triangle):
        with pytest.raises(ConfigurationError):
            slpa(triangle, rounds=0)
        with pytest.raises(ConfigurationError):
            slpa(triangle, r=2.0)

    def test_seed_changes_sampling(self, small_web):
        a = slpa(small_web, seed=0)
        b = slpa(small_web, seed=1)
        # Different sampling, same quality regime.
        qa = modularity(small_web, a.labels)
        qb = modularity(small_web, b.labels)
        assert abs(qa - qb) < 0.15


class TestLabelRank:
    def test_inflation_sharpens(self, small_web):
        soft = labelrank(small_web, inflation=1.2, max_iterations=10)
        sharp = labelrank(small_web, inflation=3.0, max_iterations=10)
        # Stronger inflation concentrates distributions.
        assert (
            sharp.mean_memberships_per_vertex()
            <= soft.mean_memberships_per_vertex() + 0.3
        )

    def test_invalid_params(self, triangle):
        with pytest.raises(ConfigurationError):
            labelrank(triangle, inflation=0.0)
        with pytest.raises(ConfigurationError):
            labelrank(triangle, cutoff=1.0)

    def test_stabilisation_stops_early(self, two_cliques):
        r = labelrank(two_cliques, max_iterations=30)
        assert r.iterations <= 30


class TestVariantStudy:
    def test_e1_runner(self):
        from repro.experiments import run_experiment

        r = run_experiment(
            "E1", scale=0.08, datasets=["indochina-2004", "europe_osm"]
        )
        # The paper's claim: plain LPA is the most efficient.
        assert r.values["most_efficient"] == "lpa"
        # And quality is comparable (within 20% geomean).
        qs = r.values["modularity"]
        assert min(qs.values()) > 0.5 * max(qs.values())
